//! Campaign orchestration: the deterministic fuzzing loop.
//!
//! Cases are numbered `0..iters`; case `i`'s program is a pure function of
//! `(campaign seed, i)` via [`schedule_seed`], so the whole campaign is
//! reproducible from its seed. Evaluation fans out over the
//! `cfed-runner` worker pool in fixed-size batches, then results are
//! folded strictly in index order — coverage retention, shrinking and the
//! report text never depend on thread count or scheduling. The only
//! nondeterminism permitted is *how many* batches a `--time-budget` run
//! completes; `--iters` runs are byte-reproducible.

use crate::attack::{attack_sweep, finding_reproduces, AttackOutcome, ATTACK_TRIALS};
use crate::corpus::{write_regression, RegressionFile, RegressionMode};
use crate::coverage::{fingerprint, CoverageMap, Fingerprint};
use crate::detect::{detection_sweep, violation_reproduces, DetectOutcome};
use crate::gen::{generate, schedule_seed, GeneratedProgram, Tier};
use crate::oracle::{pair_diverges, run_oracle, Divergence};
use crate::shrink::shrink_image;
use cfed_runner::parallel_map;
use cfed_telemetry::metrics::Counter;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// Process-wide tallies, exported telemetry-style so long campaigns can be
/// observed from anywhere in the process.
pub mod counters {
    use super::Counter;

    /// Programs generated and run through the oracle.
    pub static CASES: Counter = Counter::new();
    /// Differential divergences observed (before shrinking).
    pub static DIVERGENCES: Counter = Counter::new();
    /// Detection-guarantee SDC violations observed.
    pub static SDC_VIOLATIONS: Counter = Counter::new();
    /// Cross-engine disagreements under attack schedules.
    pub static ATTACK_DIVERGENCES: Counter = Counter::new();
    /// Programs retained by coverage feedback.
    pub static RETAINED: Counter = Counter::new();
}

/// What the campaign checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Differential oracle only.
    Diff,
    /// Detection-guarantee sweep only.
    Detect,
    /// Both per case.
    Both,
}

impl Mode {
    /// Stable name for reports and CLI parsing.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Diff => "diff",
            Mode::Detect => "detect",
            Mode::Both => "both",
        }
    }

    /// Parses [`Mode::name`] back.
    pub fn parse(s: &str) -> Option<Mode> {
        match s {
            "diff" => Some(Mode::Diff),
            "detect" => Some(Mode::Detect),
            "both" => Some(Mode::Both),
            _ => None,
        }
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of cases (ignored when `time_budget` is set and runs out
    /// first).
    pub iters: u64,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Per-backend instruction budget.
    pub max_insts: u64,
    /// What to check.
    pub mode: Mode,
    /// Generator tiers, alternated by case index.
    pub tiers: Vec<Tier>,
    /// Branch sites swept per program in detect mode (a cap; the report
    /// records how many sites each capped program actually had).
    pub detect_branches: u64,
    /// Additionally mount the deterministic adversarial attack schedule on
    /// every case and diff the engine pairs (`--attacks`).
    pub attacks: bool,
    /// Where to write minimized reproducers (`None` = don't write).
    pub corpus_dir: Option<PathBuf>,
    /// Optional wall-clock budget checked between batches.
    pub time_budget: Option<Duration>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0,
            iters: 64,
            threads: 0,
            max_insts: 2_000_000,
            mode: Mode::Both,
            tiers: vec![Tier::MiniC, Tier::Visa],
            detect_branches: 4,
            attacks: false,
            corpus_dir: None,
            time_budget: None,
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Deterministic report text (what CI diffs across thread counts).
    pub text: String,
    /// Cases evaluated.
    pub cases: u64,
    /// Cases whose oracle diverged.
    pub divergences: u64,
    /// Detection-guarantee SDC violations.
    pub sdc_violations: u64,
    /// Cross-engine disagreements under attack schedules.
    pub attack_divergences: u64,
    /// Cases retained by coverage.
    pub retained: u64,
    /// Distinct behaviour bits covered.
    pub coverage_bits: u32,
    /// Reproducer files written.
    pub written: Vec<PathBuf>,
}

impl FuzzReport {
    /// `true` when no divergence, no SDC violation and no attack-schedule
    /// disagreement was seen.
    pub fn clean(&self) -> bool {
        self.divergences == 0 && self.sdc_violations == 0 && self.attack_divergences == 0
    }
}

/// One case's evaluation — a pure function of its seed.
struct CaseResult {
    seed: u64,
    tier: Tier,
    prog: GeneratedProgram,
    divergence: Option<Divergence>,
    fp: Fingerprint,
    detect: Option<DetectOutcome>,
    attack: Option<AttackOutcome>,
}

fn evaluate_case(cfg: &FuzzConfig, index: u64) -> CaseResult {
    let seed = schedule_seed(cfg.seed, index);
    let tier = cfg.tiers[(index as usize) % cfg.tiers.len()];
    let prog = generate(seed, tier);
    counters::CASES.inc();
    let (divergence, fp) = if matches!(cfg.mode, Mode::Diff | Mode::Both) {
        let report = run_oracle(&prog, cfg.max_insts);
        let fp = fingerprint(&prog, &report, cfg.max_insts);
        (report.divergence, fp)
    } else {
        (None, Fingerprint::default())
    };
    let detect = matches!(cfg.mode, Mode::Detect | Mode::Both)
        .then(|| detection_sweep(&prog.image, cfg.detect_branches, cfg.max_insts));
    let attack = cfg.attacks.then(|| attack_sweep(&prog.image, seed, ATTACK_TRIALS, cfg.max_insts));
    if divergence.is_some() {
        counters::DIVERGENCES.inc();
    }
    if let Some(d) = &detect {
        counters::SDC_VIOLATIONS.add(d.violations.len() as u64);
    }
    if let Some(a) = &attack {
        counters::ATTACK_DIVERGENCES.add(a.findings.len() as u64);
    }
    CaseResult { seed, tier, prog, divergence, fp, detect, attack }
}

fn config_label(technique: Option<cfed_core::TechniqueKind>) -> String {
    match technique {
        None => "baseline".to_string(),
        Some(t) => t.to_string(),
    }
}

fn note_lines(prog: &GeneratedProgram, extra: String) -> Vec<String> {
    let mut notes = vec![extra];
    if let Some(src) = &prog.source {
        notes.push(format!(
            "MiniC source: {}",
            src.split_whitespace().collect::<Vec<_>>().join(" ")
        ));
    }
    notes
}

/// Runs the campaign described by `cfg`.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    assert!(!cfg.tiers.is_empty(), "at least one generator tier required");
    let start = std::time::Instant::now();
    let batch = (cfg.threads.max(1) * 8).max(16) as u64;

    let mut text = String::new();
    let _ = writeln!(text, "cfed-fuzz report v1");
    let _ = writeln!(text, "seed: {:#018x}", cfg.seed);
    let _ = writeln!(text, "mode: {}", cfg.mode.name());
    let _ = writeln!(
        text,
        "tiers: {}",
        cfg.tiers.iter().map(|t| t.name()).collect::<Vec<_>>().join(",")
    );
    let _ = writeln!(text, "max-insts: {}", cfg.max_insts);
    let _ = writeln!(text, "detect-branches: {}", cfg.detect_branches);
    if cfg.attacks {
        let _ = writeln!(text, "attacks: {ATTACK_TRIALS} trials/case");
    }

    let mut coverage = CoverageMap::new();
    let mut report = FuzzReport {
        text: String::new(),
        cases: 0,
        divergences: 0,
        sdc_violations: 0,
        attack_divergences: 0,
        retained: 0,
        coverage_bits: 0,
        written: Vec::new(),
    };
    let mut detect_total = DetectOutcome::default();
    let mut capped_sites = 0u64;
    let mut attack_total = AttackOutcome::default();

    let mut next = 0u64;
    while next < cfg.iters {
        if let Some(budget) = cfg.time_budget {
            if start.elapsed() >= budget {
                let _ = writeln!(text, "time-budget: stopped after {next} cases");
                break;
            }
        }
        let count = batch.min(cfg.iters - next) as usize;
        let base = next;
        let results = parallel_map(count, cfg.threads, |i| evaluate_case(cfg, base + i as u64));
        next += count as u64;

        // Sequential, index-ordered fold: everything below is deterministic.
        for r in results {
            report.cases += 1;
            if coverage.record(r.fp) {
                report.retained += 1;
                counters::RETAINED.inc();
            }
            if let Some(div) = &r.divergence {
                report.divergences += 1;
                let _ = writeln!(
                    text,
                    "DIVERGENCE seed={:#018x} tier={} pair={}|{} field={} {}",
                    r.seed,
                    r.tier.name(),
                    div.left,
                    div.right,
                    div.field,
                    div.detail
                );
                if let Some(dir) = &cfg.corpus_dir {
                    let (left, right, tier, max) =
                        (div.left.clone(), div.right.clone(), r.tier, cfg.max_insts);
                    let (reduced, edits) = shrink_image(&r.prog.image, |img| {
                        pair_diverges(img, &left, &right, tier, max)
                    });
                    let entry = RegressionFile {
                        mode: RegressionMode::Diff,
                        seed: r.seed,
                        tier: r.tier,
                        notes: note_lines(
                            &r.prog,
                            format!(
                                "pair {}|{} field {}: {} ({edits} shrink edits)",
                                div.left, div.right, div.field, div.detail
                            ),
                        ),
                        image: reduced,
                    };
                    if let Ok(path) = write_regression(dir, &entry) {
                        report.written.push(path);
                    }
                }
            }
            if let Some(d) = &r.detect {
                detect_total.injections += d.injections;
                detect_total.sites += d.sites;
                for (t, v) in detect_total.tally.iter_mut().zip(d.tally) {
                    *t += v;
                }
                if d.total_sites > d.sites {
                    capped_sites += 1;
                }
                for v in &d.violations {
                    report.sdc_violations += 1;
                    let _ = writeln!(
                        text,
                        "SDC seed={:#018x} tier={} technique={}/{} category={} spec={:?}",
                        r.seed,
                        r.tier.name(),
                        v.technique,
                        v.style,
                        v.category,
                        v.spec
                    );
                    if let Some(dir) = &cfg.corpus_dir {
                        let (viol, max) = (v.clone(), cfg.max_insts);
                        let (reduced, edits) = shrink_image(&r.prog.image, |img| {
                            violation_reproduces(img, &viol, max)
                        });
                        let entry = RegressionFile {
                            mode: RegressionMode::Detect,
                            seed: r.seed,
                            tier: r.tier,
                            notes: note_lines(
                                &r.prog,
                                format!(
                                    "technique {}/{} category {} spec {:?} ({edits} shrink edits)",
                                    v.technique, v.style, v.category, v.spec
                                ),
                            ),
                            image: reduced,
                        };
                        if let Ok(path) = write_regression(dir, &entry) {
                            report.written.push(path);
                        }
                    }
                }
            }
            if let Some(a) = &r.attack {
                attack_total.trials += a.trials;
                attack_total.placed += a.placed;
                for f in &a.findings {
                    report.attack_divergences += 1;
                    let (left, right) = f.pair();
                    let _ = writeln!(
                        text,
                        "ATTACK seed={:#018x} tier={} config={}/{} kind={} pause={} \
                         pair={left}|{right} field={} {}",
                        r.seed,
                        r.tier.name(),
                        config_label(f.technique),
                        f.style,
                        f.kind,
                        f.pause,
                        f.field,
                        f.detail
                    );
                    if let Some(dir) = &cfg.corpus_dir {
                        let (find, max) = (f.clone(), cfg.max_insts);
                        let (reduced, edits) =
                            shrink_image(&r.prog.image, |img| finding_reproduces(img, &find, max));
                        let entry = RegressionFile {
                            mode: RegressionMode::Attack,
                            seed: r.seed,
                            tier: r.tier,
                            notes: note_lines(
                                &r.prog,
                                format!(
                                    "attack {}/{} kind {} param {:#x} pause {} pair \
                                     {left}|{right} field {}: {} ({edits} shrink edits)",
                                    config_label(f.technique),
                                    f.style,
                                    f.kind,
                                    f.param,
                                    f.pause,
                                    f.field,
                                    f.detail
                                ),
                            ),
                            image: reduced,
                        };
                        if let Ok(path) = write_regression(dir, &entry) {
                            report.written.push(path);
                        }
                    }
                }
            }
        }
    }

    report.coverage_bits = coverage.bits();
    let _ = writeln!(text, "cases: {}", report.cases);
    let _ = writeln!(text, "retained: {}", report.retained);
    let _ = writeln!(text, "coverage-bits: {}", report.coverage_bits);
    let _ = writeln!(text, "divergences: {}", report.divergences);
    if matches!(cfg.mode, Mode::Detect | Mode::Both) {
        let _ = writeln!(
            text,
            "detect: injections={} sites={} tally={:?} sdc={}",
            detect_total.injections, detect_total.sites, detect_total.tally, report.sdc_violations
        );
        if capped_sites > 0 {
            // No silent caps: record how many programs had more branch
            // sites than the sweep visited.
            let _ = writeln!(
                text,
                "detect: {capped_sites} program(s) capped at {} branch sites",
                cfg.detect_branches
            );
        }
    }
    if cfg.attacks {
        let _ = writeln!(
            text,
            "attack: trials={} placed={} divergences={}",
            attack_total.trials, attack_total.placed, report.attack_divergences
        );
    }
    report.text = text;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> FuzzConfig {
        FuzzConfig {
            seed: 0xF00D,
            iters: 6,
            threads: 1,
            max_insts: 300_000,
            mode: Mode::Diff,
            detect_branches: 2,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn reports_are_reproducible_across_thread_counts() {
        let one = run_fuzz(&smoke_cfg());
        let many = run_fuzz(&FuzzConfig { threads: 3, ..smoke_cfg() });
        assert_eq!(one.text, many.text);
        assert_eq!(one.cases, 6);
    }

    #[test]
    fn attack_schedules_are_reproducible_and_clean() {
        let cfg = FuzzConfig { attacks: true, iters: 4, ..smoke_cfg() };
        let one = run_fuzz(&cfg);
        let many = run_fuzz(&FuzzConfig { threads: 3, ..cfg });
        assert_eq!(one.text, many.text, "thread count leaked into the attack report");
        assert!(one.text.contains("attacks: 6 trials/case"), "{}", one.text);
        assert!(one.text.contains("attack: trials=24 placed="), "{}", one.text);
        assert!(one.clean(), "attack schedule found an engine disagreement:\n{}", one.text);
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [Mode::Diff, Mode::Detect, Mode::Both] {
            assert_eq!(Mode::parse(m.name()), Some(m));
        }
        assert_eq!(Mode::parse("nope"), None);
    }
}
