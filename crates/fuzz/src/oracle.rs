//! The N-way differential oracle.
//!
//! Runs one image on every execution backend the stack provides — raw
//! interpreter, fused interpreter, DBT per-step, DBT block-fused, DBT
//! native x86-64, plus the profile-guided trace tier (fused and native) on
//! the configs whose check placement it can verify — crossed with every
//! control-flow-checking technique and both conditional-update styles, then
//! diffs the runs pairwise. The first divergent pair (in a fixed,
//! deterministic order) is the verdict.
//!
//! Three comparison strengths, matching the invariants the stack pins in
//! its own test suites:
//!
//! * **Interpreter pair** (raw vs fused): the decode cache is pure
//!   mechanism, so *full architectural state* must match — registers,
//!   flags, IP, retired-instruction/cycle counts and the output stream.
//! * **DBT dispatch group** (per-step vs block-fused vs native, same
//!   config): exit, output, cycles, retired instructions and the translator
//!   counters `blocks`/`chains`/`dispatches`/`smc_flushes`/
//!   `dispatch_ic_hits` must match (neither block fusion nor native code
//!   generation may change what was translated or executed). The native
//!   engine transparently falls back to the fused cache on hosts where the
//!   backend is unavailable, so this comparison is meaningful everywhere.
//! * **Cross-engine** (interpreter vs DBT): instrumentation legitimately
//!   changes cost, so only the observable contract is compared — output
//!   stream and normalized exit (see [`exits_compatible`]).

use crate::gen::{GeneratedProgram, Tier};
use cfed_asm::Image;
use cfed_core::{PlacementVerifier, TechniqueKind};
use cfed_dbt::{
    CheckPolicy, Dbt, DbtExit, DbtStats, NativeDbt, NullInstrumenter, TierConfig, UpdateStyle,
};
use cfed_sim::{Cpu, ExitReason, Machine, Trap};
use std::sync::Arc;

/// Promotion threshold for the trace-tier backends: low enough that even
/// small generated loops tier up mid-run, exercising trace formation, side
/// exits and demotion under fuzz (the `perf`-motivated defaults would never
/// fire inside the oracle's instruction budgets).
pub const TIER_THRESHOLD: u32 = 4;

/// Identifies one backend in the oracle matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendId {
    /// Execution engine + dispatch flavour.
    pub engine: Engine,
    /// Technique, or `None` for uninstrumented (always `None` for the
    /// interpreter engines, which cannot carry instrumentation).
    pub technique: Option<TechniqueKind>,
    /// Conditional-update style (meaningful only with a technique).
    pub style: UpdateStyle,
}

/// The execution paths of the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Interpreter, decode cache off.
    InterpRaw,
    /// Interpreter, pre-decoded block-fused dispatch.
    InterpFused,
    /// DBT translating into per-step cache execution.
    DbtStep,
    /// DBT with block-fused cache execution.
    DbtFused,
    /// DBT with the native x86-64 backend (falls back to block-fused cache
    /// execution, bit-identically, where the backend is unavailable).
    DbtNative,
    /// Tiered DBT (trace formation at [`TIER_THRESHOLD`]) executing through
    /// the fused cache. Only instantiated for configs whose check placement
    /// the trace verifier understands (uninstrumented and EdgCF); under
    /// `CFED_NO_TIER=1` it degrades to plain block-fused execution.
    DbtTierFused,
    /// Tiered DBT executing through the native backend, with the same
    /// fallbacks as [`Engine::DbtNative`] and [`Engine::DbtTierFused`].
    DbtTierNative,
}

impl Engine {
    /// Whether this engine runs the profile-guided trace tier.
    pub fn is_tiered(self) -> bool {
        matches!(self, Engine::DbtTierFused | Engine::DbtTierNative)
    }
}

impl BackendId {
    /// Stable human-readable label used in reports and divergence records.
    pub fn label(&self) -> String {
        let engine = match self.engine {
            Engine::InterpRaw => "interp-raw",
            Engine::InterpFused => "interp-fused",
            Engine::DbtStep => "dbt-step",
            Engine::DbtFused => "dbt-fused",
            Engine::DbtNative => "dbt-native",
            Engine::DbtTierFused => "dbt-tier-fused",
            Engine::DbtTierNative => "dbt-tier-native",
        };
        match self.technique {
            None => engine.to_string(),
            Some(t) => {
                let style = match self.style {
                    UpdateStyle::Jcc => "jcc",
                    UpdateStyle::CMov => "cmov",
                };
                format!("{engine}/{t}/{style}")
            }
        }
    }
}

/// What one backend produced for one program.
#[derive(Debug, Clone)]
pub struct BackendRun {
    /// Which backend.
    pub id: BackendId,
    /// How it ended.
    pub exit: DbtExit,
    /// Observable output stream.
    pub output: Vec<u64>,
    /// Cost-model cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub insts: u64,
    /// Final architectural state (output already drained).
    pub cpu: Cpu,
    /// Translator counters (DBT engines only).
    pub dbt: Option<DbtStats>,
}

/// A recorded mismatch between two backends.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Label of the first backend of the pair.
    pub left: String,
    /// Label of the second backend of the pair.
    pub right: String,
    /// Which comparison failed (`exit`, `output`, `state`, `cost`,
    /// `dbt-stats`).
    pub field: String,
    /// Human-readable detail of both sides.
    pub detail: String,
}

/// Everything the oracle learned about one program.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Every backend run, in matrix order.
    pub runs: Vec<BackendRun>,
    /// The first divergent pair, if any.
    pub divergence: Option<Divergence>,
}

/// The configurations the DBT engines are crossed with: the uninstrumented
/// baseline plus all five techniques under both update styles.
pub fn technique_matrix() -> Vec<(Option<TechniqueKind>, UpdateStyle)> {
    let mut m = vec![(None, UpdateStyle::Jcc)];
    for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
        for kind in TechniqueKind::ALL_FIVE {
            m.push((Some(kind), style));
        }
    }
    m
}

/// Whether a config additionally gets the two trace-tier backends: the
/// placement verifier only understands uninstrumented and EdgCF signature
/// shapes, so only those configs can promote.
fn config_supports_tier(technique: Option<TechniqueKind>) -> bool {
    technique.is_none_or(TechniqueKind::supports_trace_tier)
}

fn load(image: &Image) -> Machine {
    Machine::load(image.code(), image.data(), image.entry_offset())
}

fn exit_of(reason: ExitReason) -> DbtExit {
    match reason {
        ExitReason::Halted { code } => DbtExit::Halted { code },
        ExitReason::Trapped(t) => DbtExit::Trapped(t),
        ExitReason::StepLimit => DbtExit::StepLimit,
    }
}

fn run_interp(image: &Image, id: BackendId, max_insts: u64) -> BackendRun {
    let mut m = load(image);
    m.set_decode_cache(matches!(id.engine, Engine::InterpFused));
    let exit = exit_of(m.run(max_insts));
    finish(id, exit, m, None)
}

fn run_dbt_engine(image: &Image, id: BackendId, max_insts: u64) -> BackendRun {
    let mut m = load(image);
    // Per-step vs block-fused is selected by the decode cache's presence at
    // translator attach time (the DBT fuses only when the machine fuses);
    // the native backend requires the fused cache underneath it.
    m.set_decode_cache(!matches!(id.engine, Engine::DbtStep));
    let instr: Box<dyn cfed_dbt::Instrumenter> = match id.technique {
        Some(kind) => kind.instrumenter_for(image, CheckPolicy::AllBb),
        None => Box::new(NullInstrumenter),
    };
    if matches!(id.engine, Engine::DbtNative | Engine::DbtTierFused | Engine::DbtTierNative) {
        let native = matches!(id.engine, Engine::DbtNative | Engine::DbtTierNative)
            && cfed_dbt::native_enabled();
        let tier = (id.engine.is_tiered() && cfed_dbt::tier_enabled())
            .then(|| TierConfig::new(Arc::new(PlacementVerifier)).with_threshold(TIER_THRESHOLD));
        let mut dbt = NativeDbt::with_options(instr, id.style, &mut m, native, tier);
        let exit = dbt.run(&mut m, max_insts);
        let stats = dbt.stats();
        return finish(id, exit, m, Some(stats));
    }
    let mut dbt = Dbt::new(instr, id.style, &mut m);
    let exit = dbt.run(&mut m, max_insts);
    finish(id, exit, m, Some(dbt.stats()))
}

fn finish(id: BackendId, exit: DbtExit, mut m: Machine, dbt: Option<DbtStats>) -> BackendRun {
    let output = m.cpu.take_output();
    let cycles = m.cpu.stats().cycles;
    let insts = m.cpu.stats().insts;
    BackendRun { id, exit, output, cycles, insts, cpu: m.cpu, dbt }
}

/// Exit compatibility across engines, where instrumentation shifts
/// addresses and costs.
///
/// * `Halted`: codes must match exactly.
/// * Traps executing *inside cache code* under the DBT (`DivByZero`,
///   `Software`) report cache addresses, so only the variant (and software
///   trap code) must match.
/// * Memory faults carry *data* addresses, which instrumentation never
///   changes: exact equality.
/// * Fetch faults carry *guest* addresses (the DBT reconstructs them):
///   exact equality.
/// * `StepLimit` on either side makes the pair incomparable (budgets bite
///   at different guest points once instrumentation changes cost), so it is
///   compatible with anything.
pub fn exits_compatible(a: &DbtExit, b: &DbtExit) -> bool {
    match (a, b) {
        (DbtExit::StepLimit, _) | (_, DbtExit::StepLimit) => true,
        (DbtExit::Halted { code: ca }, DbtExit::Halted { code: cb }) => ca == cb,
        (DbtExit::Trapped(ta), DbtExit::Trapped(tb)) => traps_compatible(ta, tb),
        _ => false,
    }
}

fn traps_compatible(a: &Trap, b: &Trap) -> bool {
    match (a, b) {
        (Trap::DivByZero { .. }, Trap::DivByZero { .. }) => true,
        (Trap::Software { code: ca, .. }, Trap::Software { code: cb, .. }) => ca == cb,
        _ => a == b,
    }
}

/// Whether a technique run is allowed to diverge from the uninstrumented
/// behaviour on this program tier.
///
/// The CFG-dependent prior-work techniques (CFCSS, ECCA) instrument from a
/// *static* CFG of the initial image. The raw-VISA tier deliberately
/// generates what static analysis cannot see — data-driven indirect jumps
/// and self-modifying stores — so on that tier those two techniques may
/// legitimately report a (false-positive) control-flow error. The report
/// itself must still be a *detection* (CFE trap), never silent corruption,
/// and the per-step/fused pair must still agree exactly.
fn may_false_positive(tier: Tier, technique: Option<TechniqueKind>) -> bool {
    tier == Tier::Visa
        && matches!(technique, Some(TechniqueKind::Cfcss) | Some(TechniqueKind::Ecca))
}

fn is_cfe_detection_exit(exit: &DbtExit) -> bool {
    match exit {
        DbtExit::Trapped(t) => t.is_cfe_report() || matches!(t, Trap::DivByZero { .. }),
        _ => false,
    }
}

fn diff_exact_cpu(a: &BackendRun, b: &BackendRun) -> Option<Divergence> {
    if a.exit != b.exit {
        return Some(divergence(a, b, "exit", format!("{:?} vs {:?}", a.exit, b.exit)));
    }
    if a.cpu != b.cpu {
        return Some(divergence(
            a,
            b,
            "state",
            format!(
                "architectural state differs (ip {:#x} vs {:#x}, insts {} vs {})",
                a.cpu.ip(),
                b.cpu.ip(),
                a.insts,
                b.insts
            ),
        ));
    }
    diff_output(a, b)
}

fn diff_output(a: &BackendRun, b: &BackendRun) -> Option<Divergence> {
    if a.output != b.output {
        let n = a.output.iter().zip(&b.output).take_while(|(x, y)| x == y).count();
        return Some(divergence(
            a,
            b,
            "output",
            format!(
                "streams differ at index {n} (lengths {} vs {}): {:?} vs {:?}",
                a.output.len(),
                b.output.len(),
                a.output.get(n),
                b.output.get(n)
            ),
        ));
    }
    None
}

fn diff_dispatch_pair(step: &BackendRun, fused: &BackendRun) -> Option<Divergence> {
    if step.exit != fused.exit {
        return Some(divergence(
            step,
            fused,
            "exit",
            format!("{:?} vs {:?}", step.exit, fused.exit),
        ));
    }
    if let Some(d) = diff_output(step, fused) {
        return Some(d);
    }
    if (step.cycles, step.insts) != (fused.cycles, fused.insts) {
        return Some(divergence(
            step,
            fused,
            "cost",
            format!(
                "cycles {} vs {}, insts {} vs {}",
                step.cycles, fused.cycles, step.insts, fused.insts
            ),
        ));
    }
    let (a, b) = (step.dbt.as_ref()?, fused.dbt.as_ref()?);
    let key = |s: &DbtStats| (s.blocks, s.chains, s.dispatches, s.smc_flushes, s.dispatch_ic_hits);
    if key(a) != key(b) {
        return Some(divergence(step, fused, "dbt-stats", format!("{:?} vs {:?}", key(a), key(b))));
    }
    None
}

/// Untiered vs tiered run of the *same* config: trace formation changes
/// cost (that is its purpose) and cache-code trap addresses, so only the
/// guest-observable contract is compared. `StepLimit` on either side makes
/// the pair incomparable — the budget bites at different guest points once
/// traces retire fewer instructions.
fn diff_tier_pair(base: &BackendRun, tiered: &BackendRun) -> Option<Divergence> {
    if matches!(base.exit, DbtExit::StepLimit) || matches!(tiered.exit, DbtExit::StepLimit) {
        return None;
    }
    if !exits_compatible(&base.exit, &tiered.exit) {
        return Some(divergence(
            base,
            tiered,
            "exit",
            format!("{:?} vs {:?}", base.exit, tiered.exit),
        ));
    }
    diff_output(base, tiered)
}

fn diff_cross_engine(native: &BackendRun, dbt: &BackendRun, tier: Tier) -> Option<Divergence> {
    if matches!(native.exit, DbtExit::StepLimit) || matches!(dbt.exit, DbtExit::StepLimit) {
        return None; // budgets bite at different points; nothing comparable
    }
    if may_false_positive(tier, dbt.id.technique) && is_cfe_detection_exit(&dbt.exit) {
        // A static-CFG technique tripping on dynamic code is a detection,
        // not a divergence. Output up to the trap must still be a prefix.
        return (!native.output.starts_with(&dbt.output)).then(|| {
            divergence(
                native,
                dbt,
                "output",
                format!(
                    "false-positive detection but output is not a prefix: {:?} vs {:?}",
                    native.output, dbt.output
                ),
            )
        });
    }
    if !exits_compatible(&native.exit, &dbt.exit) {
        return Some(divergence(
            native,
            dbt,
            "exit",
            format!("{:?} vs {:?}", native.exit, dbt.exit),
        ));
    }
    diff_output(native, dbt)
}

fn divergence(a: &BackendRun, b: &BackendRun, field: &str, detail: String) -> Divergence {
    Divergence { left: a.id.label(), right: b.id.label(), field: field.into(), detail }
}

/// Runs the full backend matrix on one program and reports the first
/// divergent pair.
pub fn run_oracle(prog: &GeneratedProgram, max_insts: u64) -> OracleReport {
    let image = &prog.image;
    let base_style = UpdateStyle::Jcc;
    let raw = run_interp(
        image,
        BackendId { engine: Engine::InterpRaw, technique: None, style: base_style },
        max_insts,
    );
    let fused = run_interp(
        image,
        BackendId { engine: Engine::InterpFused, technique: None, style: base_style },
        max_insts,
    );

    let mut runs = vec![raw, fused];
    let mut divergence = diff_exact_cpu(&runs[0], &runs[1]);

    for (technique, style) in technique_matrix() {
        let step = run_dbt_engine(
            image,
            BackendId { engine: Engine::DbtStep, technique, style },
            max_insts,
        );
        let fused_dbt = run_dbt_engine(
            image,
            BackendId { engine: Engine::DbtFused, technique, style },
            max_insts,
        );
        let native_dbt = run_dbt_engine(
            image,
            BackendId { engine: Engine::DbtNative, technique, style },
            max_insts,
        );
        if divergence.is_none() {
            divergence = diff_dispatch_pair(&step, &fused_dbt)
                .or_else(|| diff_dispatch_pair(&fused_dbt, &native_dbt))
                .or_else(|| diff_cross_engine(&runs[0], &fused_dbt, prog.tier));
        }
        let tiered = config_supports_tier(technique).then(|| {
            let tf = run_dbt_engine(
                image,
                BackendId { engine: Engine::DbtTierFused, technique, style },
                max_insts,
            );
            let tn = run_dbt_engine(
                image,
                BackendId { engine: Engine::DbtTierNative, technique, style },
                max_insts,
            );
            (tf, tn)
        });
        if let Some((tf, tn)) = &tiered {
            if divergence.is_none() {
                // Tiered fused vs tiered native is a dispatch pair (exactly
                // equal, traces included); tiered vs untiered compares the
                // guest-observable contract only.
                divergence = diff_dispatch_pair(tf, tn).or_else(|| diff_tier_pair(&fused_dbt, tf));
            }
        }
        runs.push(step);
        runs.push(fused_dbt);
        runs.push(native_dbt);
        if let Some((tf, tn)) = tiered {
            runs.push(tf);
            runs.push(tn);
        }
    }

    OracleReport { runs, divergence }
}

/// Re-runs only the recorded diverging backend pair — the cheap predicate
/// the shrinker uses (2 runs instead of the full matrix).
pub fn pair_diverges(image: &Image, left: &str, right: &str, tier: Tier, max_insts: u64) -> bool {
    let all = backend_ids();
    let Some(a) = all.iter().find(|b| b.label() == left) else { return false };
    let Some(b) = all.iter().find(|b| b.label() == right) else { return false };
    let run = |id: &BackendId| match id.engine {
        Engine::InterpRaw | Engine::InterpFused => run_interp(image, *id, max_insts),
        _ => run_dbt_engine(image, *id, max_insts),
    };
    let (ra, rb) = (run(a), run(b));
    diff_for_pair(&ra, &rb, tier).is_some()
}

/// Every backend id of the matrix, in matrix order.
pub fn backend_ids() -> Vec<BackendId> {
    let mut ids = vec![
        BackendId { engine: Engine::InterpRaw, technique: None, style: UpdateStyle::Jcc },
        BackendId { engine: Engine::InterpFused, technique: None, style: UpdateStyle::Jcc },
    ];
    for (technique, style) in technique_matrix() {
        ids.push(BackendId { engine: Engine::DbtStep, technique, style });
        ids.push(BackendId { engine: Engine::DbtFused, technique, style });
        ids.push(BackendId { engine: Engine::DbtNative, technique, style });
        if config_supports_tier(technique) {
            ids.push(BackendId { engine: Engine::DbtTierFused, technique, style });
            ids.push(BackendId { engine: Engine::DbtTierNative, technique, style });
        }
    }
    ids
}

/// The comparison the oracle would apply to this specific pair.
fn diff_for_pair(a: &BackendRun, b: &BackendRun, tier: Tier) -> Option<Divergence> {
    use Engine::*;
    match (a.id.engine, b.id.engine) {
        (InterpRaw, InterpFused) | (InterpFused, InterpRaw) => diff_exact_cpu(a, b),
        (DbtTierFused | DbtTierNative, DbtTierFused | DbtTierNative) => diff_dispatch_pair(a, b),
        (DbtStep | DbtFused | DbtNative, DbtTierFused | DbtTierNative) => diff_tier_pair(a, b),
        (DbtTierFused | DbtTierNative, DbtStep | DbtFused | DbtNative) => diff_tier_pair(b, a),
        (DbtStep | DbtFused | DbtNative, DbtStep | DbtFused | DbtNative) => {
            diff_dispatch_pair(a, b)
        }
        (InterpRaw | InterpFused, _) => diff_cross_engine(a, b, tier),
        (_, InterpRaw | InterpFused) => diff_cross_engine(b, a, tier),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Tier};

    #[test]
    fn matrix_covers_all_paths_and_techniques() {
        let ids = backend_ids();
        // 2 interpreters + 3 DBT flavours per config + 2 tier flavours on
        // the 3 trace-capable configs (baseline, EdgCF × both styles).
        assert_eq!(ids.len(), 2 + 3 * (1 + 2 * 5) + 2 * 3);
        for engine in [
            Engine::InterpRaw,
            Engine::InterpFused,
            Engine::DbtStep,
            Engine::DbtFused,
            Engine::DbtNative,
            Engine::DbtTierFused,
            Engine::DbtTierNative,
        ] {
            assert!(ids.iter().any(|b| b.engine == engine));
        }
        for kind in TechniqueKind::ALL_FIVE {
            for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
                assert!(ids.iter().any(|b| b.technique == Some(kind) && b.style == style));
            }
        }
        // Labels are unique (they key divergence records).
        let mut labels: Vec<_> = ids.iter().map(|b| b.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), ids.len());
    }

    #[test]
    fn clean_programs_produce_no_divergence() {
        for seed in [3u64, 17] {
            for tier in [Tier::MiniC, Tier::Visa] {
                let prog = generate(seed, tier);
                let report = run_oracle(&prog, 2_000_000);
                assert!(
                    report.divergence.is_none(),
                    "seed {seed} {tier:?}: {:?}",
                    report.divergence
                );
            }
        }
    }

    #[test]
    fn tier_backends_promote_mid_run() {
        if !cfed_dbt::tier_enabled() {
            return; // CFED_NO_TIER=1: tier backends degrade by design
        }
        // MiniC programs are loop-heavy: at threshold 4 the tiered backends
        // must actually form traces mid-run, or the new matrix rows would be
        // silently inert.
        let mut traces = 0u64;
        for seed in [3u64, 17] {
            let prog = generate(seed, Tier::MiniC);
            let report = run_oracle(&prog, 2_000_000);
            assert!(report.divergence.is_none(), "seed {seed}: {:?}", report.divergence);
            for run in &report.runs {
                if run.id.engine.is_tiered() {
                    traces += run.dbt.as_ref().expect("dbt stats").traces;
                }
            }
        }
        assert!(traces >= 1, "no tiered backend promoted on loop-heavy programs");
    }

    #[test]
    fn trace_flush_scenario_survives_the_full_matrix() {
        // Tier-up followed by an SMC store into the traced page: the
        // demotion/retranslation path must stay coherent across all 41
        // backends (generated programs rarely hit this combination, so the
        // scenario is pinned by hand).
        use cfed_isa::{AluOp, Inst, Reg};
        let patch = Inst::AluI { op: AluOp::Add, dst: Reg::R5, imm: 2 };
        let mut asm = cfed_asm::Asm::new();
        let pool = asm.data_u64(&[u64::from_le_bytes(patch.encode())]);
        asm.label("start");
        asm.call("hotfn");
        asm.mov_addr(Reg::R2, pool);
        asm.ld(Reg::R3, Reg::R2, 0);
        asm.mov_label(Reg::R4, "patchsite");
        asm.st(Reg::R4, Reg::R3, 0);
        asm.call("hotfn");
        asm.halt();
        asm.label("hotfn");
        asm.movri(Reg::R0, 0);
        asm.movri(Reg::R5, 0);
        asm.label("body");
        asm.label("patchsite");
        asm.alu(AluOp::Add, Reg::R5, Reg::R0);
        asm.alui(AluOp::Add, Reg::R0, 1);
        asm.cmpi(Reg::R0, 50);
        asm.jcc(cfed_isa::Cond::L, "body");
        asm.out(Reg::R5);
        asm.ret();
        let image = asm.assemble("start").unwrap();
        let prog = GeneratedProgram { tier: Tier::Visa, seed: 0, source: None, image };
        let report = run_oracle(&prog, 2_000_000);
        assert!(report.divergence.is_none(), "{:?}", report.divergence);
        if cfed_dbt::tier_enabled() {
            let demoted = report.runs.iter().any(|r| {
                r.id.engine.is_tiered()
                    && r.dbt.as_ref().is_some_and(|s| s.traces >= 1 && s.trace_demotions >= 1)
            });
            assert!(demoted, "the SMC store must flush an installed trace");
        }
    }

    #[test]
    fn exit_normalization() {
        use cfed_sim::Trap;
        let a = DbtExit::Trapped(Trap::DivByZero { addr: 0x100 });
        let b = DbtExit::Trapped(Trap::DivByZero { addr: 0x9000 });
        assert!(exits_compatible(&a, &b));
        let c = DbtExit::Trapped(Trap::PermRead { addr: 8 });
        let d = DbtExit::Trapped(Trap::PermRead { addr: 16 });
        assert!(!exits_compatible(&c, &d));
        assert!(exits_compatible(&DbtExit::StepLimit, &c));
        assert!(!exits_compatible(&DbtExit::Halted { code: 0 }, &c));
    }
}
