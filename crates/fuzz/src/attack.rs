//! Adversarial attack oracle: attack schedules in the differential matrix.
//!
//! `cfed-fault`'s pause-style attacks seize the program counter from the
//! *live translated-code geometry*, so they exercise exactly the state the
//! execution backends must agree on: block layout, instrumentation
//! placement, and resume-from-architectural-PC semantics. This module
//! mutates a deterministic schedule of such attacks (a pure function of
//! the case seed) into the fuzzer's differential matrix: every scheduled
//! attack is mounted on the block-fused engine and on the native backend —
//! and, for trace-capable configs, on both tiered engines — and the runs
//! must be *bit-identical* per pair: same placement decision, same exit,
//! same output stream, same retired-instruction count.
//!
//! A mismatch is an engine bug by construction (the attack itself is the
//! same on both sides), and is shrunk with the generic image shrinker
//! against [`finding_reproduces`] — the cheap two-run predicate — then
//! archived as a [`RegressionMode::Attack`] reproducer replayable by
//! `cfed-fuzz replay` and the `regressions` integration test.
//!
//! Tiered runs are compared only against each other (tier-fused vs
//! tier-native): trace formation legitimately changes the translated-code
//! geometry the attack selects its target from, so a tiered run is a
//! *different experiment* from an untiered one, not a comparable pair.
//!
//! [`RegressionMode::Attack`]: crate::corpus::RegressionMode::Attack

use cfed_asm::Image;
use cfed_core::{RunConfig, TechniqueKind};
use cfed_dbt::UpdateStyle;
use cfed_fault::{pause_attack, AttackKind, PauseAttack};
use rand::{Rng, SeedableRng as _, StdRng};

/// Attack trials mounted per case (one per `CONFIGS` row) — shared by
/// `cfed-fuzz run --attacks`, `cfed-fuzz replay` and the regressions test
/// so an archived reproducer replays the exact schedule that found it.
pub const ATTACK_TRIALS: u64 = 6;

/// Promotion threshold for the tiered attack pair, matching the
/// differential oracle's [`crate::oracle::TIER_THRESHOLD`].
const TIER_THRESHOLD: u32 = 4;

/// The configurations attacks are scheduled against: the uninstrumented
/// baseline, the paper techniques under both styles, and one prior-work
/// scheme for placement diversity. Trial `t` uses row `t % CONFIGS.len()`.
const CONFIGS: [(Option<TechniqueKind>, UpdateStyle); 6] = [
    (None, UpdateStyle::Jcc),
    (Some(TechniqueKind::EdgCf), UpdateStyle::CMov),
    (Some(TechniqueKind::EdgCf), UpdateStyle::Jcc),
    (Some(TechniqueKind::Rcf), UpdateStyle::CMov),
    (Some(TechniqueKind::Ecf), UpdateStyle::CMov),
    (Some(TechniqueKind::Cfcss), UpdateStyle::Jcc),
];

/// The archetypes a pause-style mount can place. `flip-branch` perturbs a
/// branch in flight rather than seizing the program counter, so the pause
/// engine never places it (see `cfed_fault::pause_attack`).
const PAUSE_KINDS: [AttackKind; 6] = [
    AttackKind::ReenterBlock,
    AttackKind::GadgetEntry,
    AttackKind::RetGadget,
    AttackKind::EdgeSplice,
    AttackKind::JumpCorrupt,
    AttackKind::DataPivot,
];

/// One cross-engine mismatch under an attack: everything needed to re-run
/// the diverging pair (the shrinker's and replayer's contract).
#[derive(Debug, Clone)]
pub struct AttackFinding {
    /// Technique the attacked run was instrumented with.
    pub technique: Option<TechniqueKind>,
    /// Conditional-update style.
    pub style: UpdateStyle,
    /// Attack archetype.
    pub kind: AttackKind,
    /// Archetype parameter (target selector).
    pub param: u64,
    /// Instructions executed before the seizure.
    pub pause: u64,
    /// Whether the diverging pair was the tiered one.
    pub tiered: bool,
    /// Which comparison failed (`placed`, `exit`, `output`, `insts`).
    pub field: String,
    /// Human-readable detail of both sides.
    pub detail: String,
}

impl AttackFinding {
    /// Stable pair labels for report lines, mirroring the differential
    /// oracle's `left|right` convention.
    pub fn pair(&self) -> (&'static str, &'static str) {
        if self.tiered {
            ("tier-fused", "tier-native")
        } else {
            ("fused", "native")
        }
    }
}

/// Aggregate result of one program's attack schedule.
#[derive(Debug, Clone, Default)]
pub struct AttackOutcome {
    /// Trials mounted.
    pub trials: u64,
    /// Trials whose fused run actually placed the attack.
    pub placed: u64,
    /// Cross-engine mismatches (empty = engines agree under attack).
    pub findings: Vec<AttackFinding>,
}

/// The run configuration for one scheduled trial.
fn trial_config(technique: Option<TechniqueKind>, style: UpdateStyle, max_insts: u64) -> RunConfig {
    RunConfig { technique, style, max_insts, ..RunConfig::default() }
}

/// First differing field of a backend pair, in fixed comparison order.
fn diff_pause(a: &PauseAttack, b: &PauseAttack) -> Option<(String, String)> {
    if a.placed != b.placed {
        return Some(("placed".into(), format!("{} vs {}", a.placed, b.placed)));
    }
    if a.exit != b.exit {
        return Some(("exit".into(), format!("{:?} vs {:?}", a.exit, b.exit)));
    }
    if a.output != b.output {
        let n = a.output.iter().zip(&b.output).take_while(|(x, y)| x == y).count();
        return Some((
            "output".into(),
            format!(
                "streams differ at index {n} (lengths {} vs {}): {:?} vs {:?}",
                a.output.len(),
                b.output.len(),
                a.output.get(n),
                b.output.get(n)
            ),
        ));
    }
    if a.insts != b.insts {
        return Some(("insts".into(), format!("{} vs {}", a.insts, b.insts)));
    }
    None
}

/// Mounts one trial's engine pairs and returns the first mismatch.
/// `(placed, finding)` — `placed` reflects the untiered fused run.
fn run_trial(
    image: &Image,
    technique: Option<TechniqueKind>,
    style: UpdateStyle,
    kind: AttackKind,
    param: u64,
    pause: u64,
    max_insts: u64,
) -> (bool, Option<AttackFinding>) {
    let cfg = trial_config(technique, style, max_insts);
    let native = cfed_dbt::native_enabled();
    let fused = pause_attack(image, &cfg, kind, param, pause, false, None);
    let native_run = pause_attack(image, &cfg, kind, param, pause, native, None);
    let finding = |tiered: bool, (field, detail): (String, String)| AttackFinding {
        technique,
        style,
        kind,
        param,
        pause,
        tiered,
        field,
        detail,
    };
    if let Some(d) = diff_pause(&fused, &native_run) {
        return (fused.placed, Some(finding(false, d)));
    }
    // Tiered pair: only for configs the trace verifier can promote, and
    // only when the tier's ambient kill switch is off (`pause_attack`'s
    // tier config is caller-gated, like the differential oracle's).
    let tier_capable = technique.is_none_or(TechniqueKind::supports_trace_tier);
    if tier_capable && cfed_dbt::tier_enabled() {
        let threshold = Some(TIER_THRESHOLD);
        let tf = pause_attack(image, &cfg, kind, param, pause, false, threshold);
        let tn = pause_attack(image, &cfg, kind, param, pause, native, threshold);
        if let Some(d) = diff_pause(&tf, &tn) {
            return (fused.placed, Some(finding(true, d)));
        }
    }
    (fused.placed, None)
}

/// Derives trial `t`'s attack parameters from the schedule RNG. Separate
/// from [`run_trial`] so the schedule stays a pure function of the seed
/// regardless of what each trial observes.
fn schedule(
    rng: &mut StdRng,
    t: u64,
) -> (Option<TechniqueKind>, UpdateStyle, AttackKind, u64, u64) {
    let (technique, style) = CONFIGS[(t % CONFIGS.len() as u64) as usize];
    let kind = PAUSE_KINDS[rng.gen_range(0usize..PAUSE_KINDS.len())];
    let param = rng.gen::<u64>();
    // Pauses span the warm-up and steady-state of generated loops; short
    // programs simply finish before the pause, exercising the
    // attack-never-placed path on both engines.
    let pause = rng.gen_range(40u64..2_500);
    (technique, style, kind, param, pause)
}

/// Mounts the deterministic attack schedule of `seed` on `image` and diffs
/// every engine pair. The schedule depends only on `(seed, trials)`, never
/// on the image or on prior trial outcomes, so a shrunk image replays the
/// exact schedule that exposed its finding.
pub fn attack_sweep(image: &Image, seed: u64, trials: u64, max_insts: u64) -> AttackOutcome {
    let mut out = AttackOutcome::default();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77A_C4ED_2006_0000);
    for t in 0..trials {
        let (technique, style, kind, param, pause) = schedule(&mut rng, t);
        out.trials += 1;
        let (placed, finding) = run_trial(image, technique, style, kind, param, pause, max_insts);
        if placed {
            out.placed += 1;
        }
        out.findings.extend(finding);
    }
    out
}

/// Re-checks whether a specific finding's engine pair still disagrees on
/// `image` — the shrinker's predicate (2–4 runs instead of the schedule).
pub fn finding_reproduces(image: &Image, finding: &AttackFinding, max_insts: u64) -> bool {
    let cfg = trial_config(finding.technique, finding.style, max_insts);
    let native = cfed_dbt::native_enabled();
    let threshold = if finding.tiered {
        if !cfed_dbt::tier_enabled() {
            return false; // the tiered pair degenerated; nothing to compare
        }
        Some(TIER_THRESHOLD)
    } else {
        None
    };
    let left =
        pause_attack(image, &cfg, finding.kind, finding.param, finding.pause, false, threshold);
    let right =
        pause_attack(image, &cfg, finding.kind, finding.param, finding.pause, native, threshold);
    diff_pause(&left, &right).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, schedule_seed, Tier};

    #[test]
    fn schedule_is_a_pure_function_of_the_seed() {
        let mut a = StdRng::seed_from_u64(9 ^ 0xA77A_C4ED_2006_0000);
        let mut b = StdRng::seed_from_u64(9 ^ 0xA77A_C4ED_2006_0000);
        for t in 0..ATTACK_TRIALS {
            assert_eq!(format!("{:?}", schedule(&mut a, t)), format!("{:?}", schedule(&mut b, t)));
        }
    }

    #[test]
    fn engines_agree_under_attack_on_generated_programs() {
        let mut placed = 0;
        for (seed, tier) in [(11u64, Tier::MiniC), (5, Tier::Visa)] {
            let prog = generate(schedule_seed(seed, 0), tier);
            let out = attack_sweep(&prog.image, seed, ATTACK_TRIALS, 300_000);
            assert_eq!(out.trials, ATTACK_TRIALS);
            assert!(out.findings.is_empty(), "engines disagree: {:?}", out.findings);
            placed += out.placed;
        }
        // The schedule must actually mount attacks somewhere, or the
        // oracle is silently inert.
        assert!(placed > 0, "no scheduled attack ever placed");
    }

    #[test]
    fn a_clean_pair_does_not_reproduce() {
        let prog = generate(3, Tier::MiniC);
        let finding = AttackFinding {
            technique: Some(TechniqueKind::EdgCf),
            style: UpdateStyle::CMov,
            kind: AttackKind::RetGadget,
            param: 7,
            pause: 900,
            tiered: false,
            field: "exit".into(),
            detail: String::new(),
        };
        assert!(!finding_reproduces(&prog.image, &finding, 300_000));
    }
}
