//! `cfed-fuzz` — run or replay the differential conformance fuzzer.
//!
//! ```text
//! cfed-fuzz run --seed 42 --iters 200 --mode both --corpus corpus/regressions
//! cfed-fuzz run --seed 42 --time-budget 30s
//! cfed-fuzz replay corpus/regressions
//! ```
//!
//! `run` fuzzes; with `--corpus` it writes minimized reproducers and a
//! `report.txt` there. `replay` re-runs archived reproducers and exits
//! nonzero if any still fails. A fixed-seed `run` with `--iters` is
//! byte-reproducible for any `--threads` value.

use cfed_fuzz::{
    list_regressions, load_regression, run_fuzz, FuzzConfig, Mode, RegressionMode, Tier,
};
use cfed_runner::cli::Parser;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

fn run_parser() -> Parser {
    Parser::new("cfed-fuzz run", "coverage-guided differential conformance fuzzing")
        .flag("seed", "N", "0", "campaign master seed")
        .flag("iters", "N", "64", "number of generated programs")
        .flag("time-budget", "DUR", "", "optional wall-clock budget (e.g. 30s, 5m)")
        .flag("threads", "N", "0", "worker threads (0 = all cores)")
        .flag("mode", "MODE", "both", "diff, detect, or both")
        .flag("tier", "TIER", "all", "minic, visa, or all")
        .flag("max-insts", "N", "2000000", "per-backend instruction budget")
        .flag("detect-branches", "N", "4", "branch sites swept per program in detect mode")
        .switch("attacks", "mount the adversarial attack schedule on every case")
        .flag("corpus", "DIR", "", "write minimized reproducers and report.txt here")
        .switch("quiet", "suppress the report body on stdout")
}

fn parse_duration(raw: &str) -> Result<Duration, String> {
    let (num, unit) = raw.split_at(raw.find(|c: char| !c.is_ascii_digit()).unwrap_or(raw.len()));
    let n: u64 = num.parse().map_err(|_| format!("bad duration {raw:?}"))?;
    match unit {
        "" | "s" => Ok(Duration::from_secs(n)),
        "m" => Ok(Duration::from_secs(n * 60)),
        "ms" => Ok(Duration::from_millis(n)),
        _ => Err(format!("bad duration unit {unit:?} in {raw:?} (use ms, s or m)")),
    }
}

fn parse_seed(raw: &str) -> Result<u64, String> {
    let raw = raw.trim();
    if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|_| format!("bad seed {raw:?}"))
    } else {
        raw.parse().map_err(|_| format!("bad seed {raw:?}"))
    }
}

fn cmd_run(argv: &[String]) -> Result<ExitCode, String> {
    let args = run_parser().parse_from(argv);
    let tiers = match args.get("tier").unwrap_or("all") {
        "all" => vec![Tier::MiniC, Tier::Visa],
        t => vec![Tier::parse(t)
            .ok_or_else(|| format!("--tier expects minic, visa or all, got {t:?}"))?],
    };
    let time_budget = match args.get("time-budget").unwrap_or("") {
        "" => None,
        raw => Some(parse_duration(raw)?),
    };
    let corpus_dir = match args.get("corpus").unwrap_or("") {
        "" => None,
        dir => Some(PathBuf::from(dir)),
    };
    let cfg = FuzzConfig {
        seed: parse_seed(args.get("seed").unwrap_or("0"))?,
        iters: args.get_u64("iters")?,
        threads: args.get_usize("threads")?,
        max_insts: args.get_u64("max-insts")?,
        mode: Mode::parse(args.get("mode").unwrap_or("both")).ok_or_else(|| {
            format!("--mode expects diff, detect or both, got {:?}", args.get("mode").unwrap_or(""))
        })?,
        tiers,
        detect_branches: args.get_u64("detect-branches")?,
        attacks: args.has("attacks"),
        corpus_dir: corpus_dir.clone(),
        time_budget,
    };
    let report = run_fuzz(&cfg);
    if !args.has("quiet") {
        print!("{}", report.text);
    }
    for path in &report.written {
        eprintln!("cfed-fuzz: wrote reproducer {}", path.display());
    }
    if let Some(dir) = &corpus_dir {
        std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        std::fs::write(dir.join("report.txt"), &report.text).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "cfed-fuzz: {} cases, {} retained, {} coverage bits, {} divergences, {} SDC violations, \
         {} attack divergences",
        report.cases,
        report.retained,
        report.coverage_bits,
        report.divergences,
        report.sdc_violations,
        report.attack_divergences
    );
    Ok(if report.clean() { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn replay_one(path: &Path, max_insts: u64) -> Result<(), String> {
    let entry = load_regression(path)?;
    match entry.mode {
        RegressionMode::Diff => {
            // Re-run the full oracle: an archived divergence must stay fixed
            // against every backend pair, not just the one that found it.
            let prog = cfed_fuzz::GeneratedProgram {
                tier: entry.tier,
                seed: entry.seed,
                source: None,
                image: entry.image.clone(),
            };
            let report = cfed_fuzz::run_oracle(&prog, max_insts);
            match report.divergence {
                None => Ok(()),
                Some(d) => Err(format!(
                    "{}: still diverges: {}|{} {} — {}",
                    path.display(),
                    d.left,
                    d.right,
                    d.field,
                    d.detail
                )),
            }
        }
        RegressionMode::Detect => {
            let out = cfed_fuzz::detection_sweep(&entry.image, 8, max_insts);
            if out.violations.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{}: detection guarantee still violated: {:?}",
                    path.display(),
                    out.violations
                ))
            }
        }
        RegressionMode::Attack => {
            // The schedule is a pure function of the archived seed, so
            // replaying the sweep replays the exact trial that diverged.
            let out = cfed_fuzz::attack_sweep(
                &entry.image,
                entry.seed,
                cfed_fuzz::ATTACK_TRIALS,
                max_insts,
            );
            if out.findings.is_empty() {
                Ok(())
            } else {
                Err(format!(
                    "{}: engines still disagree under attack: {:?}",
                    path.display(),
                    out.findings
                ))
            }
        }
    }
}

fn cmd_replay(paths: &[String]) -> Result<ExitCode, String> {
    let mut files = Vec::new();
    for p in paths {
        let path = Path::new(p);
        if path.is_dir() {
            files.extend(list_regressions(path));
        } else {
            files.push(path.to_path_buf());
        }
    }
    if files.is_empty() {
        eprintln!("cfed-fuzz replay: no regression files found");
        return Ok(ExitCode::SUCCESS);
    }
    let mut failures = 0usize;
    for f in &files {
        match replay_one(f, 2_000_000) {
            Ok(()) => eprintln!("cfed-fuzz replay: {} ok", f.display()),
            Err(e) => {
                failures += 1;
                eprintln!("cfed-fuzz replay: FAIL {e}");
            }
        }
    }
    eprintln!("cfed-fuzz replay: {} file(s), {failures} failure(s)", files.len());
    Ok(if failures == 0 { ExitCode::SUCCESS } else { ExitCode::from(1) })
}

fn usage() -> String {
    format!(
        "cfed-fuzz — coverage-guided differential conformance engine\n\n\
         Usage:\n  cfed-fuzz run [OPTIONS]\n  cfed-fuzz replay <FILE|DIR>...\n\n{}",
        run_parser().usage()
    )
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("run") => cmd_run(&argv[1..]),
        Some("replay") => {
            let rest = &argv[1..];
            if rest.is_empty() || rest.iter().any(|a| a == "--help" || a == "-h") {
                print!("{}", usage());
                return ExitCode::SUCCESS;
            }
            cmd_replay(rest)
        }
        Some("--help") | Some("-h") | None => {
            print!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?} (expected run or replay)")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("cfed-fuzz: {e}\n\n{}", usage());
            ExitCode::from(2)
        }
    }
}

// The CLI plumbing that doesn't exit the process is unit-tested here; the
// campaign and replay logic live in the library and are tested there.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_parse() {
        assert_eq!(parse_duration("30s").unwrap(), Duration::from_secs(30));
        assert_eq!(parse_duration("5m").unwrap(), Duration::from_secs(300));
        assert_eq!(parse_duration("250ms").unwrap(), Duration::from_millis(250));
        assert_eq!(parse_duration("7").unwrap(), Duration::from_secs(7));
        assert!(parse_duration("7h").is_err());
        assert!(parse_duration("fast").is_err());
    }

    #[test]
    fn seeds_parse_decimal_and_hex() {
        assert_eq!(parse_seed("42").unwrap(), 42);
        assert_eq!(parse_seed("0xff").unwrap(), 255);
        assert!(parse_seed("-1").is_err());
    }
}
