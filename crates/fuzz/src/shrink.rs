//! Divergence minimizer.
//!
//! Reduces a failing program to a locally-minimal reproducer by repeatedly
//! neutralizing instructions (`nop`, then `halt`) and zeroing data words,
//! keeping each edit only if the caller's predicate still fails. Edits
//! never change instruction count, so branch offsets stay valid without
//! relinking; the result is an image with the same shape and a much
//! smaller behaviour.

use cfed_asm::{Asm, Image};
use cfed_isa::Inst;

/// Reassembles an instruction list + data blob into an image with the same
/// layout conventions as the original (default code/data bases, entry at
/// instruction index `entry_index`). Returns `None` if assembly fails —
/// callers treat that as "edit rejected".
pub fn rebuild_image(insts: &[Inst], data: &[u8], entry_index: usize) -> Option<Image> {
    let mut a = Asm::new();
    if !data.is_empty() {
        a.data_bytes(data);
    }
    for (i, inst) in insts.iter().enumerate() {
        if i == entry_index {
            a.label("entry");
        }
        a.raw(*inst);
    }
    if entry_index >= insts.len() {
        return None;
    }
    a.assemble("entry").ok()
}

/// Number of full passes the shrinker makes before declaring a fixpoint.
/// Each pass is O(len) predicate evaluations; divergence predicates re-run
/// two backends, detection predicates re-run a fault sweep, so the cap
/// bounds worst-case shrink cost on large programs.
const MAX_PASSES: usize = 8;

/// Minimizes `image` against `still_fails` (which must return `true` for
/// the original image). Returns the reduced image and the number of edits
/// that stuck.
pub fn shrink_image<F: Fn(&Image) -> bool>(image: &Image, still_fails: F) -> (Image, usize) {
    let entry_index = (image.entry_offset() / 8) as usize;
    let mut insts: Vec<Inst> = image.insts().to_vec();
    let mut data: Vec<u8> = image.data().to_vec();
    let mut kept_edits = 0usize;

    for _pass in 0..MAX_PASSES {
        let mut changed = false;
        for i in 0..insts.len() {
            for replacement in [Inst::Nop, Inst::Halt] {
                if insts[i] == replacement {
                    continue;
                }
                let old = insts[i];
                insts[i] = replacement;
                let keep =
                    rebuild_image(&insts, &data, entry_index).is_some_and(|img| still_fails(&img));
                if keep {
                    kept_edits += 1;
                    changed = true;
                    break;
                }
                insts[i] = old;
            }
        }
        // Zero data one 8-byte word at a time.
        for w in 0..data.len() / 8 {
            let range = w * 8..w * 8 + 8;
            if data[range.clone()].iter().all(|b| *b == 0) {
                continue;
            }
            let saved: Vec<u8> = data[range.clone()].to_vec();
            data[range.clone()].fill(0);
            let keep =
                rebuild_image(&insts, &data, entry_index).is_some_and(|img| still_fails(&img));
            if keep {
                kept_edits += 1;
                changed = true;
            } else {
                data[range].copy_from_slice(&saved);
            }
        }
        if !changed {
            break;
        }
    }

    let reduced = rebuild_image(&insts, &data, entry_index)
        .expect("shrinker invariant: accepted edits always reassemble");
    (reduced, kept_edits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_isa::Reg;

    fn sample() -> Image {
        let mut a = Asm::new();
        a.label("entry");
        a.movri(Reg::R0, 1);
        a.movri(Reg::R1, 2);
        a.out(Reg::R1);
        a.halt();
        a.assemble("entry").unwrap()
    }

    #[test]
    fn rebuild_round_trips() {
        let img = sample();
        let rebuilt = rebuild_image(img.insts(), img.data(), 0).unwrap();
        assert_eq!(rebuilt.code(), img.code());
        assert_eq!(rebuilt.entry_offset(), img.entry_offset());
    }

    #[test]
    fn shrink_neutralizes_irrelevant_instructions() {
        let img = sample();
        // Predicate: the program still outputs 2 — r0's mov is irrelevant.
        let fails = |i: &Image| {
            let mut m = cfed_sim::Machine::load(i.code(), i.data(), i.entry_offset());
            m.run(1000);
            m.cpu.take_output() == vec![2]
        };
        assert!(fails(&img));
        let (reduced, edits) = shrink_image(&img, fails);
        assert!(edits >= 1, "the r0 mov should have been neutralized");
        assert!(fails(&reduced));
        assert_eq!(reduced.insts()[0], Inst::Nop);
    }

    #[test]
    fn entry_out_of_range_rejected() {
        assert!(rebuild_image(&[Inst::Halt], &[], 3).is_none());
    }
}
