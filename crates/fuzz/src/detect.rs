//! Detection-guarantee oracle.
//!
//! The paper's claim for its own techniques (EdgCF, RCF) is that every
//! branch error is either detected or benign — never silent data
//! corruption. This module checks that claim *in vivo* on generated
//! programs: for each of the first `branch_cap` dynamic branch sites, every
//! single-bit flip of the 32-bit branch offset and every flip of the 6-bit
//! flags register is injected through the `cfed-fault` snapshot engine,
//! under both conditional-update styles.
//!
//! The guarantee is style-scoped, matching the paper's Figure 14 and the
//! campaign-level tests in `cfed-fault`:
//!
//! - **CMov** (the safe configuration): *any* SDC is a violation. The
//!   flag-conditional update consumes the true flags before the branch
//!   executes, so even a mistaken branch direction trips the target check.
//! - **Jcc** (the fast configuration): the inserted selector branch is
//!   itself flag-dependent, so a flag fault there mis-selects the update
//!   consistently with the wrong arm — equivalent to a data fault in the
//!   flag-producing instruction, outside any signature scheme's reach.
//!   Those injections classify as [`Category::A`] (mistaken branch) and are
//!   exempt; an SDC in any *other* category is a violation.
//!
//! One exemption applies to both styles: a fault whose target lands
//! *inside a translated block's instrumentation* — the head check sequence
//! or the terminator glue — rather than on a copied guest instruction.
//! The paper's §2/§4 model is block-granular: checks guard block *arrival*,
//! and the update/check/branch sequences are atomic nodes in it. A landing
//! past a block's signature updates is indistinguishable from taking that
//! edge legitimately (the extreme case: landing directly on the terminal
//! `Halt`, where zero instructions separate the fault from program end), so
//! no software-only signature scheme can see it. [`InjectionResult`] flags
//! these landings; `latency_insts <= 1` is kept as a backstop for
//! jump-inlined traces whose body layout is unknown to the classifier.
//!
//! [`InjectionResult`]: cfed_fault::InjectionResult
//!
//! Finally, an SDC classified [`Category::NoError`] is exempt: the fault
//! never altered control flow at all, so the corruption propagated through
//! *data* — e.g. a flag flip that changes no branch direction but is
//! consumed by a guest `CMov`'s value selection. Control-flow checking
//! schemes do not claim data faults (paper §2); the fuzz generator's guest
//! `CMov`s surface this class where curated workloads never did.

use cfed_asm::Image;
use cfed_core::{Category, RunConfig, TechniqueKind};
use cfed_dbt::UpdateStyle;
use cfed_fault::{inject_with, FaultSpec, Outcome, SnapshotSet};

/// The techniques whose detection guarantee the sweep enforces.
pub const GUARANTEED: [TechniqueKind; 2] = [TechniqueKind::EdgCf, TechniqueKind::Rcf];

/// Both conditional-update styles are swept; the guarantee differs per
/// style (see the module doc).
pub const STYLES: [UpdateStyle; 2] = [UpdateStyle::CMov, UpdateStyle::Jcc];

/// One detection-guarantee violation.
#[derive(Debug, Clone)]
pub struct SdcViolation {
    /// The technique that let the fault through.
    pub technique: TechniqueKind,
    /// The update style it was configured with.
    pub style: UpdateStyle,
    /// The fault that produced silent corruption.
    pub spec: FaultSpec,
    /// How the fault classified (never [`Category::A`] under Jcc — that
    /// class is exempt there).
    pub category: Category,
}

/// Aggregate result of one program's sweep.
#[derive(Debug, Clone, Default)]
pub struct DetectOutcome {
    /// Injections performed.
    pub injections: u64,
    /// Per-[`Outcome::ALL`] tally.
    pub tally: [u64; 6],
    /// Branch sites actually swept (after capping).
    pub sites: u64,
    /// Dynamic branch sites the program had (before capping).
    pub total_sites: u64,
    /// Silent-data-corruption violations (empty = guarantee held).
    pub violations: Vec<SdcViolation>,
    /// Programs whose golden run did not halt are skipped; this records it.
    pub skipped: bool,
}

/// Whether an SDC with this `category`, landing kind and detection latency
/// violates the guarantee under `style`.
fn is_violation(
    style: UpdateStyle,
    category: Category,
    instrumentation_landing: bool,
    latency_insts: u64,
) -> bool {
    if instrumentation_landing || latency_insts <= 1 {
        // Landed inside instrumentation glue (or directly on the terminal
        // Halt): below the block-granular model — see the module doc.
        return false;
    }
    if category == Category::NoError {
        // Control flow never deviated: the corruption propagated through
        // data (e.g. a guest CMov consuming a flipped flag), which no
        // control-flow scheme claims.
        return false;
    }
    match style {
        UpdateStyle::CMov => true,
        UpdateStyle::Jcc => category != Category::A,
    }
}

/// Sweeps every single-bit branch fault at the first `branch_cap` sites of
/// `image` under both guaranteed techniques and both update styles.
/// Returns `skipped: true` when the fault-free run does not halt under some
/// configuration (step-limit or a genuine guest trap — those configurations
/// have no golden reference to compare against).
pub fn detection_sweep(image: &Image, branch_cap: u64, max_insts: u64) -> DetectOutcome {
    let mut out = DetectOutcome::default();
    for kind in GUARANTEED {
        for style in STYLES {
            let cfg = RunConfig { max_insts, style, ..RunConfig::technique(kind) };
            let Ok((golden, snapshots)) = SnapshotSet::capture(image, &cfg) else {
                out.skipped = true;
                continue;
            };
            out.total_sites = out.total_sites.max(golden.branches);
            let sites = golden.branches.min(branch_cap);
            out.sites = out.sites.max(sites);
            for nth in 0..sites {
                for spec in site_specs(nth) {
                    let res = inject_with(image, &cfg, spec, &golden, Some(&snapshots));
                    let Ok(Some(r)) = res else { continue };
                    out.injections += 1;
                    out.tally[r.outcome.idx()] += 1;
                    let violates = r.outcome == Outcome::Sdc
                        && is_violation(
                            style,
                            r.category,
                            r.instrumentation_landing,
                            r.latency_insts,
                        );
                    if violates {
                        out.violations.push(SdcViolation {
                            technique: kind,
                            style,
                            spec,
                            category: r.category,
                        });
                    }
                }
            }
        }
    }
    out
}

/// The 38 single-bit faults at one dynamic branch site: 32 address-offset
/// bits plus 6 flag bits.
pub fn site_specs(nth: u64) -> impl Iterator<Item = FaultSpec> {
    (0u8..32)
        .map(move |bit| FaultSpec::AddrBit { nth, bit })
        .chain((0u8..6).map(move |bit| FaultSpec::FlagBit { nth, bit }))
}

/// Re-checks whether a specific violation still reproduces on `image` —
/// the shrinker's predicate for detect-mode reproducers.
pub fn violation_reproduces(image: &Image, violation: &SdcViolation, max_insts: u64) -> bool {
    let cfg = RunConfig {
        max_insts,
        style: violation.style,
        ..RunConfig::technique(violation.technique)
    };
    let Ok((golden, snapshots)) = SnapshotSet::capture(image, &cfg) else { return false };
    matches!(
        inject_with(image, &cfg, violation.spec, &golden, Some(&snapshots)),
        Ok(Some(r)) if r.outcome == Outcome::Sdc
            && is_violation(violation.style, r.category, r.instrumentation_landing, r.latency_insts)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Tier};

    #[test]
    fn site_specs_cover_38_bits() {
        let specs: Vec<_> = site_specs(2).collect();
        assert_eq!(specs.len(), 38);
        assert!(specs.iter().all(|s| matches!(
            s,
            FaultSpec::AddrBit { nth: 2, .. } | FaultSpec::FlagBit { nth: 2, .. }
        )));
    }

    #[test]
    fn category_a_is_exempt_only_under_jcc() {
        assert!(!is_violation(UpdateStyle::Jcc, Category::A, false, 100));
        assert!(is_violation(UpdateStyle::CMov, Category::A, false, 100));
        assert!(is_violation(UpdateStyle::Jcc, Category::E, false, 100));
        assert!(is_violation(UpdateStyle::CMov, Category::E, false, 100));
    }

    #[test]
    fn sub_block_landings_are_exempt() {
        // Inside instrumentation glue: below the model for both styles.
        assert!(!is_violation(UpdateStyle::CMov, Category::E, true, 100));
        assert!(!is_violation(UpdateStyle::Jcc, Category::D, true, 100));
        // Terminal-Halt backstop for traces with unknown body layout.
        assert!(!is_violation(UpdateStyle::CMov, Category::E, false, 1));
        assert!(is_violation(UpdateStyle::CMov, Category::E, false, 2));
        // NoError SDCs flowed through data, not control.
        assert!(!is_violation(UpdateStyle::CMov, Category::NoError, false, 100));
        assert!(!is_violation(UpdateStyle::Jcc, Category::NoError, false, 100));
    }

    #[test]
    fn guarantee_holds_on_a_generated_program() {
        let prog = generate(11, Tier::MiniC);
        let out = detection_sweep(&prog.image, 2, 2_000_000);
        assert!(!out.skipped, "golden run should halt");
        assert!(out.injections > 0);
        assert!(out.violations.is_empty(), "EdgCF/RCF leaked SDC: {:?}", out.violations);
    }
}
