//! # cfed-fuzz — coverage-guided differential conformance engine
//!
//! Generates structured guest programs ([`gen`]), runs each one on every
//! execution backend × control-flow-checking technique combination and
//! diffs the results ([`oracle`]), keeps programs that light up new
//! behaviour ([`coverage`]), minimizes any divergence to a locally-minimal
//! reproducer ([`shrink`]) archived in `corpus/regressions/` ([`corpus`]),
//! and — in detection-guarantee mode ([`detect`]) — checks that every
//! single-bit branch-site fault under EdgCF/RCF is Detected-or-Benign.
//! With `--attacks` it additionally mounts a deterministic adversarial
//! attack schedule ([`attack`]) on every case and requires the fused,
//! native and tiered engines to agree bit-for-bit under each attack.
//!
//! Everything is a pure function of the campaign seed: the same seed with
//! any `--threads` value produces byte-identical reports, which is what
//! makes a corpus entry a permanent, replayable artifact.
//!
//! See DESIGN.md § "Conformance & fuzzing" for the architecture.

pub mod attack;
pub mod campaign;
pub mod corpus;
pub mod coverage;
pub mod detect;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use attack::{attack_sweep, finding_reproduces, AttackFinding, AttackOutcome, ATTACK_TRIALS};
pub use campaign::{run_fuzz, FuzzConfig, FuzzReport, Mode};
pub use corpus::{
    list_regressions, load_regression, write_regression, RegressionFile, RegressionMode,
};
pub use coverage::{fingerprint, profile_classes, CoverageMap, Fingerprint};
pub use detect::{detection_sweep, violation_reproduces, DetectOutcome, SdcViolation};
pub use gen::{generate, minic_source, schedule_seed, visa_image, GeneratedProgram, Tier};
pub use oracle::{
    backend_ids, exits_compatible, pair_diverges, run_oracle, BackendId, Divergence, Engine,
    OracleReport,
};
pub use shrink::{rebuild_image, shrink_image};
