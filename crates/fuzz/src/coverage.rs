//! Behavioural coverage feedback.
//!
//! Each program is condensed into a [`Fingerprint`] — a bitset over the
//! behaviours the stack's counters can distinguish: which opcode classes
//! executed, how the run ended, whether the decode cache hit / missed /
//! invalidated, which DBT mechanisms fired (SMC flushes, retranslations,
//! evictions, jump inlining, chaining, dispatch inline-cache hits) and
//! log-bucketed magnitudes (blocks translated, output length, retired
//! instructions). A program is retained in the corpus iff its fingerprint
//! sets a bit no earlier program set — cheap, deterministic, and directly
//! tied to the counters `cfed-telemetry` exports.

use crate::gen::GeneratedProgram;
use crate::oracle::{Engine, OracleReport};
use cfed_dbt::DbtExit;
use cfed_isa::Inst;
use cfed_sim::{Machine, Step, Trap};

/// A program's behaviour bitset. Bit layout:
///
/// * 0–27: opcode class executed (one bit per [`Inst`] variant)
/// * 32–41: exit kind (halt, step-limit, one bit per trap variant)
/// * 44–46: decode cache hits / misses / invalidations observed
/// * 48–54: DBT counters nonzero (smc_flushes, retranslations,
///   cache_evictions, inlined_jumps, chains, dispatch_ic_hits, dispatches)
/// * 56–59: log₂ bucket of blocks translated
/// * 60–63: log₂ bucket of output length
/// * 64–69: log₂ bucket of retired instructions
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Bits set here and not in `seen`.
    pub fn novel_vs(self, seen: u128) -> u128 {
        self.0 & !seen
    }
}

fn opcode_class(inst: &Inst) -> u32 {
    match inst {
        Inst::Nop => 0,
        Inst::Halt => 1,
        Inst::Out { .. } => 2,
        Inst::Trap { .. } => 3,
        Inst::MovRR { .. } => 4,
        Inst::MovRI { .. } => 5,
        Inst::Ld { .. } => 6,
        Inst::St { .. } => 7,
        Inst::Ld8 { .. } => 8,
        Inst::St8 { .. } => 9,
        Inst::Push { .. } => 10,
        Inst::Pop { .. } => 11,
        Inst::CMov { .. } => 12,
        Inst::Alu { .. } => 13,
        Inst::AluI { .. } => 14,
        Inst::Neg { .. } => 15,
        Inst::Not { .. } => 16,
        Inst::Lea { .. } => 17,
        Inst::Lea2 { .. } => 18,
        Inst::LeaSub { .. } => 19,
        Inst::Jmp { .. } => 20,
        Inst::Jcc { .. } => 21,
        Inst::JRz { .. } => 22,
        Inst::JRnz { .. } => 23,
        Inst::Call { .. } => 24,
        Inst::CallR { .. } => 25,
        Inst::JmpR { .. } => 26,
        Inst::Ret => 27,
    }
}

fn exit_bit(exit: &DbtExit) -> u32 {
    match exit {
        DbtExit::Halted { .. } => 32,
        DbtExit::StepLimit => 33,
        DbtExit::Trapped(t) => match t {
            Trap::OutOfRange { .. } => 34,
            Trap::PermRead { .. } => 35,
            Trap::PermWrite { .. } => 36,
            Trap::PermExec { .. } => 37,
            Trap::UnalignedFetch { .. } => 38,
            Trap::InvalidInst { .. } => 39,
            Trap::DivByZero { .. } => 40,
            Trap::Software { .. } => 41,
        },
    }
}

fn log2_bucket(v: u64) -> u32 {
    (64 - v.leading_zeros()).min(15) / 4
}

/// Profiles which opcode classes a program actually executes: a bounded
/// interpreter walk (decode cache on, so invalidation behaviour also
/// registers) peeking each instruction before retiring it. Deliberately
/// decoupled from the oracle's runs — it only needs class bits, not exact
/// exit semantics.
pub fn profile_classes(prog: &GeneratedProgram, max_insts: u64) -> u128 {
    let image = &prog.image;
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut bits = 0u128;
    for _ in 0..max_insts {
        match m.peek_inst() {
            Ok(inst) => bits |= 1u128 << opcode_class(&inst),
            Err(_) => break,
        }
        match m.step_cpu() {
            Ok(Step::Continue) => {}
            Ok(Step::Halt) | Err(_) => break,
        }
    }
    if let Some(ic) = m.decode_cache_stats() {
        if ic.hits > 0 {
            bits |= 1 << 44;
        }
        if ic.misses > 0 {
            bits |= 1 << 45;
        }
        if ic.invalidations > 0 {
            bits |= 1 << 46;
        }
    }
    bits
}

/// Condenses one oracle report (plus the class profile) into a fingerprint.
pub fn fingerprint(prog: &GeneratedProgram, report: &OracleReport, max_insts: u64) -> Fingerprint {
    let mut bits = profile_classes(prog, max_insts);
    for run in &report.runs {
        // Trace-tier runs shift where instruction budgets bite, and they
        // degrade to plain runs under CFED_NO_TIER=1. Excluding them keeps
        // a fixed-seed campaign byte-identical across tier on/off.
        if run.id.engine.is_tiered() {
            continue;
        }
        bits |= 1u128 << exit_bit(&run.exit);
    }
    // DBT mechanism bits and magnitude buckets from the uninstrumented
    // block-fused run — the canonical translator behaviour of the program.
    if let Some(base) =
        report.runs.iter().find(|r| r.id.engine == Engine::DbtFused && r.id.technique.is_none())
    {
        if let Some(s) = &base.dbt {
            for (i, v) in [
                s.smc_flushes,
                s.retranslations,
                s.cache_evictions,
                s.inlined_jumps,
                s.chains,
                s.dispatch_ic_hits,
                s.dispatches,
            ]
            .iter()
            .enumerate()
            {
                if *v > 0 {
                    bits |= 1u128 << (48 + i as u32);
                }
            }
            bits |= 1u128 << (56 + log2_bucket(s.blocks));
        }
        bits |= 1u128 << (60 + log2_bucket(base.output.len() as u64));
        bits |= 1u128 << (64 + log2_bucket(base.insts));
    }
    Fingerprint(bits)
}

/// The campaign's accumulated coverage.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoverageMap {
    /// Union of every retained program's fingerprint.
    pub seen: u128,
}

impl CoverageMap {
    /// Empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Merges `fp`; returns `true` (retain) iff it set a new bit.
    pub fn record(&mut self, fp: Fingerprint) -> bool {
        let novel = fp.novel_vs(self.seen);
        self.seen |= fp.0;
        novel != 0
    }

    /// Number of distinct behaviour bits observed so far.
    pub fn bits(&self) -> u32 {
        self.seen.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, Tier};
    use crate::oracle::run_oracle;

    #[test]
    fn retention_is_novelty_driven() {
        let mut map = CoverageMap::new();
        assert!(map.record(Fingerprint(0b101)));
        assert!(!map.record(Fingerprint(0b001)));
        assert!(map.record(Fingerprint(0b010)));
        assert_eq!(map.bits(), 3);
    }

    #[test]
    fn fingerprints_reflect_program_behaviour() {
        let prog = generate(5, Tier::MiniC);
        let report = run_oracle(&prog, 2_000_000);
        let fp = fingerprint(&prog, &report, 2_000_000);
        assert_ne!(fp.0, 0);
        // A MiniC program always retires ALU ops and calls.
        assert_ne!(fp.0 & (1 << 13 | 1 << 24), 0);
        // Deterministic.
        assert_eq!(fp, fingerprint(&prog, &run_oracle(&prog, 2_000_000), 2_000_000));
    }
}
