//! The two-tier structured program generator.
//!
//! Tier one emits MiniC source (loops, calls, recursion, arrays, guarded
//! division, early returns) and lowers it through `cfed-lang`, so the
//! generated programs look like compiler output. Tier two assembles raw
//! VISA the compiler never produces — indirect jumps through address
//! tables, flag-free `jrz`/`jrnz` loops, flag-preserving `lea` chains and
//! a self-modifying store behind a runtime flag — to exercise the decode
//! cache and DBT invalidation paths.
//!
//! Generation is a pure function of the seed: no wall clock, no OS
//! randomness, no global state. The same seed always yields the same
//! [`cfed_asm::Image`], which is what makes the corpus and every verdict
//! reproducible.

use cfed_asm::{Asm, Image};
use cfed_isa::{AluOp, Cond, Inst, Reg};
use rand::{Rng, SeedableRng as _, StdRng};

/// Which generator tier produced a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// MiniC source lowered through `cfed-lang`.
    MiniC,
    /// Raw VISA assembled directly (encodings the compiler never emits).
    Visa,
}

impl Tier {
    /// Short stable name used in reports and regression files.
    pub fn name(self) -> &'static str {
        match self {
            Tier::MiniC => "minic",
            Tier::Visa => "visa",
        }
    }

    /// Parses [`Tier::name`] back.
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "minic" => Some(Tier::MiniC),
            "visa" => Some(Tier::Visa),
            _ => None,
        }
    }
}

/// One generated program, ready for the oracle.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// Generator tier.
    pub tier: Tier,
    /// The seed that produced it (replay key).
    pub seed: u64,
    /// MiniC source, for tier-one programs (provenance in regression files).
    pub source: Option<String>,
    /// The linked image every backend runs.
    pub image: Image,
}

/// Derives the per-iteration seed from the campaign seed. O(1), collision
/// scattered by splitmix64 — the schedule the whole corpus reproduces from.
pub fn schedule_seed(campaign_seed: u64, index: u64) -> u64 {
    let mut x = campaign_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index.wrapping_add(1));
    rand::splitmix64(&mut x)
}

/// Generates the program for `seed` in the given tier.
pub fn generate(seed: u64, tier: Tier) -> GeneratedProgram {
    match tier {
        Tier::MiniC => {
            let source = minic_source(seed);
            let image = cfed_lang::compile(&source).expect("generated MiniC always compiles");
            GeneratedProgram { tier, seed, source: Some(source), image }
        }
        Tier::Visa => GeneratedProgram { tier, seed, source: None, image: visa_image(seed) },
    }
}

// ---------------------------------------------------------------------------
// Tier one: MiniC
// ---------------------------------------------------------------------------

/// Size of the global array tier-one programs index into (power of two so
/// `% ARR` never leaves the array).
const ARR: u64 = 32;

fn minic_expr(rng: &mut StdRng, depth: u32) -> String {
    if depth == 0 {
        return match rng.gen_range(0u32..5) {
            0 => rng.gen_range(0i64..100).to_string(),
            1 => "a".to_string(),
            2 => "b".to_string(),
            3 => "c".to_string(),
            _ => format!("arr[(c + {}) % {ARR}]", rng.gen_range(0u64..ARR)),
        };
    }
    let sub = |rng: &mut StdRng| minic_expr(rng, depth - 1);
    match rng.gen_range(0u32..10) {
        0..=4 => {
            let ops = ["+", "-", "*", "&", "|", "^"];
            let op = ops[rng.gen_range(0usize..ops.len())];
            let (l, r) = (sub(rng), sub(rng));
            format!("(({l}) {op} ({r}))")
        }
        5 => {
            // Shift amounts masked so behaviour is well-defined and small.
            let (l, r) = (sub(rng), sub(rng));
            if rng.gen_bool(0.5) {
                format!("(({l}) << (({r}) & 7))")
            } else {
                format!("((({l}) & 0xFFFFFF) >> (({r}) & 7))")
            }
        }
        6 => {
            // Guarded division / modulo: divisor forced nonzero.
            let (l, r) = (sub(rng), sub(rng));
            let op = if rng.gen_bool(0.5) { "/" } else { "%" };
            format!("(({l}) {op} ((({r}) & 15) + 1))")
        }
        7 => {
            let (l, r) = (sub(rng), sub(rng));
            format!("(({l}) < ({r}))")
        }
        8 => {
            let (l, r) = (sub(rng), sub(rng));
            if rng.gen_bool(0.5) {
                format!("((({l}) == ({r})) && (({l}) < 90))")
            } else {
                format!("((({l}) < 50) || (({r}) < 50))")
            }
        }
        _ => sub(rng),
    }
}

/// Generates one MiniC program from `seed`. Always compiles; always
/// terminates (loops are bounded, recursion depth is bounded).
pub fn minic_source(seed: u64) -> String {
    let rng = &mut StdRng::seed_from_u64(seed);
    let bound = rng.gen_range(2u64..24);
    let init_a = rng.gen_range(0i64..1000);
    let init_b = rng.gen_range(0i64..1000);
    let rec_n = rng.gen_range(2u64..10);
    let cond = minic_expr(rng, 2);
    let e1 = minic_expr(rng, 3);
    let e2 = minic_expr(rng, 3);
    let e3 = minic_expr(rng, 2);
    let early = rng.gen_bool(0.4);
    let early_stmt = if early {
        format!("if ((acc & 63) == {}) {{ return acc & 255; }}", rng.gen_range(0u64..64))
    } else {
        String::new()
    };
    format!(
        r#"
        global acc;
        global arr[{ARR}];
        fn rec(n) {{
            if (n < 2) {{ return n + 1; }}
            return rec(n - 1) + (n & 7);
        }}
        fn step(a, b, c) {{
            if ({cond}) {{ return {e1}; }}
            return {e2};
        }}
        fn main() {{
            let a = {init_a};
            let b = {init_b};
            let c = 0;
            acc = rec({rec_n});
            while (c < {bound}) {{
                arr[c % {ARR}] = ({e3}) & 0xFFFF;
                acc = (acc ^ step(a, b, c)) & 0xFFFFFFFF;
                a = (a + 13) & 0xFFFF;
                b = (b + 7) & 0xFFFF;
                c = c + 1;
                {early_stmt}
                out(acc);
            }}
            out(acc + arr[{bound} % {ARR}]);
        }}
        "#
    )
}

// ---------------------------------------------------------------------------
// Tier two: raw VISA
// ---------------------------------------------------------------------------

// Register conventions inside generated VISA programs, honouring the
// stack's IA-32-analog guest contract: guest code touches only r0–r7 and
// sp — r8–r13 belong to the translator and its instrumentation (see
// `cfed_dbt::instrument::regs`). Random computation stays in r0–r4; r5/r6
// are generator-managed scratch at control sites; r7 permanently holds the
// data scratch base. Loop fuel and the SMC trigger flag live in data
// memory so random ops can never corrupt control flow.
const GP: [Reg; 5] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4];
/// Scratch registers for address computation at branch/SMC sites.
const TMP_A: Reg = Reg::R5;
const TMP_B: Reg = Reg::R6;
/// Base address of the data scratch area (set once, never clobbered).
const SCRATCH: Reg = Reg::R7;

fn gp(rng: &mut StdRng) -> Reg {
    GP[rng.gen_range(0usize..GP.len())]
}

/// Emits one random straight-line instruction (never a control transfer,
/// never touching the reserved registers).
fn visa_op(a: &mut Asm, rng: &mut StdRng) {
    let (dst, src) = (gp(rng), gp(rng));
    match rng.gen_range(0u32..14) {
        0 => a.movri(dst, rng.gen_range(-1000i32..1000)),
        1 => a.movrr(dst, src),
        2 => {
            let ops = [AluOp::Add, AluOp::Sub, AluOp::And, AluOp::Or, AluOp::Xor, AluOp::Mul];
            a.alu(ops[rng.gen_range(0usize..ops.len())], dst, src);
        }
        3 => {
            let ops = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Shl, AluOp::Shr, AluOp::Sar];
            let imm = if matches!(rng.gen_range(0u32..2), 0) {
                rng.gen_range(0i32..8) // shift-sized
            } else {
                rng.gen_range(-500i32..500)
            };
            a.alui(ops[rng.gen_range(0usize..ops.len())], dst, imm);
        }
        4 => {
            // Division, usually guarded flag-free (`or src, 1` keeps the
            // divisor nonzero); occasionally unguarded so genuine
            // div-by-zero traps flow through the whole oracle matrix.
            if rng.gen_bool(0.9) {
                a.alui(AluOp::Or, src, 1);
            }
            a.alu(AluOp::Div, dst, src);
        }
        5 => {
            // Flag-preserving lea chain.
            a.lea(dst, src, rng.gen_range(-64i32..64));
            a.lea2(dst, dst, src, rng.gen_range(0i32..16));
            if rng.gen_bool(0.5) {
                a.leasub(dst, dst, src, rng.gen_range(0i32..16));
            }
        }
        6 => {
            let disp = rng.gen_range(0i32..30) * 8;
            a.st(SCRATCH, src, disp);
        }
        7 => {
            let disp = rng.gen_range(0i32..30) * 8;
            a.ld(dst, SCRATCH, disp);
        }
        8 => {
            let disp = rng.gen_range(0i32..240);
            a.st8(SCRATCH, src, disp);
            a.ld8(dst, SCRATCH, disp);
        }
        9 => {
            a.push(src);
            a.pop(dst);
        }
        10 => {
            a.cmpi(src, rng.gen_range(-50i32..50));
            a.cmov(cond_pick(rng), dst, src);
        }
        11 => a.raw(Inst::Neg { dst }),
        12 => a.raw(Inst::Not { dst }),
        _ => a.out(src),
    }
}

fn cond_pick(rng: &mut StdRng) -> Cond {
    const CONDS: [Cond; 12] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
    ];
    CONDS[rng.gen_range(0usize..CONDS.len())]
}

/// Generates one raw-VISA image from `seed`.
///
/// The program is a chain of basic blocks with forward branches (direct,
/// conditional, `jrz`/`jrnz`, indirect through a data table), fuel-bounded
/// backedges, call/ret subroutines and at most one flag-guarded
/// self-modifying store. Termination is guaranteed: every backedge burns
/// fuel (held in a data slot, updated through flag-free `ld`/`lea`/`st`)
/// and all other transfers move forward.
pub fn visa_image(seed: u64) -> Image {
    let rng = &mut StdRng::seed_from_u64(seed);
    let n_blocks = rng.gen_range(4usize..10);
    let n_subs = rng.gen_range(0usize..3);
    let use_table = rng.gen_bool(0.6);
    let use_smc = rng.gen_bool(0.4);
    let fuel = rng.gen_range(4u64..40);

    let mut a = Asm::new();
    let scratch = a.data_zeroed(256);
    // Jump-table slots (filled at runtime with &label addresses), the
    // pre-encoded SMC patch word, and the generator's control state: loop
    // fuel and the run-once SMC trigger flag.
    let table = a.data_zeroed(8 * 4);
    let patch = Inst::Out { src: Reg::R1 };
    let patch_pool = a.data_u64(&[u64::from_le_bytes(patch.encode())]);
    let fuel_slot = a.data_u64(&[fuel]);
    let flag_slot = a.data_u64(&[1]);

    a.label("entry");
    a.mov_addr(SCRATCH, scratch);
    for (i, r) in GP.iter().enumerate() {
        a.movri(*r, rng.gen_range(-100i32..100).wrapping_mul(i as i32 + 1));
    }
    if use_table {
        // Fill the table with addresses of later landing blocks. Targets
        // are always forward of the indirect-jump site, preserving
        // termination no matter which slot the masked index selects.
        a.mov_addr(TMP_A, table);
        for slot in 0..4usize {
            let target = n_blocks / 2 + (slot % (n_blocks - n_blocks / 2));
            a.mov_label(TMP_B, format!("b{target}"));
            a.st(TMP_A, TMP_B, slot as i32 * 8);
        }
    }

    for b in 0..n_blocks {
        a.label(format!("b{b}"));
        for _ in 0..rng.gen_range(1usize..6) {
            visa_op(&mut a, rng);
        }
        if use_smc && b == n_blocks / 2 {
            // Behind a run-once flag, overwrite the victim instruction in a
            // later block with `out r1` — exercising native RWX stores, the
            // decode cache's page invalidation and the DBT's SMC flush.
            let skip = a.fresh_label("smc_skip");
            a.mov_addr(TMP_A, flag_slot);
            a.ld(TMP_B, TMP_A, 0);
            a.jrz(TMP_B, skip.clone());
            a.movri(TMP_B, 0);
            a.st(TMP_A, TMP_B, 0);
            a.mov_label(TMP_A, "victim");
            a.mov_addr(TMP_B, patch_pool);
            a.ld(TMP_B, TMP_B, 0);
            a.st(TMP_A, TMP_B, 0);
            a.label(skip);
        }
        // Terminator: forward progress or a fuel-bounded backedge.
        match rng.gen_range(0u32..8) {
            0 if b + 1 < n_blocks => a.jmp(format!("b{}", b + 1)),
            1 if b + 2 < n_blocks => {
                a.cmpi(gp(rng), rng.gen_range(-20i32..20));
                a.jcc(cond_pick(rng), format!("b{}", rng.gen_range(b + 1..n_blocks)));
            }
            2 if b + 1 < n_blocks => {
                let r = gp(rng);
                if rng.gen_bool(0.5) {
                    a.jrz(r, format!("b{}", rng.gen_range(b + 1..n_blocks)));
                } else {
                    a.jrnz(r, format!("b{}", rng.gen_range(b + 1..n_blocks)));
                }
            }
            3 if b > 0 => {
                // Fuel-bounded backedge: decrement the fuel slot flag-free
                // and loop while it is nonzero.
                a.mov_addr(TMP_A, fuel_slot);
                a.ld(TMP_B, TMP_A, 0);
                a.lea(TMP_B, TMP_B, -1);
                a.st(TMP_A, TMP_B, 0);
                a.jrnz(TMP_B, format!("b{}", rng.gen_range(0..b)));
            }
            4 if use_table && b + 1 < n_blocks / 2 => {
                // Indirect jump through the table, index data-dependent.
                a.movrr(TMP_A, gp(rng));
                a.alui(AluOp::And, TMP_A, 3);
                a.alui(AluOp::Shl, TMP_A, 3);
                a.mov_addr(TMP_B, table);
                a.lea2(TMP_B, TMP_B, TMP_A, 0);
                a.ld(TMP_B, TMP_B, 0);
                a.jmpr(TMP_B);
            }
            5 if n_subs > 0 => a.call(format!("sub{}", rng.gen_range(0..n_subs))),
            _ => {} // fall through to the next block
        }
    }

    a.label("victim");
    a.out(Reg::R0);
    a.label("exit");
    a.out(Reg::R2);
    a.alu(AluOp::Xor, Reg::R0, Reg::R3);
    a.out(Reg::R0);
    a.halt();

    for s in 0..n_subs {
        a.label(format!("sub{s}"));
        for _ in 0..rng.gen_range(1usize..4) {
            visa_op(&mut a, rng);
        }
        a.ret();
    }

    a.assemble("entry").expect("generated VISA always assembles")
}

// ---------------------------------------------------------------------------
// Shared proptest strategies (satellite: one generator, many suites)
// ---------------------------------------------------------------------------

/// Proptest adapters over the seed-driven generators, so property suites
/// across the workspace draw from the same program space as the fuzzer.
pub mod strategies {
    use proptest::prelude::*;

    /// Well-formed MiniC programs (tier one of the fuzz generator).
    pub fn minic_source() -> impl Strategy<Value = String> {
        any::<u64>().prop_map(super::minic_source)
    }

    /// Token soup over MiniC's own vocabulary — likelier to reach deep
    /// parser states than raw bytes. Shared with `cfed-lang`'s robustness
    /// suite.
    pub fn minic_token_soup() -> impl Strategy<Value = String> {
        proptest::collection::vec(
            prop_oneof![
                Just("fn"),
                Just("let"),
                Just("if"),
                Just("else"),
                Just("while"),
                Just("return"),
                Just("global"),
                Just("out"),
                Just("assert"),
                Just("("),
                Just(")"),
                Just("{"),
                Just("}"),
                Just("["),
                Just("]"),
                Just(","),
                Just(";"),
                Just("="),
                Just("+"),
                Just("-"),
                Just("*"),
                Just("/"),
                Just("%"),
                Just("<"),
                Just(">"),
                Just("<="),
                Just("=="),
                Just("&&"),
                Just("||"),
                Just("!"),
                Just("~"),
                Just("x"),
                Just("y"),
                Just("main"),
                Just("0"),
                Just("1"),
                Just("42"),
                Just("0xFF"),
            ],
            0..60,
        )
        .prop_map(|toks| toks.join(" "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            assert_eq!(minic_source(seed), minic_source(seed));
            assert_eq!(visa_image(seed).code(), visa_image(seed).code());
        }
        assert_ne!(minic_source(1), minic_source(2));
    }

    #[test]
    fn schedule_is_seed_and_index_pure() {
        assert_eq!(schedule_seed(7, 3), schedule_seed(7, 3));
        assert_ne!(schedule_seed(7, 3), schedule_seed(7, 4));
        assert_ne!(schedule_seed(7, 3), schedule_seed(8, 3));
    }

    #[test]
    fn minic_tier_compiles_across_seeds() {
        for seed in 0..40u64 {
            let src = minic_source(seed);
            cfed_lang::compile(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn visa_tier_assembles_across_seeds() {
        for seed in 0..40u64 {
            let img = visa_image(seed);
            assert!(img.insts().len() > 4, "seed {seed} produced a trivial program");
        }
    }
}
