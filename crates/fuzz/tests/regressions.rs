//! Replays every archived reproducer in `corpus/regressions/` on every
//! `cargo test`. Each file was shrunk from a real divergence or a
//! detection-guarantee violation; after the underlying fix (or oracle
//! re-scoping) it must stay clean forever.

use cfed_fuzz::{
    attack_sweep, detection_sweep, list_regressions, load_regression, run_oracle, GeneratedProgram,
    RegressionMode, ATTACK_TRIALS,
};
use std::path::Path;

const MAX_INSTS: u64 = 2_000_000;
/// Branch sites swept per detect-mode reproducer — matches `cfed-fuzz
/// replay`.
const DETECT_BRANCHES: u64 = 8;

fn corpus_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/regressions")
}

#[test]
fn archived_reproducers_stay_clean() {
    let files = list_regressions(&corpus_dir());
    assert!(
        !files.is_empty(),
        "no regression files under {} — the committed corpus is gone",
        corpus_dir().display()
    );
    for path in files {
        let entry = load_regression(&path).unwrap_or_else(|e| panic!("{e}"));
        match entry.mode {
            RegressionMode::Diff => {
                let prog = GeneratedProgram {
                    tier: entry.tier,
                    seed: entry.seed,
                    source: None,
                    image: entry.image,
                };
                let report = run_oracle(&prog, MAX_INSTS);
                assert!(
                    report.divergence.is_none(),
                    "{}: diverges again: {:?}",
                    path.display(),
                    report.divergence
                );
            }
            RegressionMode::Detect => {
                let out = detection_sweep(&entry.image, DETECT_BRANCHES, MAX_INSTS);
                assert!(
                    out.violations.is_empty(),
                    "{}: detection guarantee violated again: {:?}",
                    path.display(),
                    out.violations
                );
            }
            RegressionMode::Attack => {
                let out = attack_sweep(&entry.image, entry.seed, ATTACK_TRIALS, MAX_INSTS);
                assert!(
                    out.findings.is_empty(),
                    "{}: engines disagree under attack again: {:?}",
                    path.display(),
                    out.findings
                );
            }
        }
    }
}
