//! The campaign is a pure function of its seed: the same configuration
//! must produce a byte-identical report at any thread count. This is what
//! makes `cfed-fuzz run --seed N` a reproducible CI artifact and a corpus
//! entry a permanent one.

use cfed_fuzz::{run_fuzz, FuzzConfig, Mode, Tier};

fn config(threads: usize) -> FuzzConfig {
    FuzzConfig {
        seed: 0xC0FFEE,
        iters: 8,
        threads,
        mode: Mode::Both,
        tiers: vec![Tier::MiniC, Tier::Visa],
        detect_branches: 2,
        corpus_dir: None,
        ..FuzzConfig::default()
    }
}

#[test]
fn report_is_identical_across_thread_counts() {
    let one = run_fuzz(&config(1));
    let three = run_fuzz(&config(3));
    assert_eq!(one.text, three.text, "thread count leaked into the report");
    assert_eq!(one.cases, 8);
    assert_eq!(one.divergences, three.divergences);
    assert_eq!(one.sdc_violations, three.sdc_violations);
}

#[test]
fn campaign_smoke_is_clean() {
    let report = run_fuzz(&config(2));
    assert!(report.clean(), "fixed-seed smoke campaign found a real failure:\n{}", report.text);
}

#[test]
fn report_is_identical_across_tier_on_off() {
    // The trace tier must be behaviour-preserving, so enabling it cannot
    // change what a clean campaign reports: coverage fingerprints exclude
    // the tiered runs' budget-shifted exits, and a divergence introduced by
    // tiering would be a real engine bug. Combined with the thread-count
    // test above this pins byte-identity across `--threads` × tier on/off.
    let with_tier = run_fuzz(&config(2));
    std::env::set_var("CFED_NO_TIER", "1");
    let without_tier = run_fuzz(&config(2));
    std::env::remove_var("CFED_NO_TIER");
    assert_eq!(with_tier.text, without_tier.text, "trace tier leaked into the report");
    assert_eq!(with_tier.divergences, without_tier.divergences);
    assert_eq!(with_tier.coverage_bits, without_tier.coverage_bits);
}
