//! The two-pass label assembler / program builder.

use crate::image::{Image, DEFAULT_CODE_BASE, DEFAULT_DATA_BASE};
use cfed_isa::{AluOp, Cond, Inst, Reg, INST_SIZE_U64};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors reported by [`Asm::assemble`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was bound twice.
    DuplicateLabel(String),
    /// A referenced label was never bound.
    UndefinedLabel(String),
    /// The requested entry label does not exist.
    UndefinedEntry(String),
    /// A branch displacement or absolute label address does not fit in the
    /// instruction's 32-bit field.
    OffsetOverflow { label: String },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::UndefinedEntry(l) => write!(f, "undefined entry label `{l}`"),
            AsmError::OffsetOverflow { label } => {
                write!(f, "displacement to label `{label}` overflows 32 bits")
            }
        }
    }
}

impl Error for AsmError {}

#[derive(Debug, Clone)]
enum Slot {
    Fixed(Inst),
    /// A direct branch whose offset is resolved at assembly time.
    Branch {
        kind: BranchKind,
        label: String,
    },
    /// `mov dst, &label` — materialize a label's absolute address.
    MovLabel {
        dst: Reg,
        label: String,
    },
}

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Jmp,
    Jcc(Cond),
    JRz(Reg),
    JRnz(Reg),
    Call,
}

/// A program under construction: instructions, labels, and a data section.
///
/// All convenience emitters append exactly one instruction, so instruction
/// offsets are `8 × index`.
///
/// # Examples
///
/// ```
/// use cfed_asm::Asm;
/// use cfed_isa::{AluOp, Cond, Reg};
///
/// // Count down from 5.
/// let mut a = Asm::new();
/// a.label("start");
/// a.movri(Reg::R0, 5);
/// a.label("loop");
/// a.alui(AluOp::Sub, Reg::R0, 1);
/// a.jcc(Cond::Ne, "loop");
/// a.halt();
/// let image = a.assemble("start").unwrap();
/// assert_eq!(image.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Asm {
    base: u64,
    data_base: u64,
    slots: Vec<Slot>,
    labels: BTreeMap<String, u64>, // label -> code byte offset
    duplicate: Option<String>,
    data: Vec<u8>,
    fresh: u64,
}

impl Default for Asm {
    fn default() -> Asm {
        Asm::new()
    }
}

impl Asm {
    /// Creates an assembler targeting the default code/data bases.
    pub fn new() -> Asm {
        Asm::with_bases(DEFAULT_CODE_BASE, DEFAULT_DATA_BASE)
    }

    /// Creates an assembler linking for explicit code and data base
    /// addresses.
    pub fn with_bases(base: u64, data_base: u64) -> Asm {
        Asm {
            base,
            data_base,
            slots: Vec::new(),
            labels: BTreeMap::new(),
            duplicate: None,
            data: Vec::new(),
            fresh: 0,
        }
    }

    /// Byte offset of the next emitted instruction.
    pub fn here(&self) -> u64 {
        self.slots.len() as u64 * INST_SIZE_U64
    }

    /// Binds `name` to the current position.
    ///
    /// Duplicate bindings are reported by [`Asm::assemble`].
    pub fn label(&mut self, name: impl Into<String>) {
        let name = name.into();
        if self.labels.insert(name.clone(), self.here()).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name);
        }
    }

    /// Returns a unique label with the given prefix (for generated code).
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!(".{prefix}_{}", self.fresh)
    }

    /// Appends a raw instruction.
    pub fn raw(&mut self, inst: Inst) {
        self.slots.push(Slot::Fixed(inst));
    }

    // ---- data section -------------------------------------------------

    /// Appends 64-bit words to the data section, returning the absolute
    /// address of the first one.
    pub fn data_u64(&mut self, words: &[u64]) -> u64 {
        // Keep words aligned.
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u64;
        for w in words {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Appends raw bytes to the data section, returning the absolute address
    /// of the first one.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u64 {
        let addr = self.data_base + self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Reserves `len` zeroed bytes in the data section, returning their
    /// absolute address (8-byte aligned).
    pub fn data_zeroed(&mut self, len: u64) -> u64 {
        while !self.data.len().is_multiple_of(8) {
            self.data.push(0);
        }
        let addr = self.data_base + self.data.len() as u64;
        self.data.resize(self.data.len() + len as usize, 0);
        addr
    }

    // ---- moves and memory ---------------------------------------------

    /// `mov dst, imm`.
    pub fn movri(&mut self, dst: Reg, imm: i32) {
        self.raw(Inst::MovRI { dst, imm });
    }

    /// `mov dst, src`.
    pub fn movrr(&mut self, dst: Reg, src: Reg) {
        self.raw(Inst::MovRR { dst, src });
    }

    /// `mov dst, &label` — loads a label's absolute address.
    pub fn mov_label(&mut self, dst: Reg, label: impl Into<String>) {
        self.slots.push(Slot::MovLabel { dst, label: label.into() });
    }

    /// `mov dst, addr` for an absolute data address returned by the `data_*`
    /// methods.
    ///
    /// # Panics
    ///
    /// Panics if the address does not fit in 31 bits (data addresses under
    /// the default layout always do).
    pub fn mov_addr(&mut self, dst: Reg, addr: u64) {
        assert!(addr <= i32::MAX as u64, "data address {addr:#x} exceeds imm32");
        self.movri(dst, addr as i32);
    }

    /// `ld dst, [base+disp]`.
    pub fn ld(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.raw(Inst::Ld { dst, base, disp });
    }

    /// `st [base+disp], src`.
    pub fn st(&mut self, base: Reg, src: Reg, disp: i32) {
        self.raw(Inst::St { base, src, disp });
    }

    /// `ld8 dst, [base+disp]`.
    pub fn ld8(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.raw(Inst::Ld8 { dst, base, disp });
    }

    /// `st8 [base+disp], src`.
    pub fn st8(&mut self, base: Reg, src: Reg, disp: i32) {
        self.raw(Inst::St8 { base, src, disp });
    }

    /// `push src`.
    pub fn push(&mut self, src: Reg) {
        self.raw(Inst::Push { src });
    }

    /// `pop dst`.
    pub fn pop(&mut self, dst: Reg) {
        self.raw(Inst::Pop { dst });
    }

    /// `cmov<cc> dst, src`.
    pub fn cmov(&mut self, cc: Cond, dst: Reg, src: Reg) {
        self.raw(Inst::CMov { cc, dst, src });
    }

    // ---- ALU -----------------------------------------------------------

    /// `op dst, src` (flags written).
    pub fn alu(&mut self, op: AluOp, dst: Reg, src: Reg) {
        self.raw(Inst::Alu { op, dst, src });
    }

    /// `op dst, imm` (flags written).
    pub fn alui(&mut self, op: AluOp, dst: Reg, imm: i32) {
        self.raw(Inst::AluI { op, dst, imm });
    }

    /// `cmp a, b`.
    pub fn cmp(&mut self, a: Reg, b: Reg) {
        self.alu(AluOp::Cmp, a, b);
    }

    /// `cmp a, imm`.
    pub fn cmpi(&mut self, a: Reg, imm: i32) {
        self.alui(AluOp::Cmp, a, imm);
    }

    /// `lea dst, [base+disp]` (no flags).
    pub fn lea(&mut self, dst: Reg, base: Reg, disp: i32) {
        self.raw(Inst::Lea { dst, base, disp });
    }

    /// `lea dst, [base+index+disp]` (no flags).
    pub fn lea2(&mut self, dst: Reg, base: Reg, index: Reg, disp: i32) {
        self.raw(Inst::Lea2 { dst, base, index, disp });
    }

    /// `lea dst, [base-index+disp]` (no flags).
    pub fn leasub(&mut self, dst: Reg, base: Reg, index: Reg, disp: i32) {
        self.raw(Inst::LeaSub { dst, base, index, disp });
    }

    // ---- control flow ---------------------------------------------------

    /// `jmp label`.
    pub fn jmp(&mut self, label: impl Into<String>) {
        self.slots.push(Slot::Branch { kind: BranchKind::Jmp, label: label.into() });
    }

    /// `j<cc> label`.
    pub fn jcc(&mut self, cc: Cond, label: impl Into<String>) {
        self.slots.push(Slot::Branch { kind: BranchKind::Jcc(cc), label: label.into() });
    }

    /// `jrz src, label` (flag-free).
    pub fn jrz(&mut self, src: Reg, label: impl Into<String>) {
        self.slots.push(Slot::Branch { kind: BranchKind::JRz(src), label: label.into() });
    }

    /// `jrnz src, label` (flag-free).
    pub fn jrnz(&mut self, src: Reg, label: impl Into<String>) {
        self.slots.push(Slot::Branch { kind: BranchKind::JRnz(src), label: label.into() });
    }

    /// `call label`.
    pub fn call(&mut self, label: impl Into<String>) {
        self.slots.push(Slot::Branch { kind: BranchKind::Call, label: label.into() });
    }

    /// `call target` (indirect).
    pub fn callr(&mut self, target: Reg) {
        self.raw(Inst::CallR { target });
    }

    /// `jmp target` (indirect).
    pub fn jmpr(&mut self, target: Reg) {
        self.raw(Inst::JmpR { target });
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.raw(Inst::Ret);
    }

    // ---- misc -----------------------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) {
        self.raw(Inst::Nop);
    }

    /// `halt`.
    pub fn halt(&mut self) {
        self.raw(Inst::Halt);
    }

    /// `out src`.
    pub fn out(&mut self, src: Reg) {
        self.raw(Inst::Out { src });
    }

    /// `trap code`.
    pub fn trap(&mut self, code: u32) {
        self.raw(Inst::Trap { code });
    }

    /// Resolves all labels and produces the linked [`Image`].
    ///
    /// # Errors
    ///
    /// Reports duplicate or undefined labels, an undefined entry label, and
    /// displacement overflow.
    pub fn assemble(&self, entry: &str) -> Result<Image, AsmError> {
        if let Some(dup) = &self.duplicate {
            return Err(AsmError::DuplicateLabel(dup.clone()));
        }
        let entry_offset =
            *self.labels.get(entry).ok_or_else(|| AsmError::UndefinedEntry(entry.to_string()))?;

        let lookup = |label: &str| -> Result<u64, AsmError> {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(label.to_string()))
        };

        let mut insts = Vec::with_capacity(self.slots.len());
        for (idx, slot) in self.slots.iter().enumerate() {
            let pc = idx as u64 * INST_SIZE_U64;
            let inst = match slot {
                Slot::Fixed(i) => *i,
                Slot::Branch { kind, label } => {
                    let target = lookup(label)?;
                    let disp = target as i64 - (pc as i64 + INST_SIZE_U64 as i64);
                    let offset = i32::try_from(disp)
                        .map_err(|_| AsmError::OffsetOverflow { label: label.clone() })?;
                    match kind {
                        BranchKind::Jmp => Inst::Jmp { offset },
                        BranchKind::Jcc(cc) => Inst::Jcc { cc: *cc, offset },
                        BranchKind::JRz(src) => Inst::JRz { src: *src, offset },
                        BranchKind::JRnz(src) => Inst::JRnz { src: *src, offset },
                        BranchKind::Call => Inst::Call { offset },
                    }
                }
                Slot::MovLabel { dst, label } => {
                    let addr = self.base + lookup(label)?;
                    let imm = i32::try_from(addr)
                        .map_err(|_| AsmError::OffsetOverflow { label: label.clone() })?;
                    Inst::MovRI { dst: *dst, imm }
                }
            };
            insts.push(inst);
        }

        let symbols =
            self.labels.iter().map(|(name, off)| (name.clone(), self.base + off)).collect();
        Ok(Image::new(insts, self.base, entry_offset, symbols, self.data.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.label("start");
        a.jmp("fwd"); // 0 -> 16: offset 8
        a.nop(); // 8
        a.label("fwd");
        a.jcc(Cond::E, "start"); // 16 -> 0: offset -24
        a.halt();
        let img = a.assemble("start").unwrap();
        assert_eq!(img.insts()[0], Inst::Jmp { offset: 8 });
        assert_eq!(img.insts()[2], Inst::Jcc { cc: Cond::E, offset: -24 });
    }

    #[test]
    fn duplicate_label_reported() {
        let mut a = Asm::new();
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble("x").unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn undefined_label_reported() {
        let mut a = Asm::new();
        a.label("start");
        a.jmp("nowhere");
        assert_eq!(a.assemble("start").unwrap_err(), AsmError::UndefinedLabel("nowhere".into()));
    }

    #[test]
    fn undefined_entry_reported() {
        let mut a = Asm::new();
        a.halt();
        assert_eq!(a.assemble("main").unwrap_err(), AsmError::UndefinedEntry("main".into()));
    }

    #[test]
    fn mov_label_materializes_absolute_address() {
        let mut a = Asm::new();
        a.label("start");
        a.mov_label(Reg::R1, "func");
        a.halt();
        a.label("func");
        a.ret();
        let img = a.assemble("start").unwrap();
        assert_eq!(
            img.insts()[0],
            Inst::MovRI { dst: Reg::R1, imm: (DEFAULT_CODE_BASE + 16) as i32 }
        );
        assert_eq!(img.symbol("func"), Some(DEFAULT_CODE_BASE + 16));
    }

    #[test]
    fn data_section_layout() {
        let mut a = Asm::new();
        let p0 = a.data_u64(&[1, 2, 3]);
        let p1 = a.data_bytes(b"hi");
        let p2 = a.data_u64(&[9]); // must be realigned
        let p3 = a.data_zeroed(64);
        assert_eq!(p0, DEFAULT_DATA_BASE);
        assert_eq!(p1, DEFAULT_DATA_BASE + 24);
        assert_eq!(p2 % 8, 0);
        assert_eq!(p3 % 8, 0);
        a.label("start");
        a.halt();
        let img = a.assemble("start").unwrap();
        assert_eq!(&img.data()[0..8], &1u64.to_le_bytes());
        assert!(img.data().len() as u64 >= p3 - DEFAULT_DATA_BASE + 64);
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut a = Asm::new();
        let l1 = a.fresh_label("loop");
        let l2 = a.fresh_label("loop");
        assert_ne!(l1, l2);
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new();
        assert_eq!(a.here(), 0);
        a.nop();
        a.nop();
        assert_eq!(a.here(), 16);
    }

    #[test]
    fn jrz_jrnz_resolve() {
        let mut a = Asm::new();
        a.label("start");
        a.jrz(Reg::R8, "out"); // 0 -> 16
        a.jrnz(Reg::R8, "start"); // 8 -> 0
        a.label("out");
        a.halt();
        let img = a.assemble("start").unwrap();
        assert_eq!(img.insts()[0], Inst::JRz { src: Reg::R8, offset: 8 });
        assert_eq!(img.insts()[1], Inst::JRnz { src: Reg::R8, offset: -16 });
    }
}
