//! The object format produced by the assembler: code, data, entry point and
//! symbol table.

use cfed_isa::{encode_all, Inst, INST_SIZE_U64};
use std::collections::BTreeMap;
use std::fmt;

/// Default load address for code images — must agree with the simulator's
/// `Layout::default().code_base` (asserted by integration tests).
pub const DEFAULT_CODE_BASE: u64 = 0x1_0000;

/// Default base of the data/heap region — must agree with the simulator's
/// `Layout::default().data_base`.
pub const DEFAULT_DATA_BASE: u64 = 0x20_0000;

/// A fully linked program image.
///
/// # Examples
///
/// ```
/// use cfed_asm::Asm;
/// use cfed_isa::Reg;
///
/// let mut a = Asm::new();
/// a.label("start");
/// a.movri(Reg::R0, 1);
/// a.halt();
/// let image = a.assemble("start").unwrap();
/// assert_eq!(image.entry_offset(), 0);
/// assert_eq!(image.code().len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct Image {
    insts: Vec<Inst>,
    code: Vec<u8>,
    base: u64,
    entry_offset: u64,
    symbols: BTreeMap<String, u64>,
    data: Vec<u8>,
}

impl Image {
    pub(crate) fn new(
        insts: Vec<Inst>,
        base: u64,
        entry_offset: u64,
        symbols: BTreeMap<String, u64>,
        data: Vec<u8>,
    ) -> Image {
        let code = encode_all(&insts);
        Image { insts, code, base, entry_offset, symbols, data }
    }

    /// The encoded code bytes.
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// The decoded instruction sequence.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// The load address the image was linked for.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Entry point as a byte offset from [`Image::base`].
    pub fn entry_offset(&self) -> u64 {
        self.entry_offset
    }

    /// Absolute entry address.
    pub fn entry(&self) -> u64 {
        self.base + self.entry_offset
    }

    /// The initialized data section (loaded at the data base).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Absolute address of a label, if defined.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_asm::Asm;
    ///
    /// let mut a = Asm::new();
    /// a.label("start");
    /// a.halt();
    /// let image = a.assemble("start").unwrap();
    /// assert_eq!(image.symbol("start"), Some(image.base()));
    /// assert_eq!(image.symbol("missing"), None);
    /// ```
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// All symbols, sorted by name.
    pub fn symbols(&self) -> impl Iterator<Item = (&str, u64)> {
        self.symbols.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of instructions in the image.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the image contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The absolute address of the `idx`-th instruction.
    pub fn addr_of(&self, idx: usize) -> u64 {
        self.base + idx as u64 * INST_SIZE_U64
    }

    /// The instruction at an absolute address, if it lies in the image and is
    /// instruction-aligned.
    pub fn inst_at(&self, addr: u64) -> Option<Inst> {
        if addr < self.base || !(addr - self.base).is_multiple_of(INST_SIZE_U64) {
            return None;
        }
        self.insts.get(((addr - self.base) / INST_SIZE_U64) as usize).copied()
    }

    /// Disassembly listing with symbol annotations.
    pub fn listing(&self) -> String {
        use std::fmt::Write as _;
        let by_addr: BTreeMap<u64, Vec<&str>> =
            self.symbols.iter().fold(BTreeMap::new(), |mut m, (name, addr)| {
                m.entry(*addr).or_default().push(name);
                m
            });
        let mut out = String::new();
        for (idx, inst) in self.insts.iter().enumerate() {
            let addr = self.addr_of(idx);
            if let Some(names) = by_addr.get(&addr) {
                for n in names {
                    let _ = writeln!(out, "{n}:");
                }
            }
            let _ = writeln!(out, "  {addr:#010x}:  {inst}");
        }
        out
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.listing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;
    use cfed_isa::Reg;

    fn small_image() -> Image {
        let mut a = Asm::new();
        a.label("start");
        a.movri(Reg::R0, 7);
        a.label("end");
        a.halt();
        a.assemble("start").unwrap()
    }

    #[test]
    fn addresses_and_symbols() {
        let img = small_image();
        assert_eq!(img.base(), DEFAULT_CODE_BASE);
        assert_eq!(img.symbol("start"), Some(DEFAULT_CODE_BASE));
        assert_eq!(img.symbol("end"), Some(DEFAULT_CODE_BASE + 8));
        assert_eq!(img.addr_of(1), DEFAULT_CODE_BASE + 8);
        assert_eq!(img.len(), 2);
        assert!(!img.is_empty());
    }

    #[test]
    fn inst_at_alignment() {
        let img = small_image();
        assert!(img.inst_at(img.base()).is_some());
        assert!(img.inst_at(img.base() + 4).is_none());
        assert!(img.inst_at(img.base() - 8).is_none());
        assert!(img.inst_at(img.base() + 800).is_none());
    }

    #[test]
    fn listing_contains_symbols_and_addresses() {
        let img = small_image();
        let text = img.listing();
        assert!(text.contains("start:"));
        assert!(text.contains("end:"));
        assert!(text.contains("mov r0, 7"));
    }
}
