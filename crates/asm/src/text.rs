//! Textual assembly parser: the file-format front end of [`Asm`].
//!
//! The accepted syntax mirrors the disassembler's output, one instruction
//! per line, with `;` or `//` comments and `label:` definitions:
//!
//! ```text
//! start:
//!     mov   r0, 10        ; immediate
//! loop:
//!     sub   r0, 1
//!     jne   loop          ; conditional branch to label
//!     jmp   +16           ; or a raw relative byte offset, as disassembled
//!     ld    r1, [sp+8]
//!     st    [r2-8], r1
//!     lea   r8, [r8+r9+4]
//!     mov   r3, &loop     ; address of a label
//!     jrz   r3, done
//!     call  helper
//!     ret
//! done:
//!     halt
//! ```
//!
//! Branch targets may be labels or signed numeric byte offsets (`+16`,
//! `-8`), so [`cfed_isa::disasm::disassemble`] output re-assembles verbatim — the
//! round-trip the regression corpus and the exhaustive ISA tests rely on.
//! A numeric operand is always an offset: labels consisting only of digits
//! are not supported as branch targets.

use crate::asm::Asm;
use cfed_isa::{AluOp, Cond, Inst, Reg};
use std::error::Error;
use std::fmt;

/// Error from the textual assembler, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsmError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asm parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseAsmError {}

fn err(line: u32, message: impl Into<String>) -> ParseAsmError {
    ParseAsmError { line, message: message.into() }
}

fn parse_reg(tok: &str) -> Option<Reg> {
    if tok.eq_ignore_ascii_case("sp") {
        return Some(Reg::SP);
    }
    let rest = tok.strip_prefix('r').or_else(|| tok.strip_prefix('R'))?;
    rest.parse::<u8>().ok().and_then(Reg::try_new)
}

fn parse_imm(tok: &str) -> Option<i64> {
    let (neg, t) = match tok.strip_prefix('-') {
        Some(t) => (true, t),
        None => (false, tok),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        t.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_imm32(tok: &str, line: u32) -> Result<i32, ParseAsmError> {
    parse_imm(tok)
        .and_then(|v| i32::try_from(v).ok())
        .ok_or_else(|| err(line, format!("expected 32-bit immediate, found `{tok}`")))
}

/// A parsed memory operand `[base+disp]` / `[base+index+disp]` /
/// `[base-index+disp]`.
struct MemOp {
    base: Reg,
    index: Option<(Reg, bool)>, // (reg, negated)
    disp: i32,
}

fn parse_mem(tok: &str, line: u32) -> Result<MemOp, ParseAsmError> {
    let inner = tok
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected [base+disp], found `{tok}`")))?;
    // Split into signed terms.
    let mut terms: Vec<(bool, String)> = Vec::new();
    let mut current = String::new();
    let mut sign = false;
    for ch in inner.chars() {
        match ch {
            '+' | '-' if !current.is_empty() => {
                terms.push((sign, std::mem::take(&mut current)));
                sign = ch == '-';
            }
            '+' => sign = false,
            '-' => sign = true,
            c if c.is_whitespace() => {}
            c => current.push(c),
        }
    }
    if !current.is_empty() {
        terms.push((sign, current));
    }
    let mut base = None;
    let mut index = None;
    let mut disp = 0i64;
    for (neg, t) in terms {
        if let Some(r) = parse_reg(&t) {
            if base.is_none() && !neg {
                base = Some(r);
            } else if index.is_none() {
                index = Some((r, neg));
            } else {
                return Err(err(line, "too many registers in memory operand"));
            }
        } else if let Some(v) = parse_imm(&t) {
            disp += if neg { -v } else { v };
        } else {
            return Err(err(line, format!("bad memory operand term `{t}`")));
        }
    }
    let base = base.ok_or_else(|| err(line, "memory operand needs a base register"))?;
    let disp = i32::try_from(disp).map_err(|_| err(line, "displacement overflows 32 bits"))?;
    Ok(MemOp { base, index, disp })
}

/// Parses a branch target operand that is a raw relative offset rather
/// than a label: an optional `+`/`-` sign followed by a (possibly hex)
/// integer, exactly as the disassembler renders `{offset:+}`.
fn parse_branch_offset(tok: &str) -> Option<i32> {
    let t = tok.strip_prefix('+').unwrap_or(tok);
    // Reject bare labels early: offsets start with a sign or a digit.
    if !tok.starts_with(['+', '-']) && !t.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    parse_imm(t).and_then(|v| i32::try_from(v).ok())
}

fn cond_from_suffix(s: &str) -> Option<Cond> {
    Some(match s {
        "e" | "z" => Cond::E,
        "ne" | "nz" => Cond::Ne,
        "l" => Cond::L,
        "le" => Cond::Le,
        "g" => Cond::G,
        "ge" => Cond::Ge,
        "b" => Cond::B,
        "be" => Cond::Be,
        "a" => Cond::A,
        "ae" => Cond::Ae,
        "s" => Cond::S,
        "ns" => Cond::Ns,
        "o" => Cond::O,
        "no" => Cond::No,
        "p" => Cond::P,
        "np" => Cond::Np,
        _ => return None,
    })
}

fn alu_from_mnemonic(s: &str) -> Option<AluOp> {
    Some(match s {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "sar" => AluOp::Sar,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "cmp" => AluOp::Cmp,
        "test" => AluOp::Test,
        _ => return None,
    })
}

/// Parses assembly text into an [`Asm`] builder (call
/// [`Asm::assemble`] on the result to link it).
///
/// # Errors
///
/// Reports the first malformed line; label resolution errors surface later
/// from [`Asm::assemble`].
///
/// # Examples
///
/// ```
/// use cfed_asm::parse_asm;
///
/// let asm = parse_asm(
///     "start:\n    mov r0, 5\nloop:\n    sub r0, 1\n    jne loop\n    halt\n",
/// )?;
/// let image = asm.assemble("start").unwrap();
/// assert_eq!(image.len(), 4);
/// # Ok::<(), cfed_asm::ParseAsmError>(())
/// ```
pub fn parse_asm(text: &str) -> Result<Asm, ParseAsmError> {
    let mut a = Asm::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx as u32 + 1;
        // Strip comments.
        let code = raw.split(';').next().unwrap_or("");
        let code = code.split("//").next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Label definitions (possibly followed by an instruction).
        let mut rest = code;
        while let Some(colon) = rest.find(':') {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                break;
            }
            a.label(label);
            rest = tail[1..].trim();
            if rest.is_empty() {
                break;
            }
        }
        if rest.is_empty() {
            continue;
        }
        parse_inst(&mut a, rest, line)?;
    }
    Ok(a)
}

fn parse_inst(a: &mut Asm, code: &str, line: u32) -> Result<(), ParseAsmError> {
    let (mnemonic, operands) = match code.find(char::is_whitespace) {
        Some(i) => (&code[..i], code[i..].trim()),
        None => (code, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<&str> = operands.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();

    let need = |n: usize| -> Result<(), ParseAsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(line, format!("`{mnemonic}` expects {n} operand(s), found {}", ops.len())))
        }
    };
    let reg = |tok: &str| -> Result<Reg, ParseAsmError> {
        parse_reg(tok).ok_or_else(|| err(line, format!("expected register, found `{tok}`")))
    };

    match mnemonic.as_str() {
        "nop" => {
            need(0)?;
            a.nop();
        }
        "halt" => {
            need(0)?;
            a.halt();
        }
        "ret" => {
            need(0)?;
            a.ret();
        }
        "out" => {
            need(1)?;
            a.out(reg(ops[0])?);
        }
        "trap" => {
            need(1)?;
            let code = parse_imm(ops[0])
                .and_then(|v| u32::try_from(v).ok())
                .ok_or_else(|| err(line, format!("expected trap code, found `{}`", ops[0])))?;
            a.trap(code);
        }
        "push" => {
            need(1)?;
            a.push(reg(ops[0])?);
        }
        "pop" => {
            need(1)?;
            a.pop(reg(ops[0])?);
        }
        "neg" => {
            need(1)?;
            a.raw(Inst::Neg { dst: reg(ops[0])? });
        }
        "not" => {
            need(1)?;
            a.raw(Inst::Not { dst: reg(ops[0])? });
        }
        "mov" => {
            need(2)?;
            let dst = reg(ops[0])?;
            if let Some(label) = ops[1].strip_prefix('&') {
                a.mov_label(dst, label);
            } else if let Some(src) = parse_reg(ops[1]) {
                a.movrr(dst, src);
            } else {
                a.movri(dst, parse_imm32(ops[1], line)?);
            }
        }
        "ld" | "ld8" => {
            need(2)?;
            let dst = reg(ops[0])?;
            let m = parse_mem(ops[1], line)?;
            if m.index.is_some() {
                return Err(err(line, "loads take [base+disp] operands"));
            }
            if mnemonic == "ld" {
                a.ld(dst, m.base, m.disp);
            } else {
                a.ld8(dst, m.base, m.disp);
            }
        }
        "st" | "st8" => {
            need(2)?;
            let m = parse_mem(ops[0], line)?;
            if m.index.is_some() {
                return Err(err(line, "stores take [base+disp] operands"));
            }
            let src = reg(ops[1])?;
            if mnemonic == "st" {
                a.st(m.base, src, m.disp);
            } else {
                a.st8(m.base, src, m.disp);
            }
        }
        "lea" => {
            need(2)?;
            let dst = reg(ops[0])?;
            let m = parse_mem(ops[1], line)?;
            match m.index {
                None => a.lea(dst, m.base, m.disp),
                Some((index, false)) => a.lea2(dst, m.base, index, m.disp),
                Some((index, true)) => a.leasub(dst, m.base, index, m.disp),
            }
        }
        "jmp" => {
            need(1)?;
            if let Some(r) = parse_reg(ops[0]) {
                a.jmpr(r);
            } else if let Some(offset) = parse_branch_offset(ops[0]) {
                a.raw(Inst::Jmp { offset });
            } else {
                a.jmp(ops[0]);
            }
        }
        "call" => {
            need(1)?;
            if let Some(r) = parse_reg(ops[0]) {
                a.callr(r);
            } else if let Some(offset) = parse_branch_offset(ops[0]) {
                a.raw(Inst::Call { offset });
            } else {
                a.call(ops[0]);
            }
        }
        "jrz" => {
            need(2)?;
            let r = reg(ops[0])?;
            match parse_branch_offset(ops[1]) {
                Some(offset) => a.raw(Inst::JRz { src: r, offset }),
                None => a.jrz(r, ops[1]),
            }
        }
        "jrnz" => {
            need(2)?;
            let r = reg(ops[0])?;
            match parse_branch_offset(ops[1]) {
                Some(offset) => a.raw(Inst::JRnz { src: r, offset }),
                None => a.jrnz(r, ops[1]),
            }
        }
        m => {
            // j<cc> label / cmov<cc> dst, src / ALU ops.
            if let Some(cc) = m.strip_prefix("cmov").and_then(cond_from_suffix) {
                need(2)?;
                let dst = reg(ops[0])?;
                let src = reg(ops[1])?;
                a.cmov(cc, dst, src);
            } else if let Some(cc) = m.strip_prefix('j').and_then(cond_from_suffix) {
                need(1)?;
                match parse_branch_offset(ops[0]) {
                    Some(offset) => a.raw(Inst::Jcc { cc, offset }),
                    None => a.jcc(cc, ops[0]),
                }
            } else if let Some(op) = alu_from_mnemonic(m) {
                need(2)?;
                let dst = reg(ops[0])?;
                if let Some(src) = parse_reg(ops[1]) {
                    a.alu(op, dst, src);
                } else {
                    a.alui(op, dst, parse_imm32(ops[1], line)?);
                }
            } else {
                return Err(err(line, format!("unknown mnemonic `{m}`")));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_isa::Inst;

    fn parse_one(line: &str) -> Inst {
        let asm = parse_asm(&format!("start:\n{line}\n")).expect("parses");
        let image = asm.assemble("start").expect("assembles");
        image.insts()[0]
    }

    #[test]
    fn basic_instructions() {
        assert_eq!(parse_one("nop"), Inst::Nop);
        assert_eq!(parse_one("halt"), Inst::Halt);
        assert_eq!(parse_one("mov r3, -7"), Inst::MovRI { dst: Reg::R3, imm: -7 });
        assert_eq!(parse_one("mov r3, 0x10"), Inst::MovRI { dst: Reg::R3, imm: 16 });
        assert_eq!(parse_one("mov r3, r4"), Inst::MovRR { dst: Reg::R3, src: Reg::R4 });
        assert_eq!(
            parse_one("add r1, r2"),
            Inst::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R2 }
        );
        assert_eq!(parse_one("cmp r1, 0"), Inst::AluI { op: AluOp::Cmp, dst: Reg::R1, imm: 0 });
        assert_eq!(parse_one("push sp"), Inst::Push { src: Reg::SP });
        assert_eq!(parse_one("out r0"), Inst::Out { src: Reg::R0 });
        assert_eq!(parse_one("trap 0xC0DE0001"), Inst::Trap { code: 0xC0DE_0001 });
    }

    #[test]
    fn memory_operands() {
        assert_eq!(parse_one("ld r1, [sp+8]"), Inst::Ld { dst: Reg::R1, base: Reg::SP, disp: 8 });
        assert_eq!(
            parse_one("st [r2-16], r3"),
            Inst::St { base: Reg::R2, src: Reg::R3, disp: -16 }
        );
        assert_eq!(parse_one("ld8 r1, [r2+0]"), Inst::Ld8 { dst: Reg::R1, base: Reg::R2, disp: 0 });
        assert_eq!(parse_one("ld r1, [r2]"), Inst::Ld { dst: Reg::R1, base: Reg::R2, disp: 0 });
    }

    #[test]
    fn lea_forms() {
        assert_eq!(
            parse_one("lea r8, [r8+100]"),
            Inst::Lea { dst: Reg::R8, base: Reg::R8, disp: 100 }
        );
        assert_eq!(
            parse_one("lea r8, [r9+r10+4]"),
            Inst::Lea2 { dst: Reg::R8, base: Reg::R9, index: Reg::R10, disp: 4 }
        );
        assert_eq!(
            parse_one("lea r8, [r9-r10+4]"),
            Inst::LeaSub { dst: Reg::R8, base: Reg::R9, index: Reg::R10, disp: 4 }
        );
    }

    #[test]
    fn branches_and_labels() {
        let asm = parse_asm(
            "start: mov r0, 3\nloop:\n  sub r0, 1\n  jne loop\n  jrz r0, done\ndone: halt\n",
        )
        .unwrap();
        let image = asm.assemble("start").unwrap();
        assert_eq!(image.insts()[2], Inst::Jcc { cc: Cond::Ne, offset: -16 });
        assert!(matches!(image.insts()[3], Inst::JRz { src: Reg::R0, .. }));
    }

    #[test]
    fn indirect_and_address_of() {
        assert_eq!(parse_one("jmp r5"), Inst::JmpR { target: Reg::R5 });
        assert_eq!(parse_one("call r5"), Inst::CallR { target: Reg::R5 });
        let asm = parse_asm("start: mov r1, &start\n halt\n").unwrap();
        let image = asm.assemble("start").unwrap();
        assert_eq!(image.insts()[0], Inst::MovRI { dst: Reg::R1, imm: image.base() as i32 });
    }

    #[test]
    fn cmov_and_cc_aliases() {
        assert_eq!(
            parse_one("cmovle r1, r2"),
            Inst::CMov { cc: Cond::Le, dst: Reg::R1, src: Reg::R2 }
        );
        let asm = parse_asm("start: jz start\n jnz start\n jge start\n halt\n").unwrap();
        let image = asm.assemble("start").unwrap();
        assert!(matches!(image.insts()[0], Inst::Jcc { cc: Cond::E, .. }));
        assert!(matches!(image.insts()[1], Inst::Jcc { cc: Cond::Ne, .. }));
        assert!(matches!(image.insts()[2], Inst::Jcc { cc: Cond::Ge, .. }));
    }

    #[test]
    fn comments_and_blank_lines() {
        let asm =
            parse_asm("; full line comment\nstart:  // another\n  nop ; trailing\n\n  halt\n")
                .unwrap();
        assert_eq!(asm.assemble("start").unwrap().len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_asm("start:\n  nop\n  bogus r1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("bogus"));
        let e = parse_asm("  mov r1\n").unwrap_err();
        assert!(e.message.contains("expects 2"));
        let e = parse_asm("  mov r99, 1\n").unwrap_err();
        assert!(e.message.contains("register"));
    }

    #[test]
    fn roundtrip_through_disassembler_mnemonics() {
        // Parse a program, disassemble it, re-parse the disassembly: every
        // line round-trips, branches included (their offsets print as
        // signed relative numbers, which the parser accepts back).
        let src = "start:\n mov r1, 10\n add r1, r2\n lea r8, [r8+r9+1]\n st [sp-8], r1\n \
                   jne start\n jrz r1, start\n call start\n jmp start\n halt\n";
        let image = parse_asm(src).unwrap().assemble("start").unwrap();
        for inst in image.insts() {
            let text = inst.to_string();
            let reparsed = parse_one(&text);
            assert_eq!(reparsed, *inst, "`{text}` did not round-trip");
        }
    }

    #[test]
    fn numeric_branch_offsets() {
        assert_eq!(parse_one("jmp +16"), Inst::Jmp { offset: 16 });
        assert_eq!(parse_one("jmp -8"), Inst::Jmp { offset: -8 });
        assert_eq!(parse_one("call +0"), Inst::Call { offset: 0 });
        assert_eq!(parse_one("jne -24"), Inst::Jcc { cc: Cond::Ne, offset: -24 });
        assert_eq!(parse_one("jrz r3, +8"), Inst::JRz { src: Reg::R3, offset: 8 });
        assert_eq!(
            parse_one("jrnz r3, -2147483648"),
            Inst::JRnz { src: Reg::R3, offset: i32::MIN }
        );
        // Labels still win when the operand is not numeric.
        let asm = parse_asm("start: jmp start\n halt\n").unwrap();
        assert_eq!(asm.assemble("start").unwrap().insts()[0], Inst::Jmp { offset: -8 });
    }
}
