//! A simple binary object-file format for linked [`Image`]s, so assembled
//! programs can be saved to disk and reloaded (e.g. precompiled workloads,
//! corpus files for fault campaigns).
//!
//! Layout (all integers little endian):
//!
//! ```text
//! magic      "CFED"            4 bytes
//! version    u32               currently 1
//! base       u64
//! entry_off  u64
//! code_len   u64               bytes (multiple of 8)
//! data_len   u64
//! nsymbols   u64
//! code       code_len bytes
//! data       data_len bytes
//! symbols    nsymbols × { name_len u32, name bytes, addr u64 }
//! ```

use crate::image::Image;
use cfed_isa::decode_all;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

const MAGIC: &[u8; 4] = b"CFED";
const VERSION: u32 = 1;

/// Error from decoding an object file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The file is shorter than its headers claim.
    Truncated,
    /// A symbol name is not valid UTF-8.
    BadSymbolName,
    /// The code section does not decode as instructions.
    BadCode(String),
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::BadMagic => write!(f, "not a CFED object file"),
            ObjectError::BadVersion(v) => write!(f, "unsupported object version {v}"),
            ObjectError::Truncated => write!(f, "object file truncated"),
            ObjectError::BadSymbolName => write!(f, "symbol name is not valid UTF-8"),
            ObjectError::BadCode(m) => write!(f, "code section invalid: {m}"),
        }
    }
}

impl Error for ObjectError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjectError> {
        let end = self.pos.checked_add(n).ok_or(ObjectError::Truncated)?;
        let slice = self.buf.get(self.pos..end).ok_or(ObjectError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, ObjectError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, ObjectError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

impl Image {
    /// Serializes the image to the CFED object format.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_asm::{Asm, Image};
    ///
    /// let mut a = Asm::new();
    /// a.label("start");
    /// a.halt();
    /// let image = a.assemble("start").unwrap();
    /// let bytes = image.to_object_bytes();
    /// let back = Image::from_object_bytes(&bytes).unwrap();
    /// assert_eq!(back.code(), image.code());
    /// assert_eq!(back.entry(), image.entry());
    /// ```
    pub fn to_object_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.base().to_le_bytes());
        out.extend_from_slice(&self.entry_offset().to_le_bytes());
        out.extend_from_slice(&(self.code().len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.data().len() as u64).to_le_bytes());
        let symbols: Vec<(&str, u64)> = self.symbols().collect();
        out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());
        out.extend_from_slice(self.code());
        out.extend_from_slice(self.data());
        for (name, addr) in symbols {
            out.extend_from_slice(&(name.len() as u32).to_le_bytes());
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(&addr.to_le_bytes());
        }
        out
    }

    /// Deserializes an image from the CFED object format, re-decoding and
    /// validating the instruction stream.
    ///
    /// # Errors
    ///
    /// Any [`ObjectError`] variant on malformed input.
    pub fn from_object_bytes(bytes: &[u8]) -> Result<Image, ObjectError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(ObjectError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(ObjectError::BadVersion(version));
        }
        let base = r.u64()?;
        let entry_offset = r.u64()?;
        let code_len = r.u64()? as usize;
        let data_len = r.u64()? as usize;
        let nsymbols = r.u64()? as usize;
        let code = r.take(code_len)?.to_vec();
        let data = r.take(data_len)?.to_vec();
        let mut symbols = BTreeMap::new();
        for _ in 0..nsymbols {
            let name_len = r.u32()? as usize;
            let name = std::str::from_utf8(r.take(name_len)?)
                .map_err(|_| ObjectError::BadSymbolName)?
                .to_string();
            let addr = r.u64()?;
            symbols.insert(name, addr);
        }
        let insts = decode_all(&code)
            .map_err(|(off, e)| ObjectError::BadCode(format!("at offset {off}: {e}")))?;
        Ok(Image::new(insts, base, entry_offset, symbols, data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;
    use cfed_isa::{AluOp, Cond, Reg};

    fn sample() -> Image {
        let mut a = Asm::new();
        a.data_u64(&[1, 2, 3]);
        a.label("start");
        a.movri(Reg::R0, 5);
        a.label("loop");
        a.alui(AluOp::Sub, Reg::R0, 1);
        a.jcc(Cond::Ne, "loop");
        a.halt();
        a.assemble("start").unwrap()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let img = sample();
        let bytes = img.to_object_bytes();
        let back = Image::from_object_bytes(&bytes).unwrap();
        assert_eq!(back.code(), img.code());
        assert_eq!(back.data(), img.data());
        assert_eq!(back.base(), img.base());
        assert_eq!(back.entry(), img.entry());
        assert_eq!(back.insts(), img.insts());
        let a: Vec<_> = img.symbols().collect();
        let b: Vec<_> = back.symbols().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Image::from_object_bytes(b"ELF!xxxxxxxx").unwrap_err(), ObjectError::BadMagic);
        assert_eq!(Image::from_object_bytes(b"").unwrap_err(), ObjectError::Truncated);
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample().to_object_bytes();
        bytes[4] = 99;
        assert_eq!(Image::from_object_bytes(&bytes).unwrap_err(), ObjectError::BadVersion(99));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample().to_object_bytes();
        for cut in [5, 20, 44, bytes.len() - 1] {
            assert!(Image::from_object_bytes(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corrupted_code_rejected() {
        let img = sample();
        let mut bytes = img.to_object_bytes();
        // First code byte is at offset 4+4+8+8+8+8+8 = 48.
        bytes[48] = 0xEE;
        assert!(matches!(Image::from_object_bytes(&bytes), Err(ObjectError::BadCode(_))));
    }
}
