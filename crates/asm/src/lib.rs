//! # cfed-asm — assembler and object format for VISA
//!
//! A two-pass, label-based assembler ([`Asm`]) producing linked program
//! images ([`Image`]) for the `cfed-sim` guest machine. The builder API is
//! the target of the MiniC code generator in `cfed-lang` and of hand-written
//! guest programs in tests and examples.
//!
//! ## Example
//!
//! ```
//! use cfed_asm::Asm;
//! use cfed_isa::{AluOp, Cond, Reg};
//!
//! // sum = 0; for i in 1..=10 { sum += i }
//! let mut a = Asm::new();
//! a.label("start");
//! a.movri(Reg::R0, 0);
//! a.movri(Reg::R1, 10);
//! a.label("loop");
//! a.alu(AluOp::Add, Reg::R0, Reg::R1);
//! a.alui(AluOp::Sub, Reg::R1, 1);
//! a.jcc(Cond::Ne, "loop");
//! a.out(Reg::R0);
//! a.halt();
//! let image = a.assemble("start")?;
//! assert_eq!(image.len(), 7);
//! # Ok::<(), cfed_asm::AsmError>(())
//! ```

pub mod asm;
pub mod image;
pub mod object;
pub mod text;

pub use asm::{Asm, AsmError};
pub use image::{Image, DEFAULT_CODE_BASE, DEFAULT_DATA_BASE};
pub use object::ObjectError;
pub use text::{parse_asm, ParseAsmError};
