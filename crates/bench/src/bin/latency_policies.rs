//! Extension experiment: mean detection latency (instructions between fault
//! injection and the signature-check report) under each checking policy —
//! the quantitative form of §6's delay-to-report discussion. Relaxed
//! policies trade much longer reporting delays for lower overhead.
//!
//! Usage: `cargo run --release -p cfed-bench --bin latency_policies [--trials <n>]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--trials expects a number"))
        .unwrap_or(150);
    let rows = cfed_bench::latency_by_policy(trials);
    println!("{}", cfed_bench::render_latency(&rows));
}
