//! Extension experiment: mean detection latency (instructions between fault
//! injection and the signature-check report) under each checking policy —
//! the quantitative form of §6's delay-to-report discussion. Relaxed
//! policies trade much longer reporting delays for lower overhead.
//! Campaign shards run on a `cfed-runner` worker pool; tallies are
//! bit-identical for any `--threads` value.
//!
//! Usage: `cargo run --release -p cfed-bench --bin latency_policies -- [OPTIONS]`

use cfed_runner::cli::Parser;

fn main() {
    let args = Parser::new("latency_policies", "detection latency by checking policy")
        .flag("trials", "N", "150", "injections per workload per policy")
        .flag("seed", "SEED", &cfed_bench::DEFAULT_CAMPAIGN_SEED.to_string(), "campaign RNG seed")
        .flag("threads", "N", "0", "worker threads (0 = all cores)")
        .parse();
    let trials = args.get_u64("trials").unwrap_or_else(die);
    let seed = args.get_u64("seed").unwrap_or_else(die);
    let threads = args.get_usize("threads").unwrap_or_else(die);

    let rows = cfed_bench::latency_by_policy_with(trials, seed, threads);
    println!("{}", cfed_bench::render_latency(&rows));
}

fn die<T>(message: String) -> T {
    eprintln!("latency_policies: {message}");
    std::process::exit(2);
}
