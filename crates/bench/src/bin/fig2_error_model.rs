//! Regenerates the paper's Figure 2 (branch-error probability tables for
//! the SPEC-Int and SPEC-Fp analog suites) and Figure 3 (probabilities
//! restricted to the SDC-prone categories A–E).
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig2_error_model [--scale test|full|<n>]`

fn main() {
    let scale = cfed_bench::scale_from_args();
    let fig = cfed_bench::fig2(scale);
    println!("{}", fig.int.render("Figure 2 — SPEC-Int 2000 (analog suite)"));
    println!("{}", fig.fp.render("Figure 2 — SPEC-Fp 2000 (analog suite)"));
    println!("{}", cfed_bench::render_fig3(&fig));
}
