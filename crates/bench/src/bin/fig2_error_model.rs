//! Regenerates the paper's Figure 2 (branch-error probability tables for
//! the SPEC-Int and SPEC-Fp analog suites) and Figure 3 (probabilities
//! restricted to the SDC-prone categories A–E).
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig2_error_model -- [OPTIONS]`

use cfed_runner::cli::Parser;

fn main() {
    let args = Parser::new("fig2_error_model", "Figure 2/3 branch-error probability tables")
        .flag("scale", "SCALE", "full", "workload scale: test, full, or an iteration count")
        .flag("threads", "N", "0", "worker threads for per-workload analyses (0 = all cores)")
        .parse();
    let die = |e: String| -> ! {
        eprintln!("fig2_error_model: {e}");
        std::process::exit(2);
    };
    let scale = args.get_scale("scale").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let fig = cfed_bench::fig2_with(scale, threads);
    println!("{}", fig.int.render("Figure 2 — SPEC-Int 2000 (analog suite)"));
    println!("{}", fig.fp.render("Figure 2 — SPEC-Fp 2000 (analog suite)"));
    println!("{}", cfed_bench::render_fig3(&fig));
}
