//! Fault-injection coverage matrix: the experiment the paper lists as
//! future work. Injects single-bit faults (offset and flag bits) into
//! DBT-translated code and tallies outcomes per branch-error category for
//! the uninstrumented baseline and each technique.
//!
//! Usage: `cargo run --release -p cfed-bench --bin coverage_matrix [--trials <n>]`

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.parse().expect("--trials expects a number"))
        .unwrap_or(150);
    use cfed_dbt::UpdateStyle;
    println!("=== CMOVcc update style (safe configurations) ===");
    let rows = cfed_bench::coverage(trials, UpdateStyle::CMov);
    println!("{}", cfed_bench::render_coverage(&rows));
    println!("\n=== Jcc update style (EdgCF/ECF unsafe: inserted selector branches) ===");
    let rows = cfed_bench::coverage(trials, UpdateStyle::Jcc);
    println!("{}", cfed_bench::render_coverage(&rows));
}
