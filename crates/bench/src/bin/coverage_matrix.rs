//! Fault-injection coverage matrix: the experiment the paper lists as
//! future work. Injects single-bit faults (offset and flag bits) into
//! DBT-translated code and tallies outcomes per branch-error category for
//! the uninstrumented baseline and each technique. Campaign shards are
//! distributed over a `cfed-runner` worker pool; tallies are bit-identical
//! for any `--threads` value.
//!
//! Usage: `cargo run --release -p cfed-bench --bin coverage_matrix -- [OPTIONS]`

use cfed_runner::cli::Parser;

fn main() {
    let args = Parser::new("coverage_matrix", "per-category fault-injection coverage matrix")
        .flag("trials", "N", "150", "injections per workload per configuration")
        .flag("seed", "SEED", &cfed_bench::DEFAULT_CAMPAIGN_SEED.to_string(), "campaign RNG seed")
        .flag("threads", "N", "0", "worker threads (0 = all cores)")
        .parse();
    let trials = args.get_u64("trials").unwrap_or_else(die);
    let seed = args.get_u64("seed").unwrap_or_else(die);
    let threads = args.get_usize("threads").unwrap_or_else(die);

    use cfed_dbt::UpdateStyle;
    println!("=== CMOVcc update style (safe configurations) ===");
    let rows = cfed_bench::coverage_with(trials, UpdateStyle::CMov, seed, threads);
    println!("{}", cfed_bench::render_coverage(&rows));
    println!("\n=== Jcc update style (EdgCF/ECF unsafe: inserted selector branches) ===");
    let rows = cfed_bench::coverage_with(trials, UpdateStyle::Jcc, seed, threads);
    println!("{}", cfed_bench::render_coverage(&rows));
}

fn die<T>(message: String) -> T {
    eprintln!("coverage_matrix: {message}");
    std::process::exit(2);
}
