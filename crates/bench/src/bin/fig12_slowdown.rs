//! Regenerates the paper's Figure 12: per-benchmark slowdown of the RCF,
//! EdgCF and ECF techniques over the uninstrumented DBT (Jcc update, ALLBB
//! policy), with per-suite and overall geometric means, plus the §6
//! DBT-over-native baseline statistic.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig12_slowdown [--scale test|full|<n>]`

fn main() {
    let scale = cfed_bench::scale_from_args();
    let rows = cfed_bench::fig12(scale);
    println!("{}", cfed_bench::render_fig12(&rows));
}
