//! Regenerates the paper's Figure 12: per-benchmark slowdown of the RCF,
//! EdgCF and ECF techniques over the uninstrumented DBT (Jcc update, ALLBB
//! policy), with per-suite and overall geometric means, plus the §6
//! DBT-over-native baseline statistic.
//!
//! With `--events PATH`, every DBT run additionally emits a `dbt_stats`
//! telemetry event (translation-time histogram, block/chain counters) to a
//! JSONL sink at PATH.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig12_slowdown -- [OPTIONS]`

use std::path::PathBuf;
use std::sync::Arc;

use cfed_runner::cli::Parser;
use cfed_telemetry::{JsonlSink, Telemetry};

fn main() {
    let args = Parser::new("fig12_slowdown", "Figure 12 per-benchmark technique slowdowns")
        .flag("scale", "SCALE", "full", "workload scale: test, full, or an iteration count")
        .flag("events", "PATH", "", "write dbt_stats telemetry events (JSONL) to PATH")
        .flag("threads", "N", "0", "worker threads for per-workload analyses (0 = all cores)")
        .parse();
    let die = |message: String| -> ! {
        eprintln!("fig12_slowdown: {message}");
        std::process::exit(2);
    };
    let scale = args.get_scale("scale").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let telemetry = match args.get("events").filter(|s| !s.is_empty()) {
        Some(path) => {
            let path = PathBuf::from(path);
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| die(format!("creating {}: {e}", dir.display())));
            }
            Telemetry::to(Arc::new(JsonlSink::create(&path).unwrap_or_else(|e| die(e))))
        }
        None => Telemetry::off(),
    };
    let rows = cfed_bench::fig12_telemetry_with(scale, &telemetry, threads);
    println!("{}", cfed_bench::render_fig12(&rows));
}
