//! Regenerates the paper's Figure 12: per-benchmark slowdown of the RCF,
//! EdgCF and ECF techniques over the uninstrumented DBT (Jcc update, ALLBB
//! policy), with per-suite and overall geometric means, plus the §6
//! DBT-over-native baseline statistic.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig12_slowdown -- [OPTIONS]`

use cfed_runner::cli::Parser;

fn main() {
    let args = Parser::new("fig12_slowdown", "Figure 12 per-benchmark technique slowdowns")
        .flag("scale", "SCALE", "full", "workload scale: test, full, or an iteration count")
        .parse();
    let scale = args.get_scale("scale").unwrap_or_else(|e| {
        eprintln!("fig12_slowdown: {e}");
        std::process::exit(2);
    });
    let rows = cfed_bench::fig12(scale);
    println!("{}", cfed_bench::render_fig12(&rows));
}
