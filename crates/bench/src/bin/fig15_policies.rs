//! Regenerates the paper's Figure 15: RCF slowdown under the four signature
//! checking policies (ALLBB, RET-BE, RET, END) per benchmark.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig15_policies -- [OPTIONS]`

use cfed_runner::cli::Parser;

fn main() {
    let args = Parser::new("fig15_policies", "Figure 15 RCF slowdown by checking policy")
        .flag("scale", "SCALE", "full", "workload scale: test, full, or an iteration count")
        .flag("threads", "N", "0", "worker threads for per-workload analyses (0 = all cores)")
        .parse();
    let die = |e: String| -> ! {
        eprintln!("fig15_policies: {e}");
        std::process::exit(2);
    };
    let scale = args.get_scale("scale").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let rows = cfed_bench::fig15_with(scale, threads);
    println!("{}", cfed_bench::render_fig15(&rows));
}
