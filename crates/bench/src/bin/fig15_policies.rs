//! Regenerates the paper's Figure 15: RCF slowdown under the four signature
//! checking policies (ALLBB, RET-BE, RET, END) per benchmark.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig15_policies [--scale test|full|<n>]`

fn main() {
    let scale = cfed_bench::scale_from_args();
    let rows = cfed_bench::fig15(scale);
    println!("{}", cfed_bench::render_fig15(&rows));
}
