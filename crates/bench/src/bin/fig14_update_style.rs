//! Regenerates the paper's Figure 14: geomean slowdown when conditional
//! signature updates use inserted branches (Jcc) versus conditional moves
//! (CMOVcc), for each technique. The Jcc rows of EdgCF/ECF are the paper's
//! "unsafe" configurations.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig14_update_style [--scale test|full|<n>]`

fn main() {
    let scale = cfed_bench::scale_from_args();
    let m = cfed_bench::fig14(scale);
    println!("{}", cfed_bench::render_fig14(&m));
}
