//! Regenerates the paper's Figure 14: geomean slowdown when conditional
//! signature updates use inserted branches (Jcc) versus conditional moves
//! (CMOVcc), for each technique. The Jcc rows of EdgCF/ECF are the paper's
//! "unsafe" configurations.
//!
//! Usage: `cargo run --release -p cfed-bench --bin fig14_update_style -- [OPTIONS]`

use cfed_runner::cli::Parser;

fn main() {
    let args = Parser::new("fig14_update_style", "Figure 14 Jcc vs CMOVcc slowdown")
        .flag("scale", "SCALE", "full", "workload scale: test, full, or an iteration count")
        .flag("threads", "N", "0", "worker threads for per-workload analyses (0 = all cores)")
        .parse();
    let die = |e: String| -> ! {
        eprintln!("fig14_update_style: {e}");
        std::process::exit(2);
    };
    let scale = args.get_scale("scale").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let m = cfed_bench::fig14_with(scale, threads);
    println!("{}", cfed_bench::render_fig14(&m));
}
