//! # cfed-bench — experiment harnesses
//!
//! Functions that regenerate every table and figure of the paper's
//! evaluation, shared by the `fig*` binaries and the integration tests:
//!
//! | paper artifact | function | binary |
//! |---|---|---|
//! | Figure 2 (error-model table) | [`fig2`] | `fig2_error_model` |
//! | Figure 3 (SDC-prone categories) | [`fig2`] (derived) | `fig2_error_model` |
//! | Figure 12 (per-benchmark slowdown) | [`fig12`] | `fig12_slowdown` |
//! | Figure 14 (Jcc vs CMOVcc) | [`fig14`] | `fig14_update_style` |
//! | Figure 15 (checking policies) | [`fig15`] | `fig15_policies` |
//! | §3/§4 coverage claims | [`coverage`] | `coverage_matrix` |

use cfed_core::{
    geomean, run_dbt, run_dbt_telemetry, run_native, Category, RunConfig, TechniqueKind,
};
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::{analyze_image, CampaignReport, CategoryStats, ErrorModelTable};
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_runner::pool::{parallel_map, run_matrix, RunSummary, RunnerOptions};
use cfed_telemetry::Telemetry;
use cfed_workloads::{Scale, Suite, Workload, ALL};

/// Default campaign seed of the injection harnesses (the historical
/// [`cfed_fault::Campaign::new`] default, kept so published tallies stay
/// reproducible).
pub const DEFAULT_CAMPAIGN_SEED: u64 = 0xCFED_2006;

fn image(w: &Workload, scale: Scale) -> cfed_asm::Image {
    w.image(scale).unwrap_or_else(|e| panic!("{} failed to compile: {e}", w.name))
}

// ----------------------------------------------------------------------
// Figure 2 / Figure 3
// ----------------------------------------------------------------------

/// Error-model results for both suites.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Aggregated SPEC-Int analog table.
    pub int: ErrorModelTable,
    /// Aggregated SPEC-Fp analog table.
    pub fp: ErrorModelTable,
}

/// Runs the §2 single-bit error model over both suites (Figures 2 and 3),
/// one workload per pool task over `threads` worker threads (`0` = all
/// cores). Per-workload tables are merged in workload order, so the result
/// — integer tallies throughout — is bit-identical to a serial run.
pub fn fig2_with(scale: Scale, threads: usize) -> Fig2 {
    let tables = parallel_map(ALL.len(), threads, |i| {
        let w = &ALL[i];
        (w.suite, analyze_image(&image(w, scale), 500_000_000).table)
    });
    let mut int = ErrorModelTable::default();
    let mut fp = ErrorModelTable::default();
    for (suite, table) in &tables {
        match suite {
            Suite::Int => int.merge(table),
            Suite::Fp => fp.merge(table),
        }
    }
    Fig2 { int, fp }
}

/// [`fig2_with`] on all cores.
pub fn fig2(scale: Scale) -> Fig2 {
    fig2_with(scale, 0)
}

/// Renders the Figure 3 view (probabilities over categories A–E only).
pub fn render_fig3(fig: &Fig2) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3 — branch-error probabilities over categories A–E");
    let _ = writeln!(out, "{:>9} | {:>9} | {:>9}", "Category", "SPEC-Int", "SPEC-Fp");
    let _ = writeln!(out, "{}", "-".repeat(35));
    let ints = fig.int.sdc_restricted();
    let fps = fig.fp.sdc_restricted();
    for i in 0..5 {
        let _ = writeln!(
            out,
            "{:>9} | {:>8.2}% | {:>8.2}%",
            ints[i].0.to_string(),
            100.0 * ints[i].1,
            100.0 * fps[i].1
        );
    }
    out
}

// ----------------------------------------------------------------------
// Figure 12
// ----------------------------------------------------------------------

/// One benchmark row of Figure 12.
#[derive(Debug, Clone)]
pub struct SlowdownRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Slowdown of RCF / EdgCF / ECF over the uninstrumented DBT.
    pub rcf: f64,
    /// EdgCF slowdown.
    pub edgcf: f64,
    /// ECF slowdown.
    pub ecf: f64,
    /// DBT baseline over native execution (§6's ~12% statistic).
    pub dbt_over_native: f64,
}

/// Figure 12 data: per-benchmark technique slowdowns (Jcc update, ALLBB).
pub fn fig12(scale: Scale) -> Vec<SlowdownRow> {
    fig12_telemetry(scale, &Telemetry::off())
}

/// As [`fig12`], with each DBT run attached to a telemetry handle: every
/// run end emits a `dbt_stats` event (translation-time histogram, block
/// and chain counters) to the handle's sink. The disabled handle costs
/// one untaken branch per emit site, which is what the `< 3%` telemetry
/// overhead bound on this figure is measured against.
pub fn fig12_telemetry(scale: Scale, telemetry: &Telemetry) -> Vec<SlowdownRow> {
    fig12_telemetry_with(scale, telemetry, 0)
}

/// As [`fig12_telemetry`], one workload per pool task over `threads`
/// worker threads. Every row is computed from that workload's runs alone
/// and rows come back in workload order, so the figure is byte-identical
/// to a serial run (telemetry events may interleave across workloads).
pub fn fig12_telemetry_with(
    scale: Scale,
    telemetry: &Telemetry,
    threads: usize,
) -> Vec<SlowdownRow> {
    parallel_map(ALL.len(), threads, |i| {
        let w = &ALL[i];
        let img = image(w, scale);
        let native = run_native(&img, u64::MAX);
        let base = run_dbt_telemetry(&img, &RunConfig::baseline(), telemetry);
        let cycles =
            |kind| run_dbt_telemetry(&img, &RunConfig::technique(kind), telemetry).cycles as f64;
        SlowdownRow {
            name: w.name,
            suite: w.suite,
            rcf: cycles(TechniqueKind::Rcf) / base.cycles as f64,
            edgcf: cycles(TechniqueKind::EdgCf) / base.cycles as f64,
            ecf: cycles(TechniqueKind::Ecf) / base.cycles as f64,
            dbt_over_native: base.cycles as f64 / native.cycles as f64,
        }
    })
}

/// Geometric means over a suite filter (`None` = all benchmarks).
pub fn fig12_geomean(rows: &[SlowdownRow], suite: Option<Suite>) -> (f64, f64, f64) {
    let sel: Vec<&SlowdownRow> =
        rows.iter().filter(|r| suite.is_none_or(|s| r.suite == s)).collect();
    (
        geomean(&sel.iter().map(|r| r.rcf).collect::<Vec<_>>()),
        geomean(&sel.iter().map(|r| r.edgcf).collect::<Vec<_>>()),
        geomean(&sel.iter().map(|r| r.ecf).collect::<Vec<_>>()),
    )
}

/// Renders Figure 12 as a table.
pub fn render_fig12(rows: &[SlowdownRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ =
        writeln!(out, "Figure 12 — slowdown over uninstrumented DBT (Jcc update, ALLBB policy)");
    let _ = writeln!(
        out,
        "{:>14} {:>6} | {:>7} {:>7} {:>7} | {:>10}",
        "benchmark", "suite", "RCF", "EdgCF", "ECF", "DBT/native"
    );
    let _ = writeln!(out, "{}", "-".repeat(62));
    let print_suite = |suite: Suite, out: &mut String| {
        for r in rows.iter().filter(|r| r.suite == suite) {
            let _ = writeln!(
                out,
                "{:>14} {:>6} | {:>7.3} {:>7.3} {:>7.3} | {:>10.3}",
                r.name,
                if suite == Suite::Int { "int" } else { "fp" },
                r.rcf,
                r.edgcf,
                r.ecf,
                r.dbt_over_native
            );
        }
        let (rcf, edg, ecf) = fig12_geomean(rows, Some(suite));
        let label = if suite == Suite::Int { "geomean-int" } else { "geomean-fp" };
        let _ = writeln!(out, "{label:>21} | {rcf:>7.3} {edg:>7.3} {ecf:>7.3} |");
    };
    print_suite(Suite::Fp, &mut out);
    print_suite(Suite::Int, &mut out);
    let (rcf, edg, ecf) = fig12_geomean(rows, None);
    let _ = writeln!(out, "{:>21} | {:>7.3} {:>7.3} {:>7.3} |", "geomean-all", rcf, edg, ecf);
    let dbt: Vec<f64> = rows.iter().map(|r| r.dbt_over_native).collect();
    let _ = writeln!(out, "DBT baseline over native (geomean): {:.3}", geomean(&dbt));
    out
}

// ----------------------------------------------------------------------
// Figure 14
// ----------------------------------------------------------------------

/// Figure 14 data: geomean slowdown for update style × technique.
pub fn fig14(scale: Scale) -> [[f64; 3]; 2] {
    fig14_with(scale, 0)
}

/// As [`fig14`], one workload per pool task over `threads` worker threads.
/// Each task computes its workload's six style×technique ratios; the main
/// thread then accumulates them in workload order before taking geomeans,
/// so every float operation happens in the same sequence as a serial run
/// and the figure is byte-identical.
pub fn fig14_with(scale: Scale, threads: usize) -> [[f64; 3]; 2] {
    let kinds = [TechniqueKind::Rcf, TechniqueKind::EdgCf, TechniqueKind::Ecf];
    let styles = [UpdateStyle::Jcc, UpdateStyle::CMov];
    let ratios = parallel_map(ALL.len(), threads, |i| {
        let img = image(&ALL[i], scale);
        let base = run_dbt(&img, &RunConfig::baseline()).cycles as f64;
        let mut r = [[0.0f64; 3]; 2];
        for (si, &style) in styles.iter().enumerate() {
            for (ki, &kind) in kinds.iter().enumerate() {
                let cfg = RunConfig { technique: Some(kind), style, ..RunConfig::default() };
                r[si][ki] = run_dbt(&img, &cfg).cycles as f64 / base;
            }
        }
        r
    });
    let mut acc = [[Vec::new(), Vec::new(), Vec::new()], [Vec::new(), Vec::new(), Vec::new()]];
    for r in &ratios {
        for s in 0..2 {
            for k in 0..3 {
                acc[s][k].push(r[s][k]);
            }
        }
    }
    let mut out = [[0.0; 3]; 2];
    for s in 0..2 {
        for k in 0..3 {
            out[s][k] = geomean(&acc[s][k]);
        }
    }
    out
}

/// Renders the Figure 14 table.
pub fn render_fig14(m: &[[f64; 3]; 2]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 14 — geomean slowdown by signature-update instruction");
    let _ = writeln!(out, "{:>10} | {:>7} {:>7} {:>7}", "update", "RCF", "EdgCF", "ECF");
    let _ = writeln!(out, "{}", "-".repeat(36));
    let _ = writeln!(
        out,
        "{:>10} | {:>7.3} {:>7.3} {:>7.3}   (EdgCF/ECF unsafe)",
        "Jcc", m[0][0], m[0][1], m[0][2]
    );
    let _ = writeln!(out, "{:>10} | {:>7.3} {:>7.3} {:>7.3}", "CMOVcc", m[1][0], m[1][1], m[1][2]);
    out
}

// ----------------------------------------------------------------------
// Figure 15
// ----------------------------------------------------------------------

/// One benchmark row of Figure 15 (RCF under the four checking policies).
#[derive(Debug, Clone)]
pub struct PolicyRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite membership.
    pub suite: Suite,
    /// Slowdown under ALLBB / RET-BE / RET / END.
    pub slowdowns: [f64; 4],
}

/// Figure 15 data: RCF slowdown under each checking policy.
pub fn fig15(scale: Scale) -> Vec<PolicyRow> {
    fig15_with(scale, 0)
}

/// As [`fig15`], one workload per pool task over `threads` worker threads;
/// rows come back in workload order, byte-identical to a serial run.
pub fn fig15_with(scale: Scale, threads: usize) -> Vec<PolicyRow> {
    parallel_map(ALL.len(), threads, |i| {
        let w = &ALL[i];
        let img = image(w, scale);
        let base = run_dbt(&img, &RunConfig::baseline()).cycles as f64;
        let mut slowdowns = [0.0; 4];
        for (pi, policy) in CheckPolicy::ALL.into_iter().enumerate() {
            let cfg =
                RunConfig { technique: Some(TechniqueKind::Rcf), policy, ..RunConfig::default() };
            slowdowns[pi] = run_dbt(&img, &cfg).cycles as f64 / base;
        }
        PolicyRow { name: w.name, suite: w.suite, slowdowns }
    })
}

/// Geomean of a policy column over a suite filter.
pub fn fig15_geomean(rows: &[PolicyRow], suite: Option<Suite>, policy: usize) -> f64 {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| suite.is_none_or(|s| r.suite == s))
        .map(|r| r.slowdowns[policy])
        .collect();
    geomean(&vals)
}

/// Renders Figure 15 as a table.
pub fn render_fig15(rows: &[PolicyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 15 — RCF slowdown under the signature checking policies");
    let _ = writeln!(
        out,
        "{:>14} {:>6} | {:>7} {:>7} {:>7} {:>7}",
        "benchmark", "suite", "ALLBB", "RET-BE", "RET", "END"
    );
    let _ = writeln!(out, "{}", "-".repeat(58));
    for suite in [Suite::Fp, Suite::Int] {
        for r in rows.iter().filter(|r| r.suite == suite) {
            let _ = writeln!(
                out,
                "{:>14} {:>6} | {:>7.3} {:>7.3} {:>7.3} {:>7.3}",
                r.name,
                if suite == Suite::Int { "int" } else { "fp" },
                r.slowdowns[0],
                r.slowdowns[1],
                r.slowdowns[2],
                r.slowdowns[3]
            );
        }
        let label = if suite == Suite::Int { "geomean-int" } else { "geomean-fp" };
        let _ = write!(out, "{label:>21} |");
        for p in 0..4 {
            let _ = write!(out, " {:>7.3}", fig15_geomean(rows, Some(suite), p));
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:>21} |", "geomean-all");
    for p in 0..4 {
        let _ = write!(out, " {:>7.3}", fig15_geomean(rows, None, p));
    }
    let _ = writeln!(out);
    out
}

// ----------------------------------------------------------------------
// Coverage matrix (fault injection)
// ----------------------------------------------------------------------

/// Per-technique injection results, per category.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// `None` is the uninstrumented baseline.
    pub technique: Option<TechniqueKind>,
    /// Outcome tallies for categories A–E plus F and NoError.
    pub per_category: Vec<(Category, CategoryStats)>,
}

/// Workloads used for injection campaigns (kept small — every injection is
/// a whole program run).
pub const COVERAGE_WORKLOADS: [&str; 6] = cfed_runner::matrix::CAMPAIGN_WORKLOADS;

/// The six coverage configurations: uninstrumented baseline plus the five
/// techniques (the two CFG-dependent prior-work techniques included, via
/// the hybrid static-CFG path).
fn coverage_techniques() -> Vec<Option<TechniqueKind>> {
    vec![
        None,
        Some(TechniqueKind::Cfcss),
        Some(TechniqueKind::Ecca),
        Some(TechniqueKind::Ecf),
        Some(TechniqueKind::EdgCf),
        Some(TechniqueKind::Rcf),
    ]
}

/// Runs a matrix through the `cfed-runner` worker pool (ephemeral store)
/// and hands back the per-cell reports paired with their specs, panicking
/// with the shard errors if any cell failed — the harnesses run known-good
/// workloads, so a failure is a bug, not data.
fn pooled_reports(matrix: &CampaignMatrix, run_id: &str, threads: usize) -> RunSummary {
    let options = RunnerOptions { threads, ..Default::default() };
    let summary = run_matrix(matrix, run_id, None, &options).expect("in-memory run cannot fail");
    for cell in &summary.cells {
        assert!(
            cell.report.is_some() && cell.complete(),
            "campaign cell {} failed: {:?}",
            cell.key,
            cell.failures
        );
    }
    summary
}

/// Runs fault-injection campaigns for the baseline and each of the five
/// techniques under the given conditional-update style, distributing the
/// shards over `threads` worker threads (`0` = all cores). Tallies are
/// bit-identical for any thread count.
pub fn coverage_with(
    trials_per_workload: u64,
    style: UpdateStyle,
    seed: u64,
    threads: usize,
) -> Vec<CoverageRow> {
    let matrix = CampaignMatrix {
        workloads: COVERAGE_WORKLOADS
            .iter()
            .map(|name| WorkloadSpec::named(name, Scale::Test))
            .collect(),
        techniques: coverage_techniques(),
        styles: vec![style],
        policies: vec![CheckPolicy::AllBb],
        trials: trials_per_workload,
        seed,
        attacks: vec![None],
    };
    let summary = pooled_reports(&matrix, "coverage", threads);
    let cells = matrix.cells();
    coverage_techniques()
        .into_iter()
        .map(|technique| {
            let mut totals: Vec<(Category, CategoryStats)> =
                Category::ALL.iter().map(|&c| (c, CategoryStats::default())).collect();
            for (cell, result) in cells.iter().zip(&summary.cells) {
                if cell.config.technique != technique {
                    continue;
                }
                let report = result.report.as_ref().expect("checked by pooled_reports");
                for (c, slot) in &mut totals {
                    let s = report.category(*c);
                    slot.detected_check += s.detected_check;
                    slot.detected_hw += s.detected_hw;
                    slot.other_fault += s.other_fault;
                    slot.benign += s.benign;
                    slot.sdc += s.sdc;
                    slot.timeout += s.timeout;
                }
            }
            CoverageRow { technique, per_category: totals }
        })
        .collect()
}

/// [`coverage_with`] at the default seed, using all cores.
pub fn coverage(trials_per_workload: u64, style: UpdateStyle) -> Vec<CoverageRow> {
    coverage_with(trials_per_workload, style, DEFAULT_CAMPAIGN_SEED, 0)
}

/// Renders the coverage matrix.
pub fn render_coverage(rows: &[CoverageRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Coverage matrix — fault injection into translated code (per config trials/workload/technique)"
    );
    for row in rows {
        let name = row.technique.map_or("baseline".to_string(), |k| k.to_string());
        let _ = writeln!(out, "\n== {name} ==");
        let _ = writeln!(
            out,
            "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>8}",
            "Category", "chk", "hw", "fault", "benign", "SDC", "timeout", "coverage"
        );
        let _ = writeln!(out, "{}", "-".repeat(72));
        for (c, s) in &row.per_category {
            if s.total() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>7.1}%",
                c.to_string(),
                s.detected_check,
                s.detected_hw,
                s.other_fault,
                s.benign,
                s.sdc,
                s.timeout,
                100.0 * s.coverage()
            );
        }
    }
    out
}

// ----------------------------------------------------------------------
// Detection latency (extension: quantifies §6's delay-to-report tradeoff)
// ----------------------------------------------------------------------

/// Mean detection latency per checking policy.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// The checking policy.
    pub policy: CheckPolicy,
    /// Mean instructions from injection to the check report.
    pub mean_latency: f64,
    /// Fraction of harmful faults detected by checks (vs hardware).
    pub check_share: f64,
}

/// Measures mean detection latency of the EdgCF technique under each
/// checking policy — the quantitative version of §6's qualitative
/// "the less frequently we check, the more delay it can take to report" —
/// with the campaigns distributed over `threads` worker threads.
pub fn latency_by_policy_with(
    trials_per_workload: u64,
    seed: u64,
    threads: usize,
) -> Vec<LatencyRow> {
    let matrix = CampaignMatrix {
        workloads: COVERAGE_WORKLOADS
            .iter()
            .map(|name| WorkloadSpec::named(name, Scale::Test))
            .collect(),
        techniques: vec![Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: CheckPolicy::ALL.to_vec(),
        trials: trials_per_workload,
        seed,
        attacks: vec![None],
    };
    let summary = pooled_reports(&matrix, "latency", threads);
    let cells = matrix.cells();
    CheckPolicy::ALL
        .into_iter()
        .map(|policy| {
            let reports: Vec<&CampaignReport> = cells
                .iter()
                .zip(&summary.cells)
                .filter(|(cell, _)| cell.config.policy == policy)
                .map(|(_, r)| r.report.as_ref().expect("checked by pooled_reports"))
                .collect();
            latency_row(policy, &reports)
        })
        .collect()
}

/// Aggregates one policy's per-workload reports into a [`LatencyRow`].
fn latency_row(policy: CheckPolicy, reports: &[&CampaignReport]) -> LatencyRow {
    let mut lat_sum = 0.0;
    let mut lat_n = 0u64;
    let mut chk = 0u64;
    let mut hw = 0u64;
    for report in reports {
        if let Some(l) = report.mean_detection_latency() {
            lat_sum += l;
            lat_n += 1;
        }
        let t = report.sdc_prone_total();
        chk += t.detected_check;
        hw += t.detected_hw + t.other_fault;
    }
    LatencyRow {
        policy,
        mean_latency: if lat_n > 0 { lat_sum / lat_n as f64 } else { f64::NAN },
        check_share: if chk + hw > 0 { chk as f64 / (chk + hw) as f64 } else { 0.0 },
    }
}

/// [`latency_by_policy_with`] at the default seed, using all cores.
pub fn latency_by_policy(trials_per_workload: u64) -> Vec<LatencyRow> {
    latency_by_policy_with(trials_per_workload, DEFAULT_CAMPAIGN_SEED, 0)
}

/// Renders the latency table.
pub fn render_latency(rows: &[LatencyRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Detection latency by checking policy (EdgCF, CMOVcc)");
    let _ = writeln!(out, "{:>8} | {:>16} | {:>12}", "policy", "mean latency", "check share");
    let _ = writeln!(out, "{}", "-".repeat(44));
    for r in rows {
        let _ = writeln!(
            out,
            "{:>8} | {:>11.0} insts | {:>11.1}%",
            r.policy.to_string(),
            r.mean_latency,
            100.0 * r.check_share
        );
    }
    out
}
