//! Criterion microbenchmarks for the reproduction's substrates and the
//! per-technique instrumentation cost (the host-side complements of the
//! guest-cycle figures):
//!
//! * `codec` — VISA binary encode/decode throughput;
//! * `interpreter` — simulated instructions per second;
//! * `dispatch` — decode-once engine ablation: raw vs pre-decoded
//!   interpreter dispatch, and DBT per-step vs block-fused execution;
//! * `translate` — DBT block-translation cost per technique (ablation:
//!   instrumentation emission overhead);
//! * `run_technique` — end-to-end workload execution per technique
//!   (host-time view of Figure 12's guest-cycle view);
//! * `trace_tier` — tiered-translation ablation on a hot loop: tier-1
//!   native JIT vs the profile-guided trace tier (skipped when the host
//!   cannot run native code);
//! * `error_model` — §2 bit-classification throughput;
//! * `compile_minic` — MiniC front-end+codegen throughput.

use cfed_core::{run_dbt, run_dbt_tiered_enabled, RunConfig, TechniqueKind};
use cfed_dbt::{Dbt, NullInstrumenter, UpdateStyle};
use cfed_fault::analyze_image;
use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg};
use cfed_sim::Machine;
use cfed_workloads::{by_name, Scale};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

fn sample_insts() -> Vec<Inst> {
    let mut v = Vec::new();
    for i in 0..64 {
        v.push(Inst::MovRI { dst: Reg::R0, imm: i });
        v.push(Inst::Alu { op: AluOp::Add, dst: Reg::R1, src: Reg::R0 });
        v.push(Inst::Ld { dst: Reg::R2, base: Reg::SP, disp: -8 });
        v.push(Inst::Jcc { cc: Cond::Ne, offset: i * 8 });
        v.push(Inst::Lea2 { dst: Reg::R8, base: Reg::R8, index: Reg::R9, disp: 1 });
    }
    v
}

fn bench_codec(c: &mut Criterion) {
    let insts = sample_insts();
    let bytes = encode_all(&insts);
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Elements(insts.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            for i in &insts {
                black_box(i.encode());
            }
        })
    });
    g.throughput(Throughput::Elements(insts.len() as u64));
    g.bench_function("decode", |b| {
        b.iter(|| {
            for chunk in bytes.chunks_exact(8) {
                let arr: &[u8; 8] = chunk.try_into().unwrap();
                black_box(Inst::decode(arr).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_interpreter(c: &mut Criterion) {
    let image = by_name("189.lucas").unwrap().image(Scale::Test).unwrap();
    let mut g = c.benchmark_group("interpreter");
    // How many instructions does one run retire?
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    m.run(u64::MAX);
    let insts = m.cpu.stats().insts;
    g.throughput(Throughput::Elements(insts));
    g.bench_function("native_lucas", |b| {
        b.iter_batched(
            || Machine::load(image.code(), image.data(), image.entry_offset()),
            |mut m| {
                black_box(m.run(u64::MAX));
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_dispatch(c: &mut Criterion) {
    let image = by_name("189.lucas").unwrap().image(Scale::Test).unwrap();
    let mut g = c.benchmark_group("dispatch");
    let load = || Machine::load(image.code(), image.data(), image.entry_offset());
    let mut m = load();
    m.run(u64::MAX);
    g.throughput(Throughput::Elements(m.cpu.stats().insts));
    for (name, cached) in [("interp_raw", false), ("interp_decoded", true)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut m = load();
                    m.set_decode_cache(cached);
                    m
                },
                |mut m| {
                    black_box(m.run(u64::MAX));
                },
                BatchSize::SmallInput,
            )
        });
    }
    // The DBT retires extra instrumentation/stub instructions; recount so
    // both DBT rows use the same per-element denominator.
    let mut m = load();
    let mut dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
    dbt.run(&mut m, u64::MAX);
    g.throughput(Throughput::Elements(m.cpu.stats().insts));
    for (name, fused) in [("dbt_per_step", false), ("dbt_block_fused", true)] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut m = load();
                    m.set_decode_cache(fused);
                    let dbt = Dbt::new(Box::new(NullInstrumenter), UpdateStyle::Jcc, &mut m);
                    (m, dbt)
                },
                |(mut m, mut dbt)| {
                    black_box(dbt.run(&mut m, u64::MAX));
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_translation(c: &mut Criterion) {
    let image = by_name("176.gcc").unwrap().image(Scale::Test).unwrap();
    let mut g = c.benchmark_group("translate");
    // Translate every statically recoverable block, per technique.
    let cfg = cfed_core::cfg::Cfg::recover(&image);
    let starts: Vec<u64> = cfg.blocks().iter().map(|b| b.start).collect();
    g.throughput(Throughput::Elements(starts.len() as u64));
    type Make = Box<dyn Fn() -> Box<dyn cfed_dbt::Instrumenter>>;
    let mut cases: Vec<(&str, Make)> = vec![("baseline", Box::new(|| Box::new(NullInstrumenter)))];
    for kind in TechniqueKind::ALL {
        let name = match kind {
            TechniqueKind::Rcf => "rcf",
            TechniqueKind::EdgCf => "edgcf",
            TechniqueKind::Ecf => "ecf",
            other => unreachable!("ALL contains only DBT techniques, got {other}"),
        };
        cases.push((name, Box::new(move || kind.instrumenter(cfed_dbt::CheckPolicy::AllBb))));
    }
    for (name, make) in cases {
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
                    let dbt = Dbt::new(make(), UpdateStyle::Jcc, &mut m);
                    (m, dbt)
                },
                |(mut m, mut dbt)| {
                    for &s in &starts {
                        black_box(dbt.translate(&mut m, s).unwrap());
                    }
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_techniques_end_to_end(c: &mut Criterion) {
    let image = by_name("181.mcf").unwrap().image(Scale::Test).unwrap();
    let mut g = c.benchmark_group("run_technique");
    g.bench_function("baseline", |b| b.iter(|| black_box(run_dbt(&image, &RunConfig::baseline()))));
    for kind in TechniqueKind::ALL {
        g.bench_function(kind.to_string(), |b| {
            b.iter(|| black_box(run_dbt(&image, &RunConfig::technique(kind))))
        });
    }
    g.finish();
}

fn bench_trace_tier(c: &mut Criterion) {
    // The trace tier only pays off once the native backend is live: without
    // it the tier falls back to fused-cache dispatch and the two rows would
    // measure the same engine.
    if !cfed_dbt::native_enabled() || !cfed_dbt::tier_enabled() {
        eprintln!("trace_tier: native backend or trace tier unavailable; group skipped");
        return;
    }
    let image = cfed_lang::compile(
        "fn main() {
             let acc = 7;
             let outer = 0;
             while (outer < 50) {
                 let i = 0;
                 while (i < 5000) {
                     if (i % 4 == 1) { acc = acc * 2 - i; } else { acc = acc + i; }
                     if (acc > 1000000) { acc = acc - 1000000; }
                     i = i + 1;
                 }
                 outer = outer + 1;
             }
             out(acc);
         }",
    )
    .expect("hot-loop bench source compiles");
    let cfg = RunConfig {
        style: UpdateStyle::CMov,
        max_insts: u64::MAX,
        ..RunConfig::technique(TechniqueKind::EdgCf)
    };
    let threshold = cfed_dbt::DEFAULT_COMPILE_THRESHOLD;
    // Both rows retire the tier-1 instruction stream's worth of guest work;
    // use that count as the shared per-element denominator so the trace
    // tier's optimized (shorter) stream shows up as throughput, not as a
    // different workload.
    let tier1 = run_dbt_tiered_enabled(&image, &cfg, threshold, true, false);
    let tiered = run_dbt_tiered_enabled(&image, &cfg, threshold, true, true);
    assert_eq!(tier1.output, tiered.output, "trace tier changed guest output");
    assert!(tiered.dbt.traces > 0, "hot loop failed to promote to the trace tier");
    let mut g = c.benchmark_group("trace_tier");
    g.throughput(Throughput::Elements(tier1.insts));
    for (name, tier) in [("tier1_native", false), ("trace_tier", true)] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_dbt_tiered_enabled(&image, &cfg, threshold, true, tier)))
        });
    }
    g.finish();
}

fn bench_error_model(c: &mut Criterion) {
    let image = by_name("171.swim").unwrap().image(Scale::Test).unwrap();
    let mut g = c.benchmark_group("error_model");
    g.bench_function("analyze_swim", |b| b.iter(|| black_box(analyze_image(&image, u64::MAX))));
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let src = by_name("176.gcc").unwrap().source(Scale::Test);
    let mut g = c.benchmark_group("compile_minic");
    g.throughput(Throughput::Bytes(src.len() as u64));
    g.bench_function("gcc_analog", |b| b.iter(|| black_box(cfed_lang::compile(&src).unwrap())));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_interpreter, bench_dispatch, bench_translation,
              bench_techniques_end_to_end, bench_trace_tier, bench_error_model,
              bench_compile
}
criterion_main!(benches);
