//! Property-based tests for the VISA encoder/decoder and classification
//! helpers.

use cfed_isa::{encode_all, AluOp, Cond, Inst, Reg, INST_SIZE};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(Reg::new)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..16).prop_map(|b| Cond::from_encoding(b).unwrap())
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    (0u8..12).prop_map(|b| AluOp::from_encoding(b).unwrap())
}

prop_compose! {
    fn arb_inst()(
        pick in 0usize..28,
        a in arb_reg(),
        b in arb_reg(),
        c in arb_reg(),
        cc in arb_cond(),
        op in arb_alu(),
        imm in any::<i32>(),
    ) -> Inst {
        match pick {
            0 => Inst::Nop,
            1 => Inst::Halt,
            2 => Inst::Out { src: a },
            3 => Inst::Trap { code: imm as u32 },
            4 => Inst::MovRR { dst: a, src: b },
            5 => Inst::MovRI { dst: a, imm },
            6 => Inst::Ld { dst: a, base: b, disp: imm },
            7 => Inst::St { base: a, src: b, disp: imm },
            8 => Inst::Ld8 { dst: a, base: b, disp: imm },
            9 => Inst::St8 { base: a, src: b, disp: imm },
            10 => Inst::Push { src: a },
            11 => Inst::Pop { dst: a },
            12 => Inst::CMov { cc, dst: a, src: b },
            13 => Inst::Alu { op, dst: a, src: b },
            14 => Inst::AluI { op, dst: a, imm },
            15 => Inst::Neg { dst: a },
            16 => Inst::Not { dst: a },
            17 => Inst::Lea { dst: a, base: b, disp: imm },
            18 => Inst::Lea2 { dst: a, base: b, index: c, disp: imm },
            19 => Inst::LeaSub { dst: a, base: b, index: c, disp: imm },
            20 => Inst::Jmp { offset: imm },
            21 => Inst::Jcc { cc, offset: imm },
            22 => Inst::JRz { src: a, offset: imm },
            23 => Inst::JRnz { src: a, offset: imm },
            24 => Inst::Call { offset: imm },
            25 => Inst::CallR { target: a },
            26 => Inst::JmpR { target: a },
            _ => Inst::Ret,
        }
    }
}

proptest! {
    /// Every instruction survives an encode/decode round trip.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let bytes = inst.encode();
        prop_assert_eq!(Inst::decode(&bytes), Ok(inst));
    }

    /// Decoding never panics on arbitrary bytes, and anything that decodes
    /// re-encodes to the identical byte pattern (encodings are canonical).
    #[test]
    fn decode_total_and_canonical(bytes in prop::array::uniform8(any::<u8>())) {
        if let Ok(inst) = Inst::decode(&bytes) {
            prop_assert_eq!(inst.encode(), bytes);
        }
    }

    /// Replacing a branch offset changes only the offset.
    #[test]
    fn with_branch_offset_is_local(inst in arb_inst(), new_off in any::<i32>()) {
        if inst.branch_offset().is_some() {
            let replaced = inst.with_branch_offset(new_off);
            prop_assert_eq!(replaced.branch_offset(), Some(new_off));
            prop_assert_eq!(replaced.with_branch_offset(inst.branch_offset().unwrap()), inst);
            prop_assert_eq!(replaced.mnemonic(), inst.mnemonic());
        }
    }

    /// `direct_target` is consistent with offset arithmetic and only defined
    /// for direct branches.
    #[test]
    fn direct_target_consistency(inst in arb_inst(), addr in 0u64..u32::MAX as u64) {
        match inst.branch_offset() {
            Some(off) => {
                let t = inst.direct_target(addr).unwrap();
                prop_assert_eq!(
                    t,
                    addr.wrapping_add(INST_SIZE as u64).wrapping_add(off as i64 as u64)
                );
            }
            None => prop_assert!(inst.direct_target(addr).is_none()),
        }
    }

    /// Offset bit flips in the encoded form decode to the same instruction
    /// with a single-bit-different offset (the fault injector relies on this).
    #[test]
    fn offset_bit_flip_stays_decodable(inst in arb_inst(), bit in 0u32..32) {
        if let Some(off) = inst.branch_offset() {
            let mut bytes = inst.encode();
            let byte = 4 + (bit / 8) as usize;
            bytes[byte] ^= 1 << (bit % 8);
            let flipped = Inst::decode(&bytes).expect("offset flips stay valid");
            prop_assert_eq!(flipped.branch_offset(), Some(off ^ (1i32 << bit)));
            prop_assert_eq!(flipped, inst.with_branch_offset(off ^ (1i32 << bit)));
        }
    }

    /// encode_all produces INST_SIZE bytes per instruction in order.
    #[test]
    fn encode_all_layout(insts in prop::collection::vec(arb_inst(), 0..32)) {
        let bytes = encode_all(&insts);
        prop_assert_eq!(bytes.len(), insts.len() * INST_SIZE);
        for (i, inst) in insts.iter().enumerate() {
            let chunk: &[u8; INST_SIZE] =
                &bytes[i * INST_SIZE..(i + 1) * INST_SIZE].try_into().unwrap();
            prop_assert_eq!(Inst::decode(chunk), Ok(*inst));
        }
    }

    /// Condition negation agrees with eval on every flags value.
    #[test]
    fn cond_negation(cc in arb_cond(), bits in 0u8..64) {
        let f = cfed_isa::Flags::from_bits(bits);
        prop_assert_ne!(cc.eval(f), cc.negated().eval(f));
    }
}
