//! Exhaustive round-trip conformance for the VISA encoding and its textual
//! form: every instruction shape over full register cross-products,
//! immediate corner values, all sixteen conditions and all twelve ALU ops
//! survives `encode → decode` bit-exactly and `Display → parse_asm →
//! assemble` instruction-exactly. The textual leg is what the regression
//! corpus relies on — a shrunk reproducer is archived as disassembly and
//! must re-assemble verbatim.

use cfed_asm::parse_asm;
use cfed_isa::{AluOp, Cond, Inst, Reg, INST_SIZE};

/// Immediate / displacement corners, including both i32 extremes.
const IMM: [i32; 10] = [0, 1, -1, 7, -8, 0x7F, -0x80, i32::MIN, i32::MAX, 0x1234_5678];

/// Branch offsets, including extremes that no assembler label could yield.
const OFF: [i32; 8] = [0, 8, -8, 64, -4096, i32::MIN, i32::MAX, 0x0FFF_FFF8];

/// Every instruction shape the ISA has, spanned over its operand space.
fn corpus() -> Vec<Inst> {
    let mut v = vec![Inst::Nop, Inst::Halt, Inst::Ret];
    for code in [0u32, 1, 0xCFE, u32::MAX] {
        v.push(Inst::Trap { code });
    }
    for r in Reg::all() {
        v.extend([
            Inst::Out { src: r },
            Inst::Push { src: r },
            Inst::Pop { dst: r },
            Inst::Neg { dst: r },
            Inst::Not { dst: r },
            Inst::CallR { target: r },
            Inst::JmpR { target: r },
        ]);
    }
    for dst in Reg::all() {
        for src in Reg::all() {
            v.push(Inst::MovRR { dst, src });
            for op in AluOp::ALL {
                v.push(Inst::Alu { op, dst, src });
            }
            for cc in Cond::ALL {
                v.push(Inst::CMov { cc, dst, src });
            }
            for disp in IMM {
                v.extend([
                    Inst::Ld { dst, base: src, disp },
                    Inst::St { base: dst, src, disp },
                    Inst::Ld8 { dst, base: src, disp },
                    Inst::St8 { base: dst, src, disp },
                    Inst::Lea { dst, base: src, disp },
                ]);
            }
        }
    }
    for dst in Reg::all() {
        for imm in IMM {
            v.push(Inst::MovRI { dst, imm });
            for op in AluOp::ALL {
                v.push(Inst::AluI { op, dst, imm });
            }
        }
    }
    // Three-register lea forms: full base×index product, plus the corner
    // displacements on a moving dst.
    for base in Reg::all() {
        for index in Reg::all() {
            for (dst, disp) in Reg::all().zip(IMM.iter().cycle()) {
                v.push(Inst::Lea2 { dst, base, index, disp: *disp });
                v.push(Inst::LeaSub { dst, base, index, disp: *disp });
            }
        }
    }
    for offset in OFF {
        v.push(Inst::Jmp { offset });
        v.push(Inst::Call { offset });
        for cc in Cond::ALL {
            v.push(Inst::Jcc { cc, offset });
        }
        for src in Reg::all() {
            v.push(Inst::JRz { src, offset });
            v.push(Inst::JRnz { src, offset });
        }
    }
    v
}

#[test]
fn encode_decode_is_identity() {
    for inst in corpus() {
        let bytes = inst.encode();
        let back = Inst::decode(&bytes).unwrap_or_else(|e| panic!("{inst:?} does not decode: {e}"));
        assert_eq!(back, inst, "decode(encode(i)) != i");
    }
}

#[test]
fn disasm_reassembles_verbatim() {
    let corpus = corpus();
    let mut text = String::from("entry:\n");
    for inst in &corpus {
        text.push_str(&inst.to_string());
        text.push('\n');
    }
    let image = parse_asm(&text)
        .unwrap_or_else(|e| panic!("disassembly does not parse: {e}"))
        .assemble("entry")
        .unwrap_or_else(|e| panic!("disassembly does not assemble: {e}"));
    assert_eq!(image.insts().len(), corpus.len());
    for (i, (got, want)) in image.insts().iter().zip(&corpus).enumerate() {
        assert_eq!(got, want, "line {}: `{want}` reassembled as `{got}`", i + 2);
    }
}

#[test]
fn decode_is_total_over_all_opcode_bytes() {
    // Every opcode byte, with all-zero and all-ones operand fields: decode
    // must return Ok or a structured error, never panic — this is what the
    // simulator leans on when execution runs into data or padding.
    let mut assigned = 0;
    for op in 0u8..=255 {
        let mut zeros = [0u8; INST_SIZE];
        zeros[0] = op;
        if let Ok(inst) = Inst::decode(&zeros) {
            assigned += 1;
            // Zero operand fields are canonical: re-encoding is identity.
            assert_eq!(inst.encode(), zeros, "{inst:?} is not canonical");
        }
        let mut ones = [0xFFu8; INST_SIZE];
        ones[0] = op;
        if let Ok(inst) = Inst::decode(&ones) {
            let _ = inst.encode();
        }
    }
    assert!(assigned > 30, "suspiciously few assigned opcodes: {assigned}");
    assert!(assigned < 256, "every opcode byte assigned — InvalidInst unreachable");
}
