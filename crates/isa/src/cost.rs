//! Static per-instruction cycle-cost model.
//!
//! The paper reports *slowdowns* (instrumented vs. uninstrumented execution
//! under the same DBT) on real hardware. We replace wall-clock time with a
//! deterministic cycle model; the absolute values are a documented assumption
//! (DESIGN.md) but the model preserves the relationships the paper's results
//! rest on: `cmov` costs more than a well-predicted conditional branch
//! (Figure 14's Jcc-vs-CMOVcc gap), `div` is far more expensive than anything
//! else (why ECCA-style div checks are "prohibitive", §3.1), memory
//! operations cost more than register ALU ops, and floating-point-style long
//! latency work makes instrumentation relatively cheaper (fp vs. int
//! behaviour in Figures 12/15).

use crate::inst::{AluOp, Inst};

/// A static cycle-cost model for VISA instructions.
///
/// All fields are public so experiments can build ablated models; the
/// [`Default`] values are the ones used throughout the reproduction.
///
/// # Examples
///
/// ```
/// use cfed_isa::{CostModel, Inst, Reg};
///
/// let m = CostModel::default();
/// let ld = Inst::Ld { dst: Reg::R0, base: Reg::SP, disp: 0 };
/// assert!(m.cost(&ld, false) > m.cost(&Inst::Nop, false));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Simple ALU / mov / lea operations.
    pub alu: u64,
    /// Conditional move (reads flags; serializing on real cores).
    pub cmov: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide.
    pub div: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Push/pop (one memory access plus pointer update).
    pub stack: u64,
    /// A branch that is taken (redirects fetch).
    pub branch_taken: u64,
    /// A branch that falls through.
    pub branch_not_taken: u64,
    /// Call (push + redirect).
    pub call: u64,
    /// Return (pop + indirect redirect).
    pub ret: u64,
    /// Indirect jump/call redirect penalty (added on top of `branch_taken` /
    /// `call`).
    pub indirect_penalty: u64,
    /// `out` (observable output) instruction.
    pub out: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            alu: 1,
            cmov: 2,
            mul: 3,
            div: 20,
            load: 3,
            store: 2,
            stack: 2,
            branch_taken: 2,
            branch_not_taken: 1,
            call: 3,
            ret: 3,
            indirect_penalty: 2,
            out: 1,
        }
    }
}

impl CostModel {
    /// Cycle cost of executing `inst`; `taken` reports whether a conditional
    /// branch was taken (ignored for other instructions).
    #[inline]
    pub fn cost(&self, inst: &Inst, taken: bool) -> u64 {
        match inst {
            Inst::Nop | Inst::Halt | Inst::Trap { .. } => 1,
            Inst::Out { .. } => self.out,
            Inst::MovRR { .. }
            | Inst::MovRI { .. }
            | Inst::Lea { .. }
            | Inst::Lea2 { .. }
            | Inst::LeaSub { .. }
            | Inst::Neg { .. }
            | Inst::Not { .. } => self.alu,
            Inst::Ld { .. } | Inst::Ld8 { .. } => self.load,
            Inst::St { .. } | Inst::St8 { .. } => self.store,
            Inst::Push { .. } | Inst::Pop { .. } => self.stack,
            Inst::CMov { .. } => self.cmov,
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => match op {
                AluOp::Mul => self.mul,
                AluOp::Div => self.div,
                _ => self.alu,
            },
            Inst::Jmp { .. } => self.branch_taken,
            Inst::Jcc { .. } | Inst::JRz { .. } | Inst::JRnz { .. } => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            Inst::Call { .. } => self.call,
            Inst::CallR { .. } => self.call + self.indirect_penalty,
            Inst::JmpR { .. } => self.branch_taken + self.indirect_penalty,
            Inst::Ret => self.ret,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg};

    #[test]
    fn orderings_required_by_the_paper() {
        let m = CostModel::default();
        let cmov = Inst::CMov { cc: Cond::Le, dst: Reg::R8, src: Reg::R9 };
        let jcc_nt = Inst::Jcc { cc: Cond::Le, offset: 8 };
        // CMOVcc update must be dearer than a (mostly not-taken) Jcc update.
        assert!(m.cost(&cmov, false) > m.cost(&jcc_nt, false));
        // div must dwarf everything (ECCA's check cost).
        let div = Inst::Alu { op: AluOp::Div, dst: Reg::R0, src: Reg::R1 };
        assert!(m.cost(&div, false) >= 10 * m.cost(&cmov, false));
        // lea is as cheap as xor (§5.1: "performance similar").
        let lea = Inst::Lea { dst: Reg::R8, base: Reg::R8, disp: 1 };
        let xor = Inst::Alu { op: AluOp::Xor, dst: Reg::R8, src: Reg::R8 };
        assert_eq!(m.cost(&lea, false), m.cost(&xor, false));
    }

    #[test]
    fn taken_branches_cost_more() {
        let m = CostModel::default();
        let j = Inst::Jcc { cc: Cond::E, offset: 8 };
        assert!(m.cost(&j, true) > m.cost(&j, false));
    }

    #[test]
    fn indirect_penalty_applied() {
        let m = CostModel::default();
        assert!(
            m.cost(&Inst::JmpR { target: Reg::R0 }, true) > m.cost(&Inst::Jmp { offset: 0 }, true)
        );
    }
}
