//! # cfed-isa — the VISA virtual instruction set
//!
//! VISA is a 64-bit, x86-flavoured virtual ISA built as the substrate for
//! reproducing *"Software-Based Transparent and Comprehensive Control-Flow
//! Error Detection"* (Borin et al., CGO 2006). The paper's techniques,
//! error model and DBT implementation depend on concrete IA-32/EM64T traits;
//! VISA keeps exactly those traits while remaining small enough to simulate
//! deterministically:
//!
//! * sixteen 64-bit registers ([`Reg`]), with `r8`–`r14` free for DBT
//!   instrumentation (the EM64T register headroom of paper §5.1);
//! * six IA-32-style condition flags ([`Flags`]) driving [`Cond`]-coded
//!   conditional branches and conditional moves;
//! * fixed 8-byte instructions ([`Inst`], [`INST_SIZE`]) with 32-bit branch
//!   offsets ([`OFFSET_BITS`]) — the bit-flip surface of the paper's error
//!   model;
//! * a flag-preserving `lea` family and flag-free `jrz`/`jrnz` branches,
//!   the building blocks the paper uses to instrument signatures without
//!   EFLAGS side effects;
//! * a strict binary [encoder/decoder](Inst::encode) and a
//!   [disassembler](disassemble);
//! * a deterministic [`CostModel`] replacing wall-clock slowdown.
//!
//! ## Example
//!
//! ```
//! use cfed_isa::{Inst, Reg, Cond, AluOp, encode_all, disassemble};
//!
//! // r0 = 10; loop { r0 -= 1; if r0 != 0 goto loop }; halt
//! let prog = vec![
//!     Inst::MovRI { dst: Reg::R0, imm: 10 },
//!     Inst::AluI { op: AluOp::Sub, dst: Reg::R0, imm: 1 },
//!     Inst::Jcc { cc: Cond::Ne, offset: -16 },
//!     Inst::Halt,
//! ];
//! let bytes = encode_all(&prog);
//! assert_eq!(bytes.len(), 32);
//! println!("{}", disassemble(&bytes, 0x1000));
//! ```

pub mod cond;
pub mod cost;
pub mod disasm;
pub mod encode;
pub mod flags;
pub mod inst;
pub mod reg;

pub use cond::Cond;
pub use cost::CostModel;
pub use disasm::disassemble;
pub use encode::{decode_all, encode_all, DecodeError};
pub use flags::Flags;
pub use inst::{AluOp, Inst, INST_SIZE, INST_SIZE_U64, OFFSET_BITS};
pub use reg::Reg;
