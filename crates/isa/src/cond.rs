//! Condition codes for `jcc` and `cmovcc`, with IA-32 evaluation semantics.

use crate::Flags;
use std::fmt;

/// A branch/cmov condition code, matching the IA-32 `cc` suffixes.
///
/// # Examples
///
/// ```
/// use cfed_isa::{Cond, Flags};
///
/// let mut f = Flags::empty();
/// f.set_zf(true);
/// assert!(Cond::E.eval(f));
/// assert!(!Cond::Ne.eval(f));
/// assert_eq!(Cond::Le.to_string(), "le");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`ZF`).
    E = 0,
    /// Not equal (`!ZF`).
    Ne = 1,
    /// Signed less (`SF != OF`).
    L = 2,
    /// Signed less-or-equal (`ZF || SF != OF`).
    Le = 3,
    /// Signed greater (`!ZF && SF == OF`).
    G = 4,
    /// Signed greater-or-equal (`SF == OF`).
    Ge = 5,
    /// Unsigned below (`CF`).
    B = 6,
    /// Unsigned below-or-equal (`CF || ZF`).
    Be = 7,
    /// Unsigned above (`!CF && !ZF`).
    A = 8,
    /// Unsigned above-or-equal (`!CF`).
    Ae = 9,
    /// Sign (`SF`).
    S = 10,
    /// Not sign (`!SF`).
    Ns = 11,
    /// Overflow (`OF`).
    O = 12,
    /// Not overflow (`!OF`).
    No = 13,
    /// Parity even (`PF`).
    P = 14,
    /// Parity odd (`!PF`).
    Np = 15,
}

impl Cond {
    /// All sixteen condition codes in encoding order.
    pub const ALL: [Cond; 16] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
        Cond::O,
        Cond::No,
        Cond::P,
        Cond::Np,
    ];

    /// Evaluates the condition against a flags value.
    #[inline]
    pub fn eval(self, f: Flags) -> bool {
        match self {
            Cond::E => f.zf(),
            Cond::Ne => !f.zf(),
            Cond::L => f.sf() != f.of(),
            Cond::Le => f.zf() || f.sf() != f.of(),
            Cond::G => !f.zf() && f.sf() == f.of(),
            Cond::Ge => f.sf() == f.of(),
            Cond::B => f.cf(),
            Cond::Be => f.cf() || f.zf(),
            Cond::A => !f.cf() && !f.zf(),
            Cond::Ae => !f.cf(),
            Cond::S => f.sf(),
            Cond::Ns => !f.sf(),
            Cond::O => f.of(),
            Cond::No => !f.of(),
            Cond::P => f.pf(),
            Cond::Np => !f.pf(),
        }
    }

    /// The condition that evaluates to the logical negation of `self` on
    /// every flags value.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Cond;
    /// assert_eq!(Cond::Le.negated(), Cond::G);
    /// ```
    pub fn negated(self) -> Cond {
        match self {
            Cond::E => Cond::Ne,
            Cond::Ne => Cond::E,
            Cond::L => Cond::Ge,
            Cond::Le => Cond::G,
            Cond::G => Cond::Le,
            Cond::Ge => Cond::L,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
            Cond::S => Cond::Ns,
            Cond::Ns => Cond::S,
            Cond::O => Cond::No,
            Cond::No => Cond::O,
            Cond::P => Cond::Np,
            Cond::Np => Cond::P,
        }
    }

    /// The 4-bit instruction encoding of the condition.
    pub fn encoding(self) -> u8 {
        self as u8
    }

    /// Decodes a 4-bit condition encoding.
    pub fn from_encoding(bits: u8) -> Option<Cond> {
        Cond::ALL.get(bits as usize).copied()
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::O => "o",
            Cond::No => "no",
            Cond::P => "p",
            Cond::Np => "np",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flags::sub_with_flags;

    fn flags_of_cmp(a: i64, b: i64) -> Flags {
        sub_with_flags(a as u64, b as u64).1
    }

    #[test]
    fn signed_comparisons() {
        let cases = [(-5i64, 3i64), (3, -5), (7, 7), (i64::MIN, i64::MAX)];
        for (a, b) in cases {
            let f = flags_of_cmp(a, b);
            assert_eq!(Cond::E.eval(f), a == b, "{a} cmp {b}");
            assert_eq!(Cond::L.eval(f), a < b, "{a} cmp {b}");
            assert_eq!(Cond::Le.eval(f), a <= b, "{a} cmp {b}");
            assert_eq!(Cond::G.eval(f), a > b, "{a} cmp {b}");
            assert_eq!(Cond::Ge.eval(f), a >= b, "{a} cmp {b}");
        }
    }

    #[test]
    fn unsigned_comparisons() {
        let cases = [(0u64, 1u64), (u64::MAX, 1), (9, 9), (1 << 63, 1)];
        for (a, b) in cases {
            let f = sub_with_flags(a, b).1;
            assert_eq!(Cond::B.eval(f), a < b, "{a} cmp {b}");
            assert_eq!(Cond::Be.eval(f), a <= b, "{a} cmp {b}");
            assert_eq!(Cond::A.eval(f), a > b, "{a} cmp {b}");
            assert_eq!(Cond::Ae.eval(f), a >= b, "{a} cmp {b}");
        }
    }

    #[test]
    fn negation_is_involutive_and_complementary() {
        for cc in Cond::ALL {
            assert_eq!(cc.negated().negated(), cc);
            for bits in 0..=Flags::MASK {
                let f = Flags::from_bits(bits);
                assert_ne!(cc.eval(f), cc.negated().eval(f), "{cc} on {f}");
            }
        }
    }

    #[test]
    fn encoding_roundtrip() {
        for cc in Cond::ALL {
            assert_eq!(Cond::from_encoding(cc.encoding()), Some(cc));
        }
        assert_eq!(Cond::from_encoding(16), None);
    }
}
