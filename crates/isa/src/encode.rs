//! Binary encoding and decoding of VISA instructions.
//!
//! Every instruction occupies exactly [`INST_SIZE`] bytes:
//!
//! ```text
//! byte 0      opcode
//! byte 1      regA | regB << 4
//! byte 2      regC | cond << 4
//! byte 3      reserved (must be zero)
//! bytes 4..8  imm32 / rel32, little endian
//! ```
//!
//! Decoding is strict: unknown opcodes and non-zero unused fields are
//! rejected, so corrupted fetches fail loudly (on IA-32 a control-flow error
//! landing in garbage bytes usually raises an illegal-instruction trap; the
//! strict decoder plays that role here).

use crate::inst::{AluOp, Inst, INST_SIZE};
use crate::{Cond, Reg};
use std::error::Error;
use std::fmt;

// Opcode space layout. Opcode 0x00 is deliberately unassigned so that
// zero-filled memory does not decode as an instruction sled: a control-flow
// error landing in unused (zeroed) cache or data bytes raises an
// invalid-instruction trap, as garbage bytes on a real machine would.
const OP_NOP: u8 = 0x05;
const OP_HALT: u8 = 0x01;
const OP_OUT: u8 = 0x02;
const OP_TRAP: u8 = 0x03;
const OP_MOV_RR: u8 = 0x10;
const OP_MOV_RI: u8 = 0x11;
const OP_LD: u8 = 0x12;
const OP_ST: u8 = 0x13;
const OP_LD8: u8 = 0x14;
const OP_ST8: u8 = 0x15;
const OP_PUSH: u8 = 0x16;
const OP_POP: u8 = 0x17;
const OP_CMOV: u8 = 0x18;
const OP_ALU_BASE: u8 = 0x20; // 0x20..=0x2B
const OP_NEG: u8 = 0x30;
const OP_NOT: u8 = 0x31;
const OP_LEA: u8 = 0x32;
const OP_LEA2: u8 = 0x33;
const OP_LEASUB: u8 = 0x34;
const OP_ALUI_BASE: u8 = 0x40; // 0x40..=0x4B
const OP_JMP: u8 = 0x50;
const OP_JCC: u8 = 0x51;
const OP_JRZ: u8 = 0x52;
const OP_JRNZ: u8 = 0x53;
const OP_CALL: u8 = 0x54;
const OP_CALLR: u8 = 0x55;
const OP_JMPR: u8 = 0x56;
const OP_RET: u8 = 0x57;

/// Error returned when a byte sequence does not decode to a valid
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeError {
    /// The opcode byte is not assigned.
    InvalidOpcode(u8),
    /// A field that must be zero for this opcode is non-zero.
    ReservedBits { opcode: u8 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::InvalidOpcode(op) => write!(f, "invalid opcode {op:#04x}"),
            DecodeError::ReservedBits { opcode } => {
                write!(f, "non-zero reserved bits in instruction with opcode {opcode:#04x}")
            }
        }
    }
}

impl Error for DecodeError {}

#[derive(Default)]
struct Fields {
    a: u8,
    b: u8,
    c: u8,
    cc: u8,
    imm: i32,
}

impl Fields {
    fn pack(&self, opcode: u8) -> [u8; INST_SIZE] {
        let mut out = [0u8; INST_SIZE];
        out[0] = opcode;
        out[1] = self.a | (self.b << 4);
        out[2] = self.c | (self.cc << 4);
        out[3] = 0;
        out[4..8].copy_from_slice(&self.imm.to_le_bytes());
        out
    }
}

impl Inst {
    /// Encodes the instruction into its 8-byte binary form.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::{Inst, Reg};
    /// let bytes = Inst::Push { src: Reg::R3 }.encode();
    /// assert_eq!(bytes.len(), 8);
    /// assert_eq!(Inst::decode(&bytes), Ok(Inst::Push { src: Reg::R3 }));
    /// ```
    pub fn encode(&self) -> [u8; INST_SIZE] {
        let mut f = Fields::default();
        let opcode = match *self {
            Inst::Nop => OP_NOP,
            Inst::Halt => OP_HALT,
            Inst::Out { src } => {
                f.a = src.encoding();
                OP_OUT
            }
            Inst::Trap { code } => {
                f.imm = code as i32;
                OP_TRAP
            }
            Inst::MovRR { dst, src } => {
                f.a = dst.encoding();
                f.b = src.encoding();
                OP_MOV_RR
            }
            Inst::MovRI { dst, imm } => {
                f.a = dst.encoding();
                f.imm = imm;
                OP_MOV_RI
            }
            Inst::Ld { dst, base, disp } => {
                f.a = dst.encoding();
                f.b = base.encoding();
                f.imm = disp;
                OP_LD
            }
            Inst::St { base, src, disp } => {
                f.a = base.encoding();
                f.b = src.encoding();
                f.imm = disp;
                OP_ST
            }
            Inst::Ld8 { dst, base, disp } => {
                f.a = dst.encoding();
                f.b = base.encoding();
                f.imm = disp;
                OP_LD8
            }
            Inst::St8 { base, src, disp } => {
                f.a = base.encoding();
                f.b = src.encoding();
                f.imm = disp;
                OP_ST8
            }
            Inst::Push { src } => {
                f.a = src.encoding();
                OP_PUSH
            }
            Inst::Pop { dst } => {
                f.a = dst.encoding();
                OP_POP
            }
            Inst::CMov { cc, dst, src } => {
                f.a = dst.encoding();
                f.b = src.encoding();
                f.cc = cc.encoding();
                OP_CMOV
            }
            Inst::Alu { op, dst, src } => {
                f.a = dst.encoding();
                f.b = src.encoding();
                OP_ALU_BASE + op as u8
            }
            Inst::AluI { op, dst, imm } => {
                f.a = dst.encoding();
                f.imm = imm;
                OP_ALUI_BASE + op as u8
            }
            Inst::Neg { dst } => {
                f.a = dst.encoding();
                OP_NEG
            }
            Inst::Not { dst } => {
                f.a = dst.encoding();
                OP_NOT
            }
            Inst::Lea { dst, base, disp } => {
                f.a = dst.encoding();
                f.b = base.encoding();
                f.imm = disp;
                OP_LEA
            }
            Inst::Lea2 { dst, base, index, disp } => {
                f.a = dst.encoding();
                f.b = base.encoding();
                f.c = index.encoding();
                f.imm = disp;
                OP_LEA2
            }
            Inst::LeaSub { dst, base, index, disp } => {
                f.a = dst.encoding();
                f.b = base.encoding();
                f.c = index.encoding();
                f.imm = disp;
                OP_LEASUB
            }
            Inst::Jmp { offset } => {
                f.imm = offset;
                OP_JMP
            }
            Inst::Jcc { cc, offset } => {
                f.cc = cc.encoding();
                f.imm = offset;
                OP_JCC
            }
            Inst::JRz { src, offset } => {
                f.a = src.encoding();
                f.imm = offset;
                OP_JRZ
            }
            Inst::JRnz { src, offset } => {
                f.a = src.encoding();
                f.imm = offset;
                OP_JRNZ
            }
            Inst::Call { offset } => {
                f.imm = offset;
                OP_CALL
            }
            Inst::CallR { target } => {
                f.a = target.encoding();
                OP_CALLR
            }
            Inst::JmpR { target } => {
                f.a = target.encoding();
                OP_JMPR
            }
            Inst::Ret => OP_RET,
        };
        f.pack(opcode)
    }

    /// Decodes an 8-byte sequence into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::InvalidOpcode`] for unassigned opcode bytes and
    /// [`DecodeError::ReservedBits`] when fields unused by the opcode are
    /// non-zero.
    pub fn decode(bytes: &[u8; INST_SIZE]) -> Result<Inst, DecodeError> {
        let opcode = bytes[0];
        let a = bytes[1] & 0x0F;
        let b = bytes[1] >> 4;
        let c = bytes[2] & 0x0F;
        let cc_bits = bytes[2] >> 4;
        let imm = i32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
        let err = DecodeError::ReservedBits { opcode };
        if bytes[3] != 0 {
            return Err(err);
        }

        // Per-opcode field usage masks: (a, b, c, cc, imm).
        let check =
            |ua: bool, ub: bool, uc: bool, ucc: bool, uimm: bool| -> Result<(), DecodeError> {
                if (!ua && a != 0)
                    || (!ub && b != 0)
                    || (!uc && c != 0)
                    || (!ucc && cc_bits != 0)
                    || (!uimm && imm != 0)
                {
                    Err(err)
                } else {
                    Ok(())
                }
            };

        let ra = Reg::new(a);
        let rb = Reg::new(b);
        let rc = Reg::new(c);
        let cond = || Cond::from_encoding(cc_bits).expect("4-bit cond is always valid");

        let inst = match opcode {
            OP_NOP => {
                check(false, false, false, false, false)?;
                Inst::Nop
            }
            OP_HALT => {
                check(false, false, false, false, false)?;
                Inst::Halt
            }
            OP_OUT => {
                check(true, false, false, false, false)?;
                Inst::Out { src: ra }
            }
            OP_TRAP => {
                check(false, false, false, false, true)?;
                Inst::Trap { code: imm as u32 }
            }
            OP_MOV_RR => {
                check(true, true, false, false, false)?;
                Inst::MovRR { dst: ra, src: rb }
            }
            OP_MOV_RI => {
                check(true, false, false, false, true)?;
                Inst::MovRI { dst: ra, imm }
            }
            OP_LD => {
                check(true, true, false, false, true)?;
                Inst::Ld { dst: ra, base: rb, disp: imm }
            }
            OP_ST => {
                check(true, true, false, false, true)?;
                Inst::St { base: ra, src: rb, disp: imm }
            }
            OP_LD8 => {
                check(true, true, false, false, true)?;
                Inst::Ld8 { dst: ra, base: rb, disp: imm }
            }
            OP_ST8 => {
                check(true, true, false, false, true)?;
                Inst::St8 { base: ra, src: rb, disp: imm }
            }
            OP_PUSH => {
                check(true, false, false, false, false)?;
                Inst::Push { src: ra }
            }
            OP_POP => {
                check(true, false, false, false, false)?;
                Inst::Pop { dst: ra }
            }
            OP_CMOV => {
                check(true, true, false, true, false)?;
                Inst::CMov { cc: cond(), dst: ra, src: rb }
            }
            op if (OP_ALU_BASE..OP_ALU_BASE + 12).contains(&op) => {
                check(true, true, false, false, false)?;
                let alu = AluOp::from_encoding(op - OP_ALU_BASE).expect("range-checked");
                Inst::Alu { op: alu, dst: ra, src: rb }
            }
            OP_NEG => {
                check(true, false, false, false, false)?;
                Inst::Neg { dst: ra }
            }
            OP_NOT => {
                check(true, false, false, false, false)?;
                Inst::Not { dst: ra }
            }
            OP_LEA => {
                check(true, true, false, false, true)?;
                Inst::Lea { dst: ra, base: rb, disp: imm }
            }
            OP_LEA2 => {
                check(true, true, true, false, true)?;
                Inst::Lea2 { dst: ra, base: rb, index: rc, disp: imm }
            }
            OP_LEASUB => {
                check(true, true, true, false, true)?;
                Inst::LeaSub { dst: ra, base: rb, index: rc, disp: imm }
            }
            op if (OP_ALUI_BASE..OP_ALUI_BASE + 12).contains(&op) => {
                check(true, false, false, false, true)?;
                let alu = AluOp::from_encoding(op - OP_ALUI_BASE).expect("range-checked");
                Inst::AluI { op: alu, dst: ra, imm }
            }
            OP_JMP => {
                check(false, false, false, false, true)?;
                Inst::Jmp { offset: imm }
            }
            OP_JCC => {
                check(false, false, false, true, true)?;
                Inst::Jcc { cc: cond(), offset: imm }
            }
            OP_JRZ => {
                check(true, false, false, false, true)?;
                Inst::JRz { src: ra, offset: imm }
            }
            OP_JRNZ => {
                check(true, false, false, false, true)?;
                Inst::JRnz { src: ra, offset: imm }
            }
            OP_CALL => {
                check(false, false, false, false, true)?;
                Inst::Call { offset: imm }
            }
            OP_CALLR => {
                check(true, false, false, false, false)?;
                Inst::CallR { target: ra }
            }
            OP_JMPR => {
                check(true, false, false, false, false)?;
                Inst::JmpR { target: ra }
            }
            OP_RET => {
                check(false, false, false, false, false)?;
                Inst::Ret
            }
            other => return Err(DecodeError::InvalidOpcode(other)),
        };
        Ok(inst)
    }

    /// Decodes an instruction from an arbitrary byte slice, returning `None`
    /// if fewer than [`INST_SIZE`] bytes are available.
    ///
    /// # Errors
    ///
    /// Same as [`Inst::decode`].
    pub fn decode_from_slice(bytes: &[u8]) -> Option<Result<Inst, DecodeError>> {
        let arr: &[u8; INST_SIZE] = bytes.get(..INST_SIZE)?.try_into().ok()?;
        Some(Inst::decode(arr))
    }
}

/// Encodes a sequence of instructions into a flat byte buffer.
///
/// # Examples
///
/// ```
/// use cfed_isa::{encode_all, Inst, Reg};
/// let code = encode_all(&[Inst::Nop, Inst::Halt]);
/// assert_eq!(code.len(), 16);
/// ```
pub fn encode_all(insts: &[Inst]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insts.len() * INST_SIZE);
    for i in insts {
        out.extend_from_slice(&i.encode());
    }
    out
}

/// Decodes a flat byte buffer into instructions.
///
/// # Errors
///
/// Fails on a trailing partial instruction or any decode error, reporting the
/// byte offset of the failure.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<Inst>, (usize, DecodeError)> {
    if !bytes.len().is_multiple_of(INST_SIZE) {
        return Err((bytes.len() / INST_SIZE * INST_SIZE, DecodeError::InvalidOpcode(0xFF)));
    }
    bytes
        .chunks_exact(INST_SIZE)
        .enumerate()
        .map(|(idx, chunk)| {
            let arr: &[u8; INST_SIZE] = chunk.try_into().expect("chunks_exact");
            Inst::decode(arr).map_err(|e| (idx * INST_SIZE, e))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_instructions() -> Vec<Inst> {
        let mut v = vec![
            Inst::Nop,
            Inst::Halt,
            Inst::Out { src: Reg::R2 },
            Inst::Trap { code: 0xDEAD },
            Inst::MovRR { dst: Reg::R1, src: Reg::R2 },
            Inst::MovRI { dst: Reg::R3, imm: -7 },
            Inst::Ld { dst: Reg::R0, base: Reg::SP, disp: 16 },
            Inst::St { base: Reg::SP, src: Reg::R4, disp: -8 },
            Inst::Ld8 { dst: Reg::R5, base: Reg::R6, disp: 3 },
            Inst::St8 { base: Reg::R6, src: Reg::R5, disp: 0 },
            Inst::Push { src: Reg::R7 },
            Inst::Pop { dst: Reg::R7 },
            Inst::CMov { cc: Cond::Le, dst: Reg::R8, src: Reg::R9 },
            Inst::Neg { dst: Reg::R1 },
            Inst::Not { dst: Reg::R1 },
            Inst::Lea { dst: Reg::R8, base: Reg::R9, disp: 1024 },
            Inst::Lea2 { dst: Reg::R8, base: Reg::R9, index: Reg::R10, disp: -1 },
            Inst::LeaSub { dst: Reg::R8, base: Reg::R9, index: Reg::R10, disp: 5 },
            Inst::Jmp { offset: 64 },
            Inst::JRz { src: Reg::R8, offset: 8 },
            Inst::JRnz { src: Reg::R8, offset: -8 },
            Inst::Call { offset: 512 },
            Inst::CallR { target: Reg::R3 },
            Inst::JmpR { target: Reg::R3 },
            Inst::Ret,
        ];
        for op in AluOp::ALL {
            v.push(Inst::Alu { op, dst: Reg::R1, src: Reg::R2 });
            v.push(Inst::AluI { op, dst: Reg::R1, imm: 42 });
        }
        for cc in Cond::ALL {
            v.push(Inst::Jcc { cc, offset: -64 });
            v.push(Inst::CMov { cc, dst: Reg::R0, src: Reg::R1 });
        }
        v
    }

    #[test]
    fn roundtrip_every_variant() {
        for inst in sample_instructions() {
            let bytes = inst.encode();
            assert_eq!(Inst::decode(&bytes), Ok(inst), "bytes {bytes:?}");
        }
    }

    #[test]
    fn reserved_byte_rejected() {
        let mut bytes = Inst::Nop.encode();
        bytes[3] = 1;
        assert!(matches!(Inst::decode(&bytes), Err(DecodeError::ReservedBits { .. })));
    }

    #[test]
    fn unused_field_rejected() {
        let mut bytes = Inst::Ret.encode();
        bytes[1] = 0x05; // Ret uses no register fields
        assert!(Inst::decode(&bytes).is_err());
        let mut bytes = Inst::Jmp { offset: 8 }.encode();
        bytes[2] = 0x30; // cc field unused by jmp
        assert!(Inst::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bytes = [0u8; INST_SIZE];
        bytes[0] = 0xEE;
        assert_eq!(Inst::decode(&bytes), Err(DecodeError::InvalidOpcode(0xEE)));
    }

    #[test]
    fn encode_decode_all() {
        let insts = sample_instructions();
        let bytes = encode_all(&insts);
        assert_eq!(decode_all(&bytes).unwrap(), insts);
    }

    #[test]
    fn decode_all_reports_offset() {
        let mut bytes = encode_all(&[Inst::Nop, Inst::Halt]);
        bytes[8] = 0xEE;
        let err = decode_all(&bytes).unwrap_err();
        assert_eq!(err.0, 8);
    }

    #[test]
    fn decode_from_slice_short_input() {
        assert!(Inst::decode_from_slice(&[0u8; 4]).is_none());
        assert!(Inst::decode_from_slice(&Inst::Halt.encode()).is_some());
    }

    #[test]
    fn offset_occupies_bytes_4_to_8() {
        // The error model flips bits in the rel32 field; make sure it lives
        // where the fault injector expects it.
        let bytes = Inst::Jmp { offset: 0x0102_0304 }.encode();
        assert_eq!(&bytes[4..8], &[0x04, 0x03, 0x02, 0x01]);
    }
}
