//! The VISA instruction set.
//!
//! Instructions are fixed-width (8 bytes, [`INST_SIZE`]) with a 32-bit
//! immediate/offset field. Control-transfer instructions carry a signed
//! 32-bit offset relative to the *end* of the instruction (IA-32 `rel32`
//! convention); [`OFFSET_BITS`] is the address-side bit width of the paper's
//! single-bit-flip error model.
//!
//! The set is deliberately x86-flavoured because the paper's techniques rely
//! on specific IA-32 traits:
//!
//! * flag-setting ALU ops plus `cmp`/`test` driving `jcc`/`cmovcc`;
//! * a flag-*preserving* address-arithmetic family ([`Inst::Lea`],
//!   [`Inst::Lea2`], [`Inst::LeaSub`]) used by the signature update code to
//!   avoid the EFLAGS side-effect problem (paper §5.1) — `LeaSub` computes
//!   `dst = base − index + disp`, exactly the `GEN_SIG(x, y, z) = x − y + z`
//!   form of §4.4;
//! * flag-free zero tests ([`Inst::JRz`]/[`Inst::JRnz`]), the analog of the
//!   `jcxz` instruction the paper uses to check signatures without touching
//!   EFLAGS;
//! * an implicit dynamic branch ([`Inst::Ret`]) popping its target from the
//!   stack (paper Figure 7).

use crate::{Cond, Reg};
use std::fmt;

/// Size in bytes of every VISA instruction.
pub const INST_SIZE: usize = 8;

/// Size of an instruction as a `u64`, for address arithmetic.
pub const INST_SIZE_U64: u64 = INST_SIZE as u64;

/// Number of bits in a branch address offset — the address-side bit count of
/// the paper's error model (§2: "1 bit change in the address offset of the
/// branch instruction").
pub const OFFSET_BITS: u32 = 32;

/// Two-operand ALU operations (IA-32 style: `dst = dst op src`, flags set).
///
/// `Cmp` and `Test` only update flags; `Div` is unsigned and raises a
/// divide-by-zero trap (the check mechanism of the ECCA technique).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Shl = 5,
    Shr = 6,
    Sar = 7,
    Mul = 8,
    Div = 9,
    Cmp = 10,
    Test = 11,
}

impl AluOp {
    /// All ALU operations in encoding order.
    pub const ALL: [AluOp; 12] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Cmp,
        AluOp::Test,
    ];

    /// Decodes an ALU opcode offset.
    pub fn from_encoding(bits: u8) -> Option<AluOp> {
        AluOp::ALL.get(bits as usize).copied()
    }

    /// Returns `true` for the flags-only operations (`cmp`, `test`) which do
    /// not write their destination register.
    pub fn is_compare(self) -> bool {
        matches!(self, AluOp::Cmp | AluOp::Test)
    }

    /// Mnemonic for disassembly.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Cmp => "cmp",
            AluOp::Test => "test",
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A decoded VISA instruction.
///
/// # Examples
///
/// ```
/// use cfed_isa::{Inst, Reg};
///
/// let i = Inst::MovRI { dst: Reg::R0, imm: 42 };
/// let bytes = i.encode();
/// assert_eq!(Inst::decode(&bytes).unwrap(), i);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// No operation.
    Nop,
    /// Stop the machine; the exit code is read from `r0`.
    Halt,
    /// Append the value of `src` to the program's output stream (the
    /// observable output used to detect silent data corruption).
    Out { src: Reg },
    /// Software trap carrying a code; used by instrumentation to report a
    /// detected control-flow error.
    Trap { code: u32 },

    /// `dst = src` (no flags).
    MovRR { dst: Reg, src: Reg },
    /// `dst = sign_extend(imm)` (no flags).
    MovRI { dst: Reg, imm: i32 },
    /// 64-bit load: `dst = mem[base + disp]`.
    Ld { dst: Reg, base: Reg, disp: i32 },
    /// 64-bit store: `mem[base + disp] = src`.
    St { base: Reg, src: Reg, disp: i32 },
    /// Byte load, zero-extended.
    Ld8 { dst: Reg, base: Reg, disp: i32 },
    /// Byte store (low byte of `src`).
    St8 { base: Reg, src: Reg, disp: i32 },
    /// `sp -= 8; mem[sp] = src`.
    Push { src: Reg },
    /// `dst = mem[sp]; sp += 8`.
    Pop { dst: Reg },
    /// Conditional move: `if cc { dst = src }` (flags read, not written).
    CMov { cc: Cond, dst: Reg, src: Reg },

    /// Two-operand ALU op: `dst = dst op src` (flags written).
    Alu { op: AluOp, dst: Reg, src: Reg },
    /// ALU op with immediate: `dst = dst op sign_extend(imm)`.
    AluI { op: AluOp, dst: Reg, imm: i32 },
    /// Two's-complement negate (flags written).
    Neg { dst: Reg },
    /// Bitwise not (flags written, IA-32 `not` actually preserves flags but
    /// we follow the logic-op convention for determinism).
    Not { dst: Reg },

    /// Flag-free add: `dst = base + disp` (the `lea` analog, paper §5.1).
    Lea { dst: Reg, base: Reg, disp: i32 },
    /// Flag-free three-operand add: `dst = base + index + disp`.
    Lea2 { dst: Reg, base: Reg, index: Reg, disp: i32 },
    /// Flag-free subtract form: `dst = base − index + disp`; this is the
    /// paper's `GEN_SIG(x, y, z) = x − y + z` in a single instruction.
    LeaSub { dst: Reg, base: Reg, index: Reg, disp: i32 },

    /// Unconditional direct jump (`rel32`).
    Jmp { offset: i32 },
    /// Conditional direct jump (`rel32`, flags read).
    Jcc { cc: Cond, offset: i32 },
    /// Jump if `src == 0` — flag-free (`jcxz` analog).
    JRz { src: Reg, offset: i32 },
    /// Jump if `src != 0` — flag-free.
    JRnz { src: Reg, offset: i32 },
    /// Direct call: pushes the return address, jumps `rel32`.
    Call { offset: i32 },
    /// Indirect call through a register.
    CallR { target: Reg },
    /// Indirect jump through a register.
    JmpR { target: Reg },
    /// Return: pops the target address from the stack (implicit dynamic
    /// branch, paper Figure 7).
    Ret,
}

impl Inst {
    /// Returns `true` for every control-transfer instruction (direct and
    /// indirect jumps, conditional branches, calls and returns) — the
    /// instructions subject to the paper's *branch-error* model.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. }
                | Inst::Jcc { .. }
                | Inst::JRz { .. }
                | Inst::JRnz { .. }
                | Inst::Call { .. }
                | Inst::CallR { .. }
                | Inst::JmpR { .. }
                | Inst::Ret
        )
    }

    /// Returns `true` for branches whose direction depends on machine state
    /// (condition flags or a tested register).
    #[inline]
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Jcc { .. } | Inst::JRz { .. } | Inst::JRnz { .. })
    }

    /// Returns `true` for branches whose direction depends on the condition
    /// *flags* — the flag-side fault targets of the error model. `JRz`/`JRnz`
    /// test a register, not the flags, so they are excluded.
    #[inline]
    pub fn reads_flags_for_direction(&self) -> bool {
        matches!(self, Inst::Jcc { .. })
    }

    /// Returns `true` for indirect control transfers (register targets and
    /// returns), whose targets are only known dynamically.
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self, Inst::CallR { .. } | Inst::JmpR { .. } | Inst::Ret)
    }

    /// Returns `true` when the instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        self.is_branch() | matches!(self, Inst::Halt | Inst::Trap { .. })
    }

    /// Returns `true` for call instructions (direct or indirect).
    pub fn is_call(&self) -> bool {
        matches!(self, Inst::Call { .. } | Inst::CallR { .. })
    }

    /// The encoded `rel32` offset of a direct branch, if any.
    pub fn branch_offset(&self) -> Option<i32> {
        match self {
            Inst::Jmp { offset }
            | Inst::Jcc { offset, .. }
            | Inst::JRz { offset, .. }
            | Inst::JRnz { offset, .. }
            | Inst::Call { offset } => Some(*offset),
            _ => None,
        }
    }

    /// Returns a copy of the instruction with its `rel32` offset replaced —
    /// the mechanism used to model address-offset bit flips.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a direct branch.
    pub fn with_branch_offset(&self, new_offset: i32) -> Inst {
        let mut copy = *self;
        match &mut copy {
            Inst::Jmp { offset }
            | Inst::Jcc { offset, .. }
            | Inst::JRz { offset, .. }
            | Inst::JRnz { offset, .. }
            | Inst::Call { offset } => *offset = new_offset,
            other => panic!("not a direct branch: {other:?}"),
        }
        copy
    }

    /// The absolute taken-target of a direct branch located at `addr`
    /// (`addr + 8 + offset`, wrapping).
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Inst;
    /// let j = Inst::Jmp { offset: 16 };
    /// assert_eq!(j.direct_target(0x1000), Some(0x1018));
    /// ```
    #[inline]
    pub fn direct_target(&self, addr: u64) -> Option<u64> {
        self.branch_offset()
            .map(|off| addr.wrapping_add(INST_SIZE_U64).wrapping_add(off as i64 as u64))
    }

    /// Returns `true` if control can continue to the next sequential
    /// instruction after executing this one (not-taken conditional branches,
    /// returns from calls, and all non-terminators).
    pub fn falls_through(&self) -> bool {
        !matches!(
            self,
            Inst::Jmp { .. } | Inst::JmpR { .. } | Inst::Ret | Inst::Halt | Inst::Trap { .. }
        )
    }

    /// Returns `true` if the instruction writes the condition flags.
    pub fn writes_flags(&self) -> bool {
        matches!(self, Inst::Alu { .. } | Inst::AluI { .. } | Inst::Neg { .. } | Inst::Not { .. })
    }

    /// Returns `true` if the instruction reads the condition flags.
    pub fn reads_flags(&self) -> bool {
        matches!(self, Inst::Jcc { .. } | Inst::CMov { .. })
    }

    /// Short mnemonic (without operands) for statistics and tracing.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Inst::Nop => "nop",
            Inst::Halt => "halt",
            Inst::Out { .. } => "out",
            Inst::Trap { .. } => "trap",
            Inst::MovRR { .. } | Inst::MovRI { .. } => "mov",
            Inst::Ld { .. } => "ld",
            Inst::St { .. } => "st",
            Inst::Ld8 { .. } => "ld8",
            Inst::St8 { .. } => "st8",
            Inst::Push { .. } => "push",
            Inst::Pop { .. } => "pop",
            Inst::CMov { .. } => "cmov",
            Inst::Alu { op, .. } | Inst::AluI { op, .. } => op.mnemonic(),
            Inst::Neg { .. } => "neg",
            Inst::Not { .. } => "not",
            Inst::Lea { .. } | Inst::Lea2 { .. } | Inst::LeaSub { .. } => "lea",
            Inst::Jmp { .. } => "jmp",
            Inst::Jcc { .. } => "jcc",
            Inst::JRz { .. } => "jrz",
            Inst::JRnz { .. } => "jrnz",
            Inst::Call { .. } => "call",
            Inst::CallR { .. } => "callr",
            Inst::JmpR { .. } => "jmpr",
            Inst::Ret => "ret",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_classification() {
        assert!(Inst::Jmp { offset: 0 }.is_branch());
        assert!(Inst::Ret.is_branch());
        assert!(Inst::Ret.is_indirect_branch());
        assert!(!Inst::Nop.is_branch());
        assert!(Inst::Jcc { cc: Cond::E, offset: 0 }.is_cond_branch());
        assert!(Inst::JRz { src: Reg::R0, offset: 0 }.is_cond_branch());
        assert!(!Inst::JRz { src: Reg::R0, offset: 0 }.reads_flags_for_direction());
        assert!(Inst::Jcc { cc: Cond::E, offset: 0 }.reads_flags_for_direction());
    }

    #[test]
    fn terminators_and_fallthrough() {
        assert!(Inst::Halt.is_terminator());
        assert!(!Inst::Halt.falls_through());
        assert!(Inst::Jcc { cc: Cond::L, offset: 8 }.falls_through());
        assert!(!Inst::Jmp { offset: 8 }.falls_through());
        assert!(Inst::Call { offset: 8 }.falls_through());
        assert!(!Inst::Ret.falls_through());
    }

    #[test]
    fn direct_target_arithmetic() {
        let j = Inst::Jcc { cc: Cond::Ne, offset: -16 };
        assert_eq!(j.direct_target(0x100), Some(0x100 + 8 - 16));
        assert_eq!(Inst::Ret.direct_target(0x100), None);
    }

    #[test]
    fn with_branch_offset_replaces() {
        let j = Inst::Call { offset: 100 };
        assert_eq!(j.with_branch_offset(-4).branch_offset(), Some(-4));
    }

    #[test]
    #[should_panic(expected = "not a direct branch")]
    fn with_branch_offset_on_non_branch_panics() {
        let _ = Inst::Nop.with_branch_offset(0);
    }

    #[test]
    fn flags_read_write_sets() {
        assert!(Inst::Alu { op: AluOp::Add, dst: Reg::R0, src: Reg::R1 }.writes_flags());
        assert!(!Inst::Lea { dst: Reg::R0, base: Reg::R1, disp: 4 }.writes_flags());
        assert!(
            !Inst::LeaSub { dst: Reg::R0, base: Reg::R1, index: Reg::R2, disp: 0 }.writes_flags()
        );
        assert!(Inst::CMov { cc: Cond::Le, dst: Reg::R0, src: Reg::R1 }.reads_flags());
        assert!(!Inst::JRnz { src: Reg::R0, offset: 0 }.reads_flags());
    }

    #[test]
    fn compare_ops_do_not_write_dst() {
        assert!(AluOp::Cmp.is_compare());
        assert!(AluOp::Test.is_compare());
        assert!(!AluOp::Xor.is_compare());
    }
}
