//! The condition-flags register and the arithmetic that updates it.
//!
//! VISA models the six IA-32 status flags that participate in conditional
//! control flow: carry (`CF`), parity (`PF`), adjust (`AF`), zero (`ZF`),
//! sign (`SF`) and overflow (`OF`). The paper's error model (§2) flips single
//! bits "in the flags that determine the conditional branches direction";
//! [`Flags::BITS`] is therefore the flag-side bit count of that model
//! (6 bits, matching the mass split observed in the paper's Figure 2, which
//! is consistent with 32 offset bits + 6 flag bits).

use std::fmt;

/// The six-bit condition-flags register.
///
/// # Examples
///
/// ```
/// use cfed_isa::Flags;
///
/// let mut f = Flags::empty();
/// f.set_zf(true);
/// assert!(f.zf());
/// assert_eq!(f.bits(), 0b001000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Flags(u8);

impl Flags {
    /// Carry flag bit position.
    pub const CF: u8 = 0;
    /// Parity flag bit position.
    pub const PF: u8 = 1;
    /// Adjust (auxiliary carry) flag bit position.
    pub const AF: u8 = 2;
    /// Zero flag bit position.
    pub const ZF: u8 = 3;
    /// Sign flag bit position.
    pub const SF: u8 = 4;
    /// Overflow flag bit position.
    pub const OF: u8 = 5;

    /// Number of architected flag bits (the flag-side width of the paper's
    /// single-bit error model).
    pub const BITS: u32 = 6;

    /// Mask covering all architected flag bits.
    pub const MASK: u8 = 0b11_1111;

    /// All flags clear.
    pub fn empty() -> Flags {
        Flags(0)
    }

    /// Builds a flags value from raw bits; bits above [`Flags::MASK`] are
    /// discarded.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Flags;
    /// assert_eq!(Flags::from_bits(0xFF).bits(), 0b11_1111);
    /// ```
    pub fn from_bits(bits: u8) -> Flags {
        Flags(bits & Self::MASK)
    }

    /// The raw bit pattern (low six bits).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Returns a copy with the given bit position toggled. This is the
    /// flag-side fault of the paper's error model.
    ///
    /// # Panics
    ///
    /// Panics if `bit >= Flags::BITS`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Flags;
    /// let f = Flags::empty().with_bit_flipped(Flags::ZF);
    /// assert!(f.zf());
    /// ```
    pub fn with_bit_flipped(self, bit: u8) -> Flags {
        assert!((bit as u32) < Self::BITS, "flag bit out of range: {bit}");
        Flags(self.0 ^ (1 << bit))
    }

    fn get(self, bit: u8) -> bool {
        self.0 & (1 << bit) != 0
    }

    fn set(&mut self, bit: u8, v: bool) {
        if v {
            self.0 |= 1 << bit;
        } else {
            self.0 &= !(1 << bit);
        }
    }

    /// Carry flag.
    pub fn cf(self) -> bool {
        self.get(Self::CF)
    }
    /// Parity flag (even parity of the low result byte).
    pub fn pf(self) -> bool {
        self.get(Self::PF)
    }
    /// Adjust flag (carry out of bit 3).
    pub fn af(self) -> bool {
        self.get(Self::AF)
    }
    /// Zero flag.
    pub fn zf(self) -> bool {
        self.get(Self::ZF)
    }
    /// Sign flag.
    pub fn sf(self) -> bool {
        self.get(Self::SF)
    }
    /// Overflow flag.
    pub fn of(self) -> bool {
        self.get(Self::OF)
    }

    /// Sets the carry flag.
    pub fn set_cf(&mut self, v: bool) {
        self.set(Self::CF, v);
    }
    /// Sets the parity flag.
    pub fn set_pf(&mut self, v: bool) {
        self.set(Self::PF, v);
    }
    /// Sets the adjust flag.
    pub fn set_af(&mut self, v: bool) {
        self.set(Self::AF, v);
    }
    /// Sets the zero flag.
    pub fn set_zf(&mut self, v: bool) {
        self.set(Self::ZF, v);
    }
    /// Sets the sign flag.
    pub fn set_sf(&mut self, v: bool) {
        self.set(Self::SF, v);
    }
    /// Sets the overflow flag.
    pub fn set_of(&mut self, v: bool) {
        self.set(Self::OF, v);
    }
}

impl fmt::Binary for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Display for Flags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (Self::OF, 'O'),
            (Self::SF, 'S'),
            (Self::ZF, 'Z'),
            (Self::AF, 'A'),
            (Self::PF, 'P'),
            (Self::CF, 'C'),
        ];
        for (bit, name) in names {
            if self.get(bit) {
                write!(f, "{name}")?;
            } else {
                write!(f, "-")?;
            }
        }
        Ok(())
    }
}

fn parity_even(byte: u8) -> bool {
    byte.count_ones().is_multiple_of(2)
}

/// Flags common to most result-producing operations: `ZF`, `SF` and `PF`
/// derived from the 64-bit result.
fn result_flags(result: u64, flags: &mut Flags) {
    flags.set_zf(result == 0);
    flags.set_sf((result as i64) < 0);
    flags.set_pf(parity_even(result as u8));
}

/// Computes `a + b`, returning the result and the full IA-32-style flag set.
///
/// # Examples
///
/// ```
/// use cfed_isa::flags::add_with_flags;
/// let (r, f) = add_with_flags(u64::MAX, 1);
/// assert_eq!(r, 0);
/// assert!(f.cf() && f.zf());
/// ```
#[inline]
pub fn add_with_flags(a: u64, b: u64) -> (u64, Flags) {
    let (result, carry) = a.overflowing_add(b);
    let overflow = (a as i64).overflowing_add(b as i64).1;
    let mut f = Flags::empty();
    f.set_cf(carry);
    f.set_of(overflow);
    f.set_af((a & 0xF) + (b & 0xF) > 0xF);
    result_flags(result, &mut f);
    (result, f)
}

/// Computes `a - b`, returning the result and the full flag set (`CF` is the
/// borrow flag, as on IA-32).
///
/// # Examples
///
/// ```
/// use cfed_isa::flags::sub_with_flags;
/// let (r, f) = sub_with_flags(1, 2);
/// assert_eq!(r as i64, -1);
/// assert!(f.cf() && f.sf() && !f.zf());
/// ```
#[inline]
pub fn sub_with_flags(a: u64, b: u64) -> (u64, Flags) {
    let (result, borrow) = a.overflowing_sub(b);
    let overflow = (a as i64).overflowing_sub(b as i64).1;
    let mut f = Flags::empty();
    f.set_cf(borrow);
    f.set_of(overflow);
    f.set_af((a & 0xF) < (b & 0xF));
    result_flags(result, &mut f);
    (result, f)
}

/// Flags for a bitwise-logic result (`and`, `or`, `xor`, `not` result):
/// `CF = OF = 0`, `ZF`/`SF`/`PF` from the result, `AF` cleared.
#[inline]
pub fn logic_flags(result: u64) -> Flags {
    let mut f = Flags::empty();
    result_flags(result, &mut f);
    f
}

/// Computes `a << sh` (shift amount masked to 0–63) with IA-32-style flags:
/// `CF` holds the last bit shifted out.
#[inline]
pub fn shl_with_flags(a: u64, sh: u64) -> (u64, Flags) {
    let sh = (sh & 63) as u32;
    let result = if sh == 0 { a } else { a << sh };
    let mut f = Flags::empty();
    if sh > 0 {
        f.set_cf((a >> (64 - sh)) & 1 != 0);
    }
    result_flags(result, &mut f);
    (result, f)
}

/// Computes logical `a >> sh` with `CF` holding the last bit shifted out.
#[inline]
pub fn shr_with_flags(a: u64, sh: u64) -> (u64, Flags) {
    let sh = (sh & 63) as u32;
    let result = if sh == 0 { a } else { a >> sh };
    let mut f = Flags::empty();
    if sh > 0 {
        f.set_cf((a >> (sh - 1)) & 1 != 0);
    }
    result_flags(result, &mut f);
    (result, f)
}

/// Computes arithmetic `a >> sh` with `CF` holding the last bit shifted out.
#[inline]
pub fn sar_with_flags(a: u64, sh: u64) -> (u64, Flags) {
    let sh = (sh & 63) as u32;
    let result = if sh == 0 { a } else { ((a as i64) >> sh) as u64 };
    let mut f = Flags::empty();
    if sh > 0 {
        f.set_cf(((a as i64) >> (sh - 1)) & 1 != 0);
    }
    result_flags(result, &mut f);
    (result, f)
}

/// Computes the low 64 bits of `a * b`; `CF`/`OF` are set when the signed
/// product does not fit in 64 bits (IA-32 `imul` convention), and
/// `ZF`/`SF`/`PF` follow the result for determinism.
#[inline]
pub fn mul_with_flags(a: u64, b: u64) -> (u64, Flags) {
    let (result, overflow) = (a as i64).overflowing_mul(b as i64);
    let result = result as u64;
    let mut f = Flags::empty();
    f.set_cf(overflow);
    f.set_of(overflow);
    result_flags(result, &mut f);
    (result, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_each_bit() {
        for bit in 0..Flags::BITS as u8 {
            let f = Flags::empty().with_bit_flipped(bit);
            assert_eq!(f.bits(), 1 << bit);
            assert_eq!(f.with_bit_flipped(bit), Flags::empty());
        }
    }

    #[test]
    #[should_panic(expected = "flag bit out of range")]
    fn flip_out_of_range_panics() {
        let _ = Flags::empty().with_bit_flipped(6);
    }

    #[test]
    fn from_bits_masks() {
        assert_eq!(Flags::from_bits(0xC0).bits(), 0);
    }

    #[test]
    fn add_carry_and_overflow_are_independent() {
        // Unsigned wrap without signed overflow.
        let (_, f) = add_with_flags(u64::MAX, 1);
        assert!(f.cf());
        assert!(!f.of());
        // Signed overflow without carry.
        let (_, f) = add_with_flags(i64::MAX as u64, 1);
        assert!(!f.cf());
        assert!(f.of());
    }

    #[test]
    fn sub_sets_borrow() {
        let (r, f) = sub_with_flags(3, 5);
        assert_eq!(r as i64, -2);
        assert!(f.cf());
        assert!(f.sf());
        let (r, f) = sub_with_flags(5, 5);
        assert_eq!(r, 0);
        assert!(f.zf());
        assert!(!f.cf());
    }

    #[test]
    fn cmp_semantics_for_signed_compare() {
        // 5 < 7 signed: SF != OF must hold for "less".
        let (_, f) = sub_with_flags(5, 7);
        assert_ne!(f.sf(), f.of());
        // -1 < 1 signed even though unsigned u64::MAX > 1.
        let (_, f) = sub_with_flags(-1i64 as u64, 1);
        assert_ne!(f.sf(), f.of());
        assert!(!f.cf() || f.cf()); // cf is defined either way; just exercise
    }

    #[test]
    fn parity_of_low_byte() {
        let (_, f) = add_with_flags(0, 3); // 0b11 -> even parity
        assert!(f.pf());
        let (_, f) = add_with_flags(0, 1); // 0b1 -> odd parity
        assert!(!f.pf());
    }

    #[test]
    fn logic_clears_cf_of() {
        let f = logic_flags(0);
        assert!(f.zf() && !f.cf() && !f.of());
    }

    #[test]
    fn shifts_capture_last_bit_out() {
        let (r, f) = shl_with_flags(0x8000_0000_0000_0000, 1);
        assert_eq!(r, 0);
        assert!(f.cf() && f.zf());
        let (r, f) = shr_with_flags(0b11, 1);
        assert_eq!(r, 1);
        assert!(f.cf());
        let (r, f) = sar_with_flags(-2i64 as u64, 1);
        assert_eq!(r as i64, -1);
        assert!(!f.cf());
    }

    #[test]
    fn shift_by_zero_keeps_value() {
        let (r, f) = shl_with_flags(42, 0);
        assert_eq!(r, 42);
        assert!(!f.cf());
    }

    #[test]
    fn mul_overflow_flags() {
        let (_, f) = mul_with_flags(i64::MAX as u64, 2);
        assert!(f.cf() && f.of());
        let (r, f) = mul_with_flags(6, 7);
        assert_eq!(r, 42);
        assert!(!f.cf() && !f.of());
    }

    #[test]
    fn numeric_formatting() {
        let f = Flags::from_bits(0b10_1010);
        assert_eq!(format!("{f:b}"), "101010");
        assert_eq!(format!("{f:x}"), "2a");
        assert_eq!(format!("{f:X}"), "2A");
    }

    #[test]
    fn display_is_never_empty() {
        assert_eq!(Flags::empty().to_string(), "------");
        let mut f = Flags::empty();
        f.set_zf(true);
        f.set_cf(true);
        assert_eq!(f.to_string(), "--Z--C");
    }
}
