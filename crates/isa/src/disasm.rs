//! Textual disassembly of VISA instructions.

use crate::inst::Inst;
use std::fmt;

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Nop => write!(f, "nop"),
            Inst::Halt => write!(f, "halt"),
            Inst::Out { src } => write!(f, "out {src}"),
            Inst::Trap { code } => write!(f, "trap {code:#x}"),
            Inst::MovRR { dst, src } => write!(f, "mov {dst}, {src}"),
            Inst::MovRI { dst, imm } => write!(f, "mov {dst}, {imm}"),
            Inst::Ld { dst, base, disp } => write!(f, "ld {dst}, [{base}{disp:+}]"),
            Inst::St { base, src, disp } => write!(f, "st [{base}{disp:+}], {src}"),
            Inst::Ld8 { dst, base, disp } => write!(f, "ld8 {dst}, [{base}{disp:+}]"),
            Inst::St8 { base, src, disp } => write!(f, "st8 [{base}{disp:+}], {src}"),
            Inst::Push { src } => write!(f, "push {src}"),
            Inst::Pop { dst } => write!(f, "pop {dst}"),
            Inst::CMov { cc, dst, src } => write!(f, "cmov{cc} {dst}, {src}"),
            Inst::Alu { op, dst, src } => write!(f, "{op} {dst}, {src}"),
            Inst::AluI { op, dst, imm } => write!(f, "{op} {dst}, {imm}"),
            Inst::Neg { dst } => write!(f, "neg {dst}"),
            Inst::Not { dst } => write!(f, "not {dst}"),
            Inst::Lea { dst, base, disp } => write!(f, "lea {dst}, [{base}{disp:+}]"),
            Inst::Lea2 { dst, base, index, disp } => {
                write!(f, "lea {dst}, [{base}+{index}{disp:+}]")
            }
            Inst::LeaSub { dst, base, index, disp } => {
                write!(f, "lea {dst}, [{base}-{index}{disp:+}]")
            }
            Inst::Jmp { offset } => write!(f, "jmp {offset:+}"),
            Inst::Jcc { cc, offset } => write!(f, "j{cc} {offset:+}"),
            Inst::JRz { src, offset } => write!(f, "jrz {src}, {offset:+}"),
            Inst::JRnz { src, offset } => write!(f, "jrnz {src}, {offset:+}"),
            Inst::Call { offset } => write!(f, "call {offset:+}"),
            Inst::CallR { target } => write!(f, "call {target}"),
            Inst::JmpR { target } => write!(f, "jmp {target}"),
            Inst::Ret => write!(f, "ret"),
        }
    }
}

/// Disassembles a code buffer into `addr: bytes  text` lines, resolving
/// direct branch targets to absolute addresses.
///
/// Undecodable slots are rendered as `(bad)` rather than failing, since code
/// regions may legitimately contain data or corrupted bytes.
///
/// # Examples
///
/// ```
/// use cfed_isa::{disassemble, encode_all, Inst};
/// let code = encode_all(&[Inst::Jmp { offset: -8 }]);
/// let text = disassemble(&code, 0x1000);
/// assert!(text.contains("jmp"));
/// assert!(text.contains("0x1000"));
/// ```
pub fn disassemble(code: &[u8], base: u64) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (idx, chunk) in code.chunks(crate::INST_SIZE).enumerate() {
        let addr = base + (idx * crate::INST_SIZE) as u64;
        let _ = write!(out, "{addr:#010x}:  ");
        match chunk.try_into().ok().map(|arr: &[u8; crate::INST_SIZE]| Inst::decode(arr)) {
            Some(Ok(inst)) => {
                if let Some(target) = inst.direct_target(addr) {
                    let _ = writeln!(out, "{inst}  ; -> {target:#x}");
                } else {
                    let _ = writeln!(out, "{inst}");
                }
            }
            _ => {
                let _ = writeln!(out, "(bad)");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_all, AluOp, Cond, Reg};

    #[test]
    fn display_forms() {
        let cases: Vec<(Inst, &str)> = vec![
            (Inst::MovRI { dst: Reg::R0, imm: -3 }, "mov r0, -3"),
            (Inst::Ld { dst: Reg::R1, base: Reg::SP, disp: 8 }, "ld r1, [sp+8]"),
            (Inst::St { base: Reg::R2, src: Reg::R3, disp: -16 }, "st [r2-16], r3"),
            (Inst::Alu { op: AluOp::Xor, dst: Reg::R8, src: Reg::R9 }, "xor r8, r9"),
            (Inst::AluI { op: AluOp::Cmp, dst: Reg::R8, imm: 0 }, "cmp r8, 0"),
            (Inst::Jcc { cc: Cond::Ne, offset: 16 }, "jne +16"),
            (Inst::JRnz { src: Reg::R8, offset: 8 }, "jrnz r8, +8"),
            (
                Inst::LeaSub { dst: Reg::R8, base: Reg::R8, index: Reg::R9, disp: 4 },
                "lea r8, [r8-r9+4]",
            ),
            (Inst::CMov { cc: Cond::Le, dst: Reg::R10, src: Reg::R11 }, "cmovle r10, r11"),
        ];
        for (inst, expected) in cases {
            assert_eq!(inst.to_string(), expected);
        }
    }

    #[test]
    fn disassemble_resolves_targets_and_bad_slots() {
        let mut code = encode_all(&[Inst::Jmp { offset: 8 }, Inst::Halt]);
        code.extend_from_slice(&[0xEE; 8]); // garbage slot
        let text = disassemble(&code, 0x2000);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("-> 0x2010"));
        assert!(lines[2].contains("(bad)"));
    }
}
