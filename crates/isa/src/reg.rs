//! General-purpose register file description.
//!
//! VISA has sixteen 64-bit general purpose registers, `r0`–`r15`. By software
//! convention `r15` is the stack pointer ([`Reg::SP`]). Mirroring the paper's
//! IA-32 → EM64T translation (which gains registers in the wider ISA and uses
//! them for the `PC'` and `RTS` signature registers without spilling), guest
//! programs produced by `cfed-asm`/`cfed-lang` restrict themselves to
//! `r0`–`r7` plus `sp`, leaving `r8`–`r14` free for the dynamic binary
//! translator's instrumentation.

use std::fmt;

/// A general-purpose register identifier (`r0`–`r15`).
///
/// # Examples
///
/// ```
/// use cfed_isa::Reg;
///
/// let r = Reg::R3;
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "r3");
/// assert_eq!(Reg::SP.to_string(), "sp");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    pub const R0: Reg = Reg(0);
    pub const R1: Reg = Reg(1);
    pub const R2: Reg = Reg(2);
    pub const R3: Reg = Reg(3);
    pub const R4: Reg = Reg(4);
    pub const R5: Reg = Reg(5);
    pub const R6: Reg = Reg(6);
    pub const R7: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);
    /// The stack pointer (`r15`) by software convention.
    pub const SP: Reg = Reg(15);

    /// Number of architectural registers.
    pub const COUNT: usize = 16;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Reg;
    /// assert_eq!(Reg::new(5), Reg::R5);
    /// ```
    pub fn new(index: u8) -> Reg {
        assert!(index < 16, "register index out of range: {index}");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` when out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Reg;
    /// assert_eq!(Reg::try_new(15), Some(Reg::SP));
    /// assert_eq!(Reg::try_new(16), None);
    /// ```
    pub fn try_new(index: u8) -> Option<Reg> {
        (index < 16).then_some(Reg(index))
    }

    /// The register's index in the register file (0–15).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The register's 4-bit encoding.
    pub fn encoding(self) -> u8 {
        self.0
    }

    /// Returns `true` for the registers that guest programs use by
    /// convention (`r0`–`r7` and `sp`); the remaining registers are reserved
    /// for DBT instrumentation such as the `PC'` and `RTS` signature
    /// registers.
    pub fn is_guest_conventional(self) -> bool {
        self.0 < 8 || self == Reg::SP
    }

    /// Iterates over all sixteen registers in index order.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Reg;
    /// assert_eq!(Reg::all().count(), 16);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..16).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == Reg::SP {
            write!(f, "sp")
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.0
    }
}

/// Error parsing a register name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError;

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid register name")
    }
}

impl std::error::Error for ParseRegError {}

impl std::str::FromStr for Reg {
    type Err = ParseRegError;

    /// Parses `r0`–`r15` (case insensitive) or `sp`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cfed_isa::Reg;
    /// assert_eq!("r9".parse::<Reg>(), Ok(Reg::R9));
    /// assert_eq!("SP".parse::<Reg>(), Ok(Reg::SP));
    /// assert!("r16".parse::<Reg>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Reg, ParseRegError> {
        if s.eq_ignore_ascii_case("sp") {
            return Ok(Reg::SP);
        }
        s.strip_prefix('r')
            .or_else(|| s.strip_prefix('R'))
            .and_then(|rest| rest.parse::<u8>().ok())
            .and_then(Reg::try_new)
            .ok_or(ParseRegError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..16 {
            assert_eq!(Reg::new(i).encoding(), i);
        }
    }

    #[test]
    fn sp_is_r15() {
        assert_eq!(Reg::SP, Reg::R15);
        assert_eq!(Reg::SP.to_string(), "sp");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_out_of_range_panics() {
        let _ = Reg::new(16);
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(0), Some(Reg::R0));
        assert_eq!(Reg::try_new(15), Some(Reg::R15));
        assert_eq!(Reg::try_new(200), None);
    }

    #[test]
    fn guest_conventional_partition() {
        let conventional: Vec<_> = Reg::all().filter(|r| r.is_guest_conventional()).collect();
        assert_eq!(conventional.len(), 9); // r0..r7 plus sp
        assert!(!Reg::R8.is_guest_conventional());
        assert!(!Reg::R14.is_guest_conventional());
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::R14.to_string(), "r14");
    }

    #[test]
    fn from_str_roundtrip() {
        for r in Reg::all() {
            assert_eq!(r.to_string().parse::<Reg>(), Ok(r));
        }
        assert!("r16".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!("".parse::<Reg>().is_err());
    }
}
