//! Lexer for MiniC.

use crate::ast::Pos;
use std::error::Error;
use std::fmt;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    // Literals / identifiers.
    Int(i64),
    Ident(String),
    // Keywords.
    Fn,
    Let,
    If,
    Else,
    While,
    Return,
    Global,
    Out,
    Assert,
    // Punctuation.
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    // Operators.
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Bang,
    Shl,
    Shr,
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    AmpAmp,
    PipePipe,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "integer `{v}`"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Fn => write!(f, "`fn`"),
            Tok::Let => write!(f, "`let`"),
            Tok::If => write!(f, "`if`"),
            Tok::Else => write!(f, "`else`"),
            Tok::While => write!(f, "`while`"),
            Tok::Return => write!(f, "`return`"),
            Tok::Global => write!(f, "`global`"),
            Tok::Out => write!(f, "`out`"),
            Tok::Assert => write!(f, "`assert`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Assign => write!(f, "`=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Percent => write!(f, "`%`"),
            Tok::Amp => write!(f, "`&`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Caret => write!(f, "`^`"),
            Tok::Tilde => write!(f, "`~`"),
            Tok::Bang => write!(f, "`!`"),
            Tok::Shl => write!(f, "`<<`"),
            Tok::Shr => write!(f, "`>>`"),
            Tok::EqEq => write!(f, "`==`"),
            Tok::NotEq => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::AmpAmp => write!(f, "`&&`"),
            Tok::PipePipe => write!(f, "`||`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl Error for LexError {}

/// Tokenizes MiniC source text.
///
/// Supports `//` line comments, decimal and `0x` hexadecimal integer
/// literals, and the operator set of the language. Always ends with a
/// [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] for unknown characters and malformed literals.
///
/// # Examples
///
/// ```
/// use cfed_lang::lexer::{lex, Tok};
/// let toks = lex("let x = 0x10; // comment").unwrap();
/// assert_eq!(toks[0].tok, Tok::Let);
/// assert_eq!(toks[2].tok, Tok::Assign);
/// assert_eq!(toks[3].tok, Tok::Int(16));
/// assert_eq!(toks.last().unwrap().tok, Tok::Eof);
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let hex = c == b'0' && bytes.get(i + 1).is_some_and(|b| *b == b'x' || *b == b'X');
                if hex {
                    bump!();
                    bump!();
                    let hstart = i;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        bump!();
                    }
                    if i == hstart {
                        return Err(LexError { message: "empty hex literal".into(), pos });
                    }
                    let text = &src[hstart..i];
                    let value = u64::from_str_radix(text, 16).map_err(|_| LexError {
                        message: format!("hex literal `{text}` out of range"),
                        pos,
                    })?;
                    out.push(Token { tok: Tok::Int(value as i64), pos });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                    let text = &src[start..i];
                    let value: i64 = text.parse().map_err(|_| LexError {
                        message: format!("integer literal `{text}` out of range"),
                        pos,
                    })?;
                    out.push(Token { tok: Tok::Int(value), pos });
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let word = &src[start..i];
                let tok = match word {
                    "fn" => Tok::Fn,
                    "let" => Tok::Let,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "global" => Tok::Global,
                    "out" => Tok::Out,
                    "assert" => Tok::Assert,
                    _ => Tok::Ident(word.to_string()),
                };
                out.push(Token { tok, pos });
            }
            _ => {
                // Multi-character operators first (src.get avoids slicing
                // through a multi-byte character).
                let two = src.get(i..i + 2).unwrap_or("");
                let tok2 = match two {
                    "<<" => Some(Tok::Shl),
                    ">>" => Some(Tok::Shr),
                    "==" => Some(Tok::EqEq),
                    "!=" => Some(Tok::NotEq),
                    "<=" => Some(Tok::Le),
                    ">=" => Some(Tok::Ge),
                    "&&" => Some(Tok::AmpAmp),
                    "||" => Some(Tok::PipePipe),
                    _ => None,
                };
                if let Some(tok) = tok2 {
                    bump!();
                    bump!();
                    out.push(Token { tok, pos });
                    continue;
                }
                let tok1 = match c {
                    b'(' => Tok::LParen,
                    b')' => Tok::RParen,
                    b'{' => Tok::LBrace,
                    b'}' => Tok::RBrace,
                    b'[' => Tok::LBracket,
                    b']' => Tok::RBracket,
                    b',' => Tok::Comma,
                    b';' => Tok::Semi,
                    b'=' => Tok::Assign,
                    b'+' => Tok::Plus,
                    b'-' => Tok::Minus,
                    b'*' => Tok::Star,
                    b'/' => Tok::Slash,
                    b'%' => Tok::Percent,
                    b'&' => Tok::Amp,
                    b'|' => Tok::Pipe,
                    b'^' => Tok::Caret,
                    b'~' => Tok::Tilde,
                    b'!' => Tok::Bang,
                    b'<' => Tok::Lt,
                    b'>' => Tok::Gt,
                    _ => {
                        let ch = src[i..].chars().next().unwrap_or('\u{FFFD}');
                        return Err(LexError {
                            message: format!("unexpected character `{ch}`"),
                            pos,
                        });
                    }
                };
                bump!();
                out.push(Token { tok: tok1, pos });
            }
        }
    }
    out.push(Token { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fn foo let iffy"),
            vec![Tok::Fn, Tok::Ident("foo".into()), Tok::Let, Tok::Ident("iffy".into()), Tok::Eof]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("0 42 0xFF"), vec![Tok::Int(0), Tok::Int(42), Tok::Int(255), Tok::Eof]);
    }

    #[test]
    fn operators_longest_match() {
        assert_eq!(
            kinds("< << <= = == & &&"),
            vec![
                Tok::Lt,
                Tok::Shl,
                Tok::Le,
                Tok::Assign,
                Tok::EqEq,
                Tok::Amp,
                Tok::AmpAmp,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(kinds("1 // two three\n4"), vec![Tok::Int(1), Tok::Int(4), Tok::Eof]);
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_character_reported() {
        let err = lex("let $x").unwrap_err();
        assert!(err.message.contains('$'));
        assert_eq!(err.pos.col, 5);
    }

    #[test]
    fn empty_hex_reported() {
        assert!(lex("0x").is_err());
    }

    #[test]
    fn huge_decimal_reported() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
