//! # cfed-lang — the MiniC language
//!
//! A small imperative language (lexer → parser → semantic analysis → VISA
//! code generator) used to author the SPEC2000-analog guest workloads of the
//! CGO'06 control-flow error detection reproduction. MiniC programs compile
//! to `cfed-asm` [`Image`]s that run on the `cfed-sim` machine, either
//! natively or under the `cfed-dbt` dynamic binary translator.
//!
//! The language is 64-bit-integer only: `global` scalars and arrays,
//! functions with call-by-value parameters, `let` locals, `while`/`if`
//! control flow, short-circuit `&&`/`||`, C-like operator precedence,
//! `out(..)` for observable output (the silent-data-corruption oracle) and
//! `assert(..)` for guest self-checks. `/` and `%` are unsigned; ordered
//! comparisons are signed.
//!
//! ## Example
//!
//! ```
//! use cfed_lang::compile;
//!
//! let image = compile(
//!     r#"
//!     fn gcd(a, b) {
//!         while (b != 0) { let t = b; b = a % b; a = t; }
//!         return a;
//!     }
//!     fn main() { out(gcd(48, 36)); }
//!     "#,
//! )?;
//! assert!(image.len() > 0);
//! # Ok::<(), cfed_lang::CompileError>(())
//! ```

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod opt;
pub mod parser;
pub mod pretty;
pub mod sema;

pub use ast::Program;
pub use codegen::CodegenError;
pub use opt::optimize;
pub use parser::{parse, ParseError};
pub use sema::{check, SemaError, SemaInfo};

use cfed_asm::Image;
use std::error::Error;
use std::fmt;

/// Any error from the MiniC pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Lexical or syntax error.
    Parse(ParseError),
    /// Name-resolution / arity error.
    Sema(SemaError),
    /// Code generation or layout error.
    Codegen(CodegenError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => e.fmt(f),
            CompileError::Sema(e) => e.fmt(f),
            CompileError::Codegen(e) => e.fmt(f),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Parse(e) => Some(e),
            CompileError::Sema(e) => Some(e),
            CompileError::Codegen(e) => Some(e),
        }
    }
}

impl From<ParseError> for CompileError {
    fn from(e: ParseError) -> CompileError {
        CompileError::Parse(e)
    }
}

impl From<SemaError> for CompileError {
    fn from(e: SemaError) -> CompileError {
        CompileError::Sema(e)
    }
}

impl From<CodegenError> for CompileError {
    fn from(e: CodegenError) -> CompileError {
        CompileError::Codegen(e)
    }
}

/// Compiles MiniC source to a linked VISA image.
///
/// # Errors
///
/// Returns the first lexical, syntactic, semantic, or layout error.
pub fn compile(src: &str) -> Result<Image, CompileError> {
    let prog = parser::parse(src)?;
    let info = sema::check(&prog)?;
    Ok(codegen::generate(&prog, &info)?)
}

/// Compiles with the [`opt`] pass (constant folding, identities, dead-branch
/// elimination) applied between semantic analysis and code generation.
///
/// # Errors
///
/// Same conditions as [`compile`].
pub fn compile_optimized(src: &str) -> Result<Image, CompileError> {
    let prog = parser::parse(src)?;
    sema::check(&prog)?;
    let prog = opt::optimize(&prog);
    // Re-run sema on the optimized tree: slot assignment may shrink when
    // dead branches disappear.
    let info = sema::check(&prog)?;
    Ok(codegen::generate(&prog, &info)?)
}
