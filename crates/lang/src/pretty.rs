//! Pretty-printer for MiniC ASTs.
//!
//! Produces canonical source text that re-parses to the same AST (round-trip
//! property: `parse(pretty(ast)) == ast` up to source positions). Used for
//! diagnostics, for emitting the generated workload sources, and as a
//! parser test oracle.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program as canonical MiniC source.
///
/// # Examples
///
/// ```
/// use cfed_lang::{parse, pretty::pretty};
///
/// let prog = parse("fn main(){out(1+2*3);}")?;
/// let text = pretty(&prog);
/// assert!(text.contains("out(1 + 2 * 3);"));
/// // Round trip: the canonical text parses back to the same AST.
/// # Ok::<(), cfed_lang::ParseError>(())
/// ```
pub fn pretty(prog: &Program) -> String {
    let mut out = String::new();
    for g in &prog.globals {
        if g.is_array {
            if g.init.is_empty() {
                let _ = writeln!(out, "global {}[{}];", g.name, g.len);
            } else {
                let vals: Vec<String> = g.init.iter().map(i64::to_string).collect();
                let _ = writeln!(out, "global {}[{}] = [{}];", g.name, g.len, vals.join(", "));
            }
        } else if let Some(v) = g.init.first() {
            let _ = writeln!(out, "global {} = {};", g.name, v);
        } else {
            let _ = writeln!(out, "global {};", g.name);
        }
    }
    for f in &prog.functions {
        let _ = writeln!(out, "fn {}({}) {{", f.name, f.params.join(", "));
        block(&mut out, &f.body, 1);
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn block(out: &mut String, b: &Block, depth: usize) {
    for s in &b.stmts {
        stmt(out, s, depth);
    }
}

fn stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match s {
        Stmt::Let { name, value, .. } => {
            let _ = writeln!(out, "let {name} = {};", expr_str(value, 0));
        }
        Stmt::Assign { name, value, .. } => {
            let _ = writeln!(out, "{name} = {};", expr_str(value, 0));
        }
        Stmt::Store { name, index, value, .. } => {
            let _ = writeln!(out, "{name}[{}] = {};", expr_str(index, 0), expr_str(value, 0));
        }
        Stmt::If { cond, then_blk, else_blk, .. } => {
            let _ = writeln!(out, "if ({}) {{", expr_str(cond, 0));
            block(out, then_blk, depth + 1);
            indent(out, depth);
            match else_blk {
                Some(e) => {
                    let _ = writeln!(out, "}} else {{");
                    block(out, e, depth + 1);
                    indent(out, depth);
                    let _ = writeln!(out, "}}");
                }
                None => {
                    let _ = writeln!(out, "}}");
                }
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", expr_str(cond, 0));
            block(out, body, depth + 1);
            indent(out, depth);
            let _ = writeln!(out, "}}");
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", expr_str(v, 0));
            }
            None => {
                let _ = writeln!(out, "return;");
            }
        },
        Stmt::Out { value, .. } => {
            let _ = writeln!(out, "out({});", expr_str(value, 0));
        }
        Stmt::Assert { value, .. } => {
            let _ = writeln!(out, "assert({});", expr_str(value, 0));
        }
        Stmt::Expr { value, .. } => {
            let _ = writeln!(out, "{};", expr_str(value, 0));
        }
    }
}

/// Precedence of a binary operator (mirrors the parser's table).
fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::LogOr => 1,
        BinOp::LogAnd => 2,
        BinOp::Or => 3,
        BinOp::Xor => 4,
        BinOp::And => 5,
        BinOp::Eq | BinOp::Ne => 6,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 7,
        BinOp::Shl | BinOp::Shr => 8,
        BinOp::Add | BinOp::Sub => 9,
        BinOp::Mul | BinOp::Div | BinOp::Rem => 10,
    }
}

fn op_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::LogAnd => "&&",
        BinOp::LogOr => "||",
    }
}

/// Renders an expression, parenthesizing only where the parent's precedence
/// requires it (left-associative grammar: right children at equal precedence
/// need parens).
fn expr_str(e: &Expr, parent_prec: u8) -> String {
    match e {
        Expr::Int { value, .. } => {
            if *value < 0 {
                // A negative literal needs parens in contexts like `a - -1`;
                // emit as a parenthesized unary for unambiguous re-parsing.
                format!("(0 - {})", value.unsigned_abs())
            } else {
                value.to_string()
            }
        }
        Expr::Var { name, .. } => name.clone(),
        Expr::Index { name, index, .. } => format!("{name}[{}]", expr_str(index, 0)),
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(|a| expr_str(a, 0)).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Unary { op, expr, .. } => {
            let inner = expr_str(expr, 11);
            let o = match op {
                UnOp::Neg => "-",
                UnOp::Not => "!",
                UnOp::BitNot => "~",
            };
            format!("{o}{inner}")
        }
        Expr::Binary { op, lhs, rhs, .. } => {
            let p = prec(*op);
            let l = expr_str(lhs, p);
            let r = expr_str(rhs, p + 1); // left associative
            let text = format!("{l} {} {r}", op_str(*op));
            if p < parent_prec {
                format!("({text})")
            } else {
                text
            }
        }
    }
}

/// Structural AST equality ignoring source positions — the round-trip
/// oracle (`Program` derives `PartialEq`, but positions differ between the
/// original and the re-parsed canonical text).
pub fn ast_eq(a: &Program, b: &Program) -> bool {
    fn expr_eq(a: &Expr, b: &Expr) -> bool {
        match (a, b) {
            (Expr::Int { value: x, .. }, Expr::Int { value: y, .. }) => x == y,
            (Expr::Var { name: x, .. }, Expr::Var { name: y, .. }) => x == y,
            (Expr::Index { name: x, index: i, .. }, Expr::Index { name: y, index: j, .. }) => {
                x == y && expr_eq(i, j)
            }
            (Expr::Call { name: x, args: xs, .. }, Expr::Call { name: y, args: ys, .. }) => {
                x == y && xs.len() == ys.len() && xs.iter().zip(ys).all(|(p, q)| expr_eq(p, q))
            }
            (
                Expr::Binary { op: o1, lhs: l1, rhs: r1, .. },
                Expr::Binary { op: o2, lhs: l2, rhs: r2, .. },
            ) => o1 == o2 && expr_eq(l1, l2) && expr_eq(r1, r2),
            (Expr::Unary { op: o1, expr: e1, .. }, Expr::Unary { op: o2, expr: e2, .. }) => {
                o1 == o2 && expr_eq(e1, e2)
            }
            // `-literal` parses as a negative literal or a unary neg
            // depending on context; treat them as equal.
            (Expr::Unary { op: UnOp::Neg, expr, .. }, Expr::Int { value, .. })
            | (Expr::Int { value, .. }, Expr::Unary { op: UnOp::Neg, expr, .. }) => {
                matches!(**expr, Expr::Int { value: v, .. } if v == value.wrapping_neg())
            }
            // The canonical form prints negative literals as `(0 - n)`.
            (Expr::Int { value, .. }, Expr::Binary { op: BinOp::Sub, lhs, rhs, .. })
            | (Expr::Binary { op: BinOp::Sub, lhs, rhs, .. }, Expr::Int { value, .. })
                if *value < 0 =>
            {
                matches!(**lhs, Expr::Int { value: 0, .. })
                    && matches!(**rhs, Expr::Int { value: v, .. } if v == value.wrapping_neg())
            }
            _ => false,
        }
    }
    fn stmt_eq(a: &Stmt, b: &Stmt) -> bool {
        match (a, b) {
            (Stmt::Let { name: x, value: v, .. }, Stmt::Let { name: y, value: w, .. })
            | (Stmt::Assign { name: x, value: v, .. }, Stmt::Assign { name: y, value: w, .. }) => {
                x == y && expr_eq(v, w)
            }
            (
                Stmt::Store { name: x, index: i, value: v, .. },
                Stmt::Store { name: y, index: j, value: w, .. },
            ) => x == y && expr_eq(i, j) && expr_eq(v, w),
            (
                Stmt::If { cond: c1, then_blk: t1, else_blk: e1, .. },
                Stmt::If { cond: c2, then_blk: t2, else_blk: e2, .. },
            ) => {
                expr_eq(c1, c2)
                    && block_eq(t1, t2)
                    && match (e1, e2) {
                        (Some(a), Some(b)) => block_eq(a, b),
                        (None, None) => true,
                        _ => false,
                    }
            }
            (Stmt::While { cond: c1, body: b1, .. }, Stmt::While { cond: c2, body: b2, .. }) => {
                expr_eq(c1, c2) && block_eq(b1, b2)
            }
            (Stmt::Return { value: v1, .. }, Stmt::Return { value: v2, .. }) => match (v1, v2) {
                (Some(a), Some(b)) => expr_eq(a, b),
                (None, None) => true,
                // `return;` and `return 0;` are distinct statements.
                _ => false,
            },
            (Stmt::Out { value: a, .. }, Stmt::Out { value: b, .. })
            | (Stmt::Assert { value: a, .. }, Stmt::Assert { value: b, .. })
            | (Stmt::Expr { value: a, .. }, Stmt::Expr { value: b, .. }) => expr_eq(a, b),
            _ => false,
        }
    }
    fn block_eq(a: &Block, b: &Block) -> bool {
        a.stmts.len() == b.stmts.len() && a.stmts.iter().zip(&b.stmts).all(|(p, q)| stmt_eq(p, q))
    }
    a.globals.len() == b.globals.len()
        && a.globals.iter().zip(&b.globals).all(|(g, h)| {
            g.name == h.name && g.len == h.len && g.init == h.init && g.is_array == h.is_array
        })
        && a.functions.len() == b.functions.len()
        && a.functions
            .iter()
            .zip(&b.functions)
            .all(|(f, g)| f.name == g.name && f.params == g.params && block_eq(&f.body, &g.body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn roundtrip(src: &str) {
        let prog = parse(src).unwrap_or_else(|e| panic!("original parse: {e}"));
        let text = pretty(&prog);
        let back = parse(&text).unwrap_or_else(|e| panic!("canonical parse: {e}\n{text}"));
        assert!(ast_eq(&prog, &back), "round trip changed the AST:\n{text}");
    }

    #[test]
    fn roundtrip_expressions() {
        roundtrip("fn main() { out(1 + 2 * 3); out((1 + 2) * 3); }");
        roundtrip("fn main() { out(10 - 3 - 2); out(10 - (3 - 2)); }");
        roundtrip("fn main() { out(1 << 2 >> 3); out(1 & 2 | 3 ^ 4); }");
        roundtrip("fn main() { out(-5); out(!0); out(~7); out(--3); }");
        roundtrip("fn main() { out(1 < 2 && 3 > 2 || 0); }");
        roundtrip("fn main() { out(100 / 7 % 3); }");
    }

    #[test]
    fn roundtrip_statements() {
        roundtrip(
            r#"
            global g = -4;
            global a[3] = [1, 2, 3];
            global b[8];
            fn f(x, y) {
                let t = x;
                if (t < y) { t = y; } else if (t == y) { t = 0; }
                while (t > 0) { a[t % 3] = t; t = t - 1; }
                assert(t == 0);
                return t;
            }
            fn main() { f(1, 2); out(g); return; }
            "#,
        );
    }

    #[test]
    fn roundtrip_workloads() {
        // Every shipped workload source must survive a round trip.
        for w in &cfed_workloads_compat::ALL_SOURCES() {
            roundtrip(w);
        }
        // Tiny local shim: avoid a dependency cycle by sampling
        // representative sources here instead of depending on
        // cfed-workloads (which depends on this crate).
        mod cfed_workloads_compat {
            #[allow(non_snake_case)]
            pub fn ALL_SOURCES() -> Vec<&'static str> {
                vec![
                    "global seed = 1; fn rand() { seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF; return seed; } fn main() { out(rand()); }",
                    "global h[16]; fn main() { let i = 0; while (i < 16) { h[i] = i * i; i = i + 1; } out(h[15]); }",
                ]
            }
        }
    }

    #[test]
    fn pretty_is_stable() {
        // pretty(parse(pretty(p))) == pretty(p): canonical form is a fixed
        // point.
        let src = "fn main() { let x = 1 + 2 * (3 - 4); if (x) { out(x); } }";
        let p1 = parse(src).unwrap();
        let t1 = pretty(&p1);
        let p2 = parse(&t1).unwrap();
        let t2 = pretty(&p2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn negative_literals_reparse() {
        roundtrip("global g = -9223372036854775807; fn main() { out(g - -1); }");
    }
}
