//! Semantic analysis: name resolution, arity checking and slot assignment.

use crate::ast::*;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A semantic error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SemaError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub pos: Pos,
}

impl fmt::Display for SemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semantic error at {}: {}", self.pos, self.message)
    }
}

impl Error for SemaError {}

/// Where a name resolves inside a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// The `i`-th parameter.
    Param(usize),
    /// The `i`-th local (declaration order).
    Local(usize),
}

/// Resolution results for one function.
#[derive(Debug, Clone, Default)]
pub struct FnInfo {
    /// Number of parameters.
    pub arity: usize,
    /// Number of `let` locals.
    pub locals: usize,
    /// Name → slot map.
    pub slots: HashMap<String, Slot>,
}

/// Resolution results for a whole program.
#[derive(Debug, Clone, Default)]
pub struct SemaInfo {
    /// Per-function resolution info.
    pub functions: HashMap<String, FnInfo>,
    /// Global name → (element count, is_array).
    pub globals: HashMap<String, (u64, bool)>,
}

/// Checks a parsed program and computes slot assignments.
///
/// Enforced rules:
/// * globals and functions have unique names; globals and functions do not
///   shadow one another;
/// * `main` exists and takes no parameters;
/// * every variable reference resolves to a parameter, a `let` local
///   declared earlier in the function, or a global scalar;
/// * indexing applies only to global arrays; assignment targets must be
///   locals/params or global scalars; stores target global arrays;
/// * calls reference defined functions with matching arity;
/// * `let` does not redeclare a name within the same function.
///
/// # Errors
///
/// The first violated rule is reported with its source position.
pub fn check(prog: &Program) -> Result<SemaInfo, SemaError> {
    let mut info = SemaInfo::default();

    for g in &prog.globals {
        if info.globals.insert(g.name.clone(), (g.len, g.is_array)).is_some() {
            return Err(SemaError {
                message: format!("duplicate global `{}`", g.name),
                pos: g.pos,
            });
        }
        if g.init.len() as u64 > g.len {
            return Err(SemaError {
                message: format!("too many initializers for `{}`", g.name),
                pos: g.pos,
            });
        }
    }

    // Collect function signatures first so calls can be forward references.
    for f in &prog.functions {
        if info.functions.contains_key(&f.name) || info.globals.contains_key(&f.name) {
            return Err(SemaError {
                message: format!("duplicate definition of `{}`", f.name),
                pos: f.pos,
            });
        }
        let mut fi = FnInfo { arity: f.params.len(), ..FnInfo::default() };
        for (i, p) in f.params.iter().enumerate() {
            if fi.slots.insert(p.clone(), Slot::Param(i)).is_some() {
                return Err(SemaError {
                    message: format!("duplicate parameter `{p}` in `{}`", f.name),
                    pos: f.pos,
                });
            }
        }
        info.functions.insert(f.name.clone(), fi);
    }

    match info.functions.get("main") {
        None => {
            return Err(SemaError {
                message: "program must define `fn main()`".into(),
                pos: Pos::default(),
            })
        }
        Some(fi) if fi.arity != 0 => {
            let pos = prog.functions.iter().find(|f| f.name == "main").map(|f| f.pos);
            return Err(SemaError {
                message: "`main` must take no parameters".into(),
                pos: pos.unwrap_or_default(),
            });
        }
        Some(_) => {}
    }

    // Resolve bodies.
    for f in &prog.functions {
        let mut ck = Checker {
            info: &info,
            fname: &f.name,
            slots: info.functions[&f.name].slots.clone(),
            locals: 0,
        };
        ck.block(&f.body)?;
        let (locals, slots) = (ck.locals, ck.slots);
        let fi = info.functions.get_mut(&f.name).expect("collected above");
        fi.locals = locals;
        fi.slots = slots;
    }

    Ok(info)
}

struct Checker<'a> {
    info: &'a SemaInfo,
    fname: &'a str,
    slots: HashMap<String, Slot>,
    locals: usize,
}

impl Checker<'_> {
    fn err(&self, message: String, pos: Pos) -> SemaError {
        SemaError { message, pos }
    }

    fn block(&mut self, b: &Block) -> Result<(), SemaError> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), SemaError> {
        match s {
            Stmt::Let { name, value, pos } => {
                self.expr(value)?;
                if self.slots.contains_key(name) {
                    return Err(
                        self.err(format!("`{name}` is already declared in `{}`", self.fname), *pos)
                    );
                }
                if self.info.globals.contains_key(name) {
                    return Err(
                        self.err(format!("`{name}` shadows a global of the same name"), *pos)
                    );
                }
                self.slots.insert(name.clone(), Slot::Local(self.locals));
                self.locals += 1;
                Ok(())
            }
            Stmt::Assign { name, value, pos } => {
                self.expr(value)?;
                if self.slots.contains_key(name) {
                    return Ok(());
                }
                match self.info.globals.get(name) {
                    Some((_, false)) => Ok(()),
                    Some((_, true)) => {
                        Err(self.err(format!("global array `{name}` needs an index"), *pos))
                    }
                    None => Err(self.err(format!("assignment to undeclared `{name}`"), *pos)),
                }
            }
            Stmt::Store { name, index, value, pos } => {
                self.expr(index)?;
                self.expr(value)?;
                match self.info.globals.get(name) {
                    Some((_, true)) => Ok(()),
                    Some((_, false)) => {
                        Err(self.err(format!("`{name}` is a scalar, not an array"), *pos))
                    }
                    None => Err(self.err(format!("store to undeclared array `{name}`"), *pos)),
                }
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                self.expr(cond)?;
                self.block(then_blk)?;
                if let Some(e) = else_blk {
                    self.block(e)?;
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                self.expr(cond)?;
                self.block(body)
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    self.expr(v)?;
                }
                Ok(())
            }
            Stmt::Out { value, .. } | Stmt::Assert { value, .. } | Stmt::Expr { value, .. } => {
                self.expr(value)
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<(), SemaError> {
        match e {
            Expr::Int { .. } => Ok(()),
            Expr::Var { name, pos } => {
                if self.slots.contains_key(name) {
                    return Ok(());
                }
                match self.info.globals.get(name) {
                    Some((_, false)) => Ok(()),
                    Some((_, true)) => {
                        Err(self.err(format!("global array `{name}` needs an index"), *pos))
                    }
                    None => Err(self.err(format!("use of undeclared `{name}`"), *pos)),
                }
            }
            Expr::Index { name, index, pos } => {
                self.expr(index)?;
                match self.info.globals.get(name) {
                    Some((_, true)) => Ok(()),
                    Some((_, false)) => {
                        Err(self.err(format!("`{name}` is a scalar, not an array"), *pos))
                    }
                    None => Err(self.err(format!("use of undeclared array `{name}`"), *pos)),
                }
            }
            Expr::Call { name, args, pos } => {
                for a in args {
                    self.expr(a)?;
                }
                match self.info.functions.get(name) {
                    Some(fi) if fi.arity == args.len() => Ok(()),
                    Some(fi) => Err(self.err(
                        format!("`{name}` expects {} argument(s), got {}", fi.arity, args.len()),
                        *pos,
                    )),
                    None => Err(self.err(format!("call to undefined function `{name}`"), *pos)),
                }
            }
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs)?;
                self.expr(rhs)
            }
            Expr::Unary { expr, .. } => self.expr(expr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn sema(src: &str) -> Result<SemaInfo, SemaError> {
        check(&parse(src).unwrap())
    }

    #[test]
    fn valid_program_resolves() {
        let info = sema(
            "global g; global a[3];
             fn add(x, y) { let s = x + y; return s; }
             fn main() { g = add(1, 2); a[0] = g; out(a[0]); }",
        )
        .unwrap();
        let add = &info.functions["add"];
        assert_eq!(add.arity, 2);
        assert_eq!(add.locals, 1);
        assert_eq!(add.slots["x"], Slot::Param(0));
        assert_eq!(add.slots["s"], Slot::Local(0));
        assert_eq!(info.globals["a"], (3, true));
    }

    #[test]
    fn missing_main_rejected() {
        let e = sema("fn helper() { }").unwrap_err();
        assert!(e.message.contains("main"));
    }

    #[test]
    fn main_with_params_rejected() {
        assert!(sema("fn main(x) { }").is_err());
    }

    #[test]
    fn undeclared_variable_rejected() {
        let e = sema("fn main() { out(x); }").unwrap_err();
        assert!(e.message.contains("undeclared"));
    }

    #[test]
    fn use_before_declaration_rejected() {
        assert!(sema("fn main() { out(x); let x = 1; }").is_err());
    }

    #[test]
    fn duplicate_let_rejected() {
        assert!(sema("fn main() { let x = 1; let x = 2; }").is_err());
    }

    #[test]
    fn local_shadowing_global_rejected() {
        assert!(sema("global x; fn main() { let x = 1; }").is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let e = sema("fn f(a) { } fn main() { f(1, 2); }").unwrap_err();
        assert!(e.message.contains("expects 1"));
    }

    #[test]
    fn undefined_function_rejected() {
        assert!(sema("fn main() { nope(); }").is_err());
    }

    #[test]
    fn scalar_indexing_rejected() {
        assert!(sema("global g; fn main() { out(g[0]); }").is_err());
        assert!(sema("global g; fn main() { g[0] = 1; }").is_err());
    }

    #[test]
    fn array_without_index_rejected() {
        assert!(sema("global a[2]; fn main() { out(a); }").is_err());
        assert!(sema("global a[2]; fn main() { a = 2; }").is_err());
    }

    #[test]
    fn duplicate_global_rejected() {
        assert!(sema("global g; global g; fn main() { }").is_err());
    }

    #[test]
    fn duplicate_function_rejected() {
        assert!(sema("fn f() { } fn f() { } fn main() { }").is_err());
    }

    #[test]
    fn function_global_name_clash_rejected() {
        assert!(sema("global f; fn f() { } fn main() { }").is_err());
    }

    #[test]
    fn duplicate_parameter_rejected() {
        assert!(sema("fn f(a, a) { } fn main() { }").is_err());
    }

    #[test]
    fn recursion_allowed() {
        assert!(sema(
            "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
             fn main() { out(fib(10)); }"
        )
        .is_ok());
    }
}
