//! Abstract syntax tree for MiniC.
//!
//! MiniC is a small imperative language over 64-bit integers, designed to
//! generate guest code whose *control-flow structure* matches real programs:
//! nested loops, short-circuit conditions, function calls (direct and through
//! function pointers is not supported — calls are direct; indirect control
//! flow enters via `ret`), and global arrays. Arithmetic is 64-bit; `/` and
//! `%` are unsigned (the VISA `div`), comparisons are signed.

/// Source position (1-based line and column) for diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A complete MiniC program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Global scalar/array declarations.
    pub globals: Vec<Global>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

/// A global declaration: `global g;`, `global g = 7;`,
/// `global a[100];` or `global a[] = [1, 2, 3];`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Name of the global.
    pub name: String,
    /// Number of 64-bit elements (1 for scalars).
    pub len: u64,
    /// Initial values (padded with zeros to `len`).
    pub init: Vec<i64>,
    /// Whether the declaration used array syntax.
    pub is_array: bool,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body block.
    pub body: Block,
    /// Source position of the definition.
    pub pos: Pos,
}

/// A `{ ... }` block of statements.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Block {
    /// The statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let x = expr;` — declares a local.
    Let { name: String, value: Expr, pos: Pos },
    /// `x = expr;` — assigns a local, parameter, or global scalar.
    Assign { name: String, value: Expr, pos: Pos },
    /// `a[idx] = expr;` — stores to a global array.
    Store { name: String, index: Expr, value: Expr, pos: Pos },
    /// `if (cond) { .. } else { .. }`.
    If { cond: Expr, then_blk: Block, else_blk: Option<Block>, pos: Pos },
    /// `while (cond) { .. }`.
    While { cond: Expr, body: Block, pos: Pos },
    /// `return expr?;`
    Return { value: Option<Expr>, pos: Pos },
    /// `out(expr);` — emits a value on the observable output stream.
    Out { value: Expr, pos: Pos },
    /// `assert(expr);` — traps with `GUEST_ASSERT` when the value is zero.
    Assert { value: Expr, pos: Pos },
    /// An expression evaluated for its side effects (typically a call).
    Expr { value: Expr, pos: Pos },
}

/// Binary operators in MiniC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (unsigned)
    Div,
    /// `%` (unsigned)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (logical)
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Lt,
    /// `<=` (signed)
    Le,
    /// `>` (signed)
    Gt,
    /// `>=` (signed)
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

impl BinOp {
    /// Returns `true` for the comparison operators producing 0/1.
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// Returns `true` for the short-circuit logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::LogAnd | BinOp::LogOr)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`!x` is 1 when x == 0).
    Not,
    /// Bitwise complement.
    BitNot,
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int { value: i64, pos: Pos },
    /// Variable reference (local, parameter, or global scalar).
    Var { name: String, pos: Pos },
    /// Global array element read: `a[idx]`.
    Index { name: String, index: Box<Expr>, pos: Pos },
    /// Direct call: `f(a, b)`.
    Call { name: String, args: Vec<Expr>, pos: Pos },
    /// Binary operation.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr>, pos: Pos },
    /// Unary operation.
    Unary { op: UnOp, expr: Box<Expr>, pos: Pos },
}

impl Expr {
    /// The source position of the expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Int { pos, .. }
            | Expr::Var { pos, .. }
            | Expr::Index { pos, .. }
            | Expr::Call { pos, .. }
            | Expr::Binary { pos, .. }
            | Expr::Unary { pos, .. } => *pos,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::LogAnd.is_logical());
        assert!(!BinOp::And.is_logical());
    }

    #[test]
    fn expr_pos_extraction() {
        let p = Pos { line: 3, col: 9 };
        let e = Expr::Int { value: 1, pos: p };
        assert_eq!(e.pos(), p);
        assert_eq!(p.to_string(), "3:9");
    }
}
