//! VISA code generation for MiniC.
//!
//! A simple one-pass, accumulator + stack code generator:
//!
//! * expression results land in `r0`; `r1`/`r2` are scratch; temporaries are
//!   spilled to the stack;
//! * `r6` is the frame pointer; locals live at `[r6 − 8(i+1)]`, argument `j`
//!   of an `n`-ary function at `[r6 + 16 + 8(n−1−j)]` (arguments pushed left
//!   to right by the caller, who also pops them);
//! * loops are emitted inverted (guard test, then body with a bottom exit
//!   test) so the body, its test and the taken back edge share one basic
//!   block, and else-less `if` bodies move out of line behind a mostly
//!   not-taken branch — the block-size and branch-direction profile of real
//!   compiled code, which the paper's error model measures;
//! * registers `r8`–`r14` are never touched, leaving them to the DBT's
//!   signature instrumentation (paper §5.1).

use crate::ast::*;
use crate::sema::{FnInfo, SemaInfo, Slot};
use cfed_asm::{Asm, AsmError, Image};
use cfed_isa::{AluOp, Cond, Reg};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Software trap code for failed `assert` statements (mirrors
/// `cfed_sim::trap_codes::GUEST_ASSERT`; kept literal to avoid a dependency
/// cycle and asserted equal in integration tests).
pub const GUEST_ASSERT_CODE: u32 = 0xC0DE_0002;

const ACC: Reg = Reg::R0;
const SCRATCH: Reg = Reg::R1;
const SCRATCH2: Reg = Reg::R2;
const FP: Reg = Reg::R6;

/// A directly addressable operand: no evaluation needed beyond one load.
#[derive(Debug, Clone, Copy)]
enum Leaf {
    Imm(i32),
    Slot(i32),
    Global(u64),
}

/// The VISA condition code of a MiniC comparison operator.
fn cond_of(op: BinOp) -> Cond {
    match op {
        BinOp::Eq => Cond::E,
        BinOp::Ne => Cond::Ne,
        BinOp::Lt => Cond::L,
        BinOp::Le => Cond::Le,
        BinOp::Gt => Cond::G,
        BinOp::Ge => Cond::Ge,
        other => unreachable!("not a comparison: {other:?}"),
    }
}

/// An error produced during code generation (label bookkeeping or layout
/// overflow surfaced by the assembler).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenError {
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codegen error: {}", self.message)
    }
}

impl Error for CodegenError {}

impl From<AsmError> for CodegenError {
    fn from(e: AsmError) -> CodegenError {
        CodegenError { message: e.to_string() }
    }
}

/// Generates a linked [`Image`] from a checked program.
///
/// The program entry (`__start`) calls `main` and halts; `main`'s return
/// value becomes the exit code.
///
/// # Errors
///
/// Propagates assembler errors (which indicate codegen bugs rather than user
/// errors — sema has already validated the program).
pub fn generate(prog: &Program, info: &SemaInfo) -> Result<Image, CodegenError> {
    let mut asm = Asm::new();

    // Lay out globals in the data section.
    let mut global_addrs = HashMap::new();
    for g in &prog.globals {
        let mut words: Vec<u64> = g.init.iter().map(|v| *v as u64).collect();
        words.resize(g.len as usize, 0);
        let addr = asm.data_u64(&words);
        global_addrs.insert(g.name.clone(), addr);
    }

    // Entry stub.
    asm.label("__start");
    asm.call("fn_main");
    asm.halt();

    for f in &prog.functions {
        let fi = &info.functions[&f.name];
        let mut cg = FnCodegen { asm: &mut asm, fi, global_addrs: &global_addrs, cold: Vec::new() };
        cg.function(f)?;
    }

    Ok(asm.assemble("__start")?)
}

struct FnCodegen<'a> {
    asm: &'a mut Asm,
    fi: &'a FnInfo,
    global_addrs: &'a HashMap<String, u64>,
    /// Deferred out-of-line blocks: (cold label, body, join label).
    cold: Vec<(String, Block, String)>,
}

impl FnCodegen<'_> {
    fn function(&mut self, f: &Function) -> Result<(), CodegenError> {
        self.asm.label(format!("fn_{}", f.name));
        // Prologue: save fp, establish frame, reserve locals (flag-free —
        // instrumentation correctness does not depend on it, but it mirrors
        // real prologue code).
        self.asm.push(FP);
        self.asm.movrr(FP, Reg::SP);
        if self.fi.locals > 0 {
            self.asm.lea(Reg::SP, Reg::SP, -(8 * self.fi.locals as i32));
        }
        self.block(&f.body)?;
        // Implicit `return 0` at the end of the body.
        self.asm.movri(ACC, 0);
        self.epilogue();
        // Out-of-line (statically predicted unlikely) blocks go after the
        // function body, the layout real compilers use for cold paths; the
        // guarding branch in the hot path is then NOT taken in the common
        // case. Cold blocks may defer further blocks of their own.
        while let Some((l_cold, body, l_join)) = self.cold.pop() {
            self.asm.label(l_cold);
            self.block(&body)?;
            self.asm.jmp(l_join);
        }
        Ok(())
    }

    fn epilogue(&mut self) {
        self.asm.movrr(Reg::SP, FP);
        self.asm.pop(FP);
        self.asm.ret();
    }

    fn slot_disp(&self, slot: Slot) -> i32 {
        match slot {
            Slot::Local(i) => -(8 * (i as i32 + 1)),
            Slot::Param(j) => 16 + 8 * (self.fi.arity as i32 - 1 - j as i32),
        }
    }

    fn block(&mut self, b: &Block) -> Result<(), CodegenError> {
        for s in &b.stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn global_addr(&self, name: &str) -> u64 {
        *self.global_addrs.get(name).expect("sema resolved global")
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CodegenError> {
        match s {
            Stmt::Let { name, value, .. } | Stmt::Assign { name, value, .. } => {
                self.expr(value)?;
                if let Some(&slot) = self.fi.slots.get(name) {
                    let disp = self.slot_disp(slot);
                    self.asm.st(FP, ACC, disp);
                } else {
                    let addr = self.global_addr(name);
                    self.asm.mov_addr(SCRATCH2, addr);
                    self.asm.st(SCRATCH2, ACC, 0);
                }
                Ok(())
            }
            Stmt::Store { name, index, value, .. } => {
                self.expr(index)?;
                self.asm.push(ACC);
                self.expr(value)?;
                self.asm.pop(SCRATCH);
                self.asm.alui(AluOp::Shl, SCRATCH, 3);
                self.asm.mov_addr(SCRATCH2, self.global_addr(name));
                self.asm.lea2(SCRATCH2, SCRATCH2, SCRATCH, 0);
                self.asm.st(SCRATCH2, ACC, 0);
                Ok(())
            }
            Stmt::If { cond, then_blk, else_blk, .. } => {
                match else_blk {
                    Some(e) => {
                        // Balanced if/else: both arms inline.
                        let l_else = self.asm.fresh_label("else");
                        let l_end = self.asm.fresh_label("endif");
                        self.branch_on(cond, false, l_else.clone())?;
                        self.block(then_blk)?;
                        self.asm.jmp(l_end.clone());
                        self.asm.label(l_else);
                        self.block(e)?;
                        self.asm.label(l_end);
                    }
                    None => {
                        // Else-less if: statically predicted unlikely; the
                        // then-block moves out of line so the hot path falls
                        // through a not-taken branch (compiler-style cold
                        // layout).
                        let l_cold = self.asm.fresh_label("cold");
                        let l_join = self.asm.fresh_label("join");
                        self.branch_on(cond, true, l_cold.clone())?;
                        self.asm.label(l_join.clone());
                        self.cold.push((l_cold, then_blk.clone(), l_join));
                    }
                }
                Ok(())
            }
            Stmt::While { cond, body, .. } => {
                // Inverted loop (guard + bottom test), the shape real
                // compilers emit: the loop body, its exit test and the taken
                // back edge all live in ONE basic block, giving loops the
                // large own-block footprint behind the paper's category-C
                // observations on fp code.
                let l_body = self.asm.fresh_label("body");
                let l_end = self.asm.fresh_label("endloop");
                self.branch_on(cond, false, l_end.clone())?;
                self.asm.label(l_body.clone());
                self.block(body)?;
                self.branch_on(cond, true, l_body)?;
                self.asm.label(l_end);
                Ok(())
            }
            Stmt::Return { value, .. } => {
                match value {
                    Some(v) => self.expr(v)?,
                    None => self.asm.movri(ACC, 0),
                }
                self.epilogue();
                Ok(())
            }
            Stmt::Out { value, .. } => {
                self.expr(value)?;
                self.asm.out(ACC);
                Ok(())
            }
            Stmt::Assert { value, .. } => {
                let l_ok = self.asm.fresh_label("assert_ok");
                self.branch_on(value, true, l_ok.clone())?;
                self.asm.trap(GUEST_ASSERT_CODE);
                self.asm.label(l_ok);
                Ok(())
            }
            Stmt::Expr { value, .. } => self.expr(value),
        }
    }

    /// Evaluates `e` into `r0`. Clobbers `r1`, `r2` and the flags; balances
    /// the stack.
    fn expr(&mut self, e: &Expr) -> Result<(), CodegenError> {
        match e {
            Expr::Int { value, .. } => {
                if let Ok(imm) = i32::try_from(*value) {
                    self.asm.movri(ACC, imm);
                } else {
                    // Constant pool: 64-bit literals live in the data section.
                    let addr = self.asm.data_u64(&[*value as u64]);
                    self.asm.mov_addr(SCRATCH2, addr);
                    self.asm.ld(ACC, SCRATCH2, 0);
                }
                Ok(())
            }
            Expr::Var { name, .. } => {
                if let Some(&slot) = self.fi.slots.get(name) {
                    let disp = self.slot_disp(slot);
                    self.asm.ld(ACC, FP, disp);
                } else {
                    self.asm.mov_addr(SCRATCH2, self.global_addr(name));
                    self.asm.ld(ACC, SCRATCH2, 0);
                }
                Ok(())
            }
            Expr::Index { name, index, .. } => {
                self.expr(index)?;
                self.asm.alui(AluOp::Shl, ACC, 3);
                self.asm.mov_addr(SCRATCH2, self.global_addr(name));
                self.asm.lea2(SCRATCH2, SCRATCH2, ACC, 0);
                self.asm.ld(ACC, SCRATCH2, 0);
                Ok(())
            }
            Expr::Call { name, args, .. } => {
                for a in args {
                    self.expr(a)?;
                    self.asm.push(ACC);
                }
                self.asm.call(format!("fn_{name}"));
                if !args.is_empty() {
                    self.asm.lea(Reg::SP, Reg::SP, 8 * args.len() as i32);
                }
                Ok(())
            }
            Expr::Unary { op, expr, .. } => {
                self.expr(expr)?;
                match op {
                    UnOp::Neg => self.asm.raw(cfed_isa::Inst::Neg { dst: ACC }),
                    UnOp::BitNot => self.asm.raw(cfed_isa::Inst::Not { dst: ACC }),
                    UnOp::Not => {
                        self.asm.cmpi(ACC, 0);
                        self.asm.movri(ACC, 0);
                        self.asm.movri(SCRATCH2, 1);
                        self.asm.cmov(Cond::E, ACC, SCRATCH2);
                    }
                }
                Ok(())
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_logical() {
                    return self.logical(*op, lhs, rhs);
                }
                // Leaf right operands (literals, variables) skip the stack
                // spill: evaluate the left side into the accumulator and
                // combine directly — the dense `op reg, reg/imm` shapes a
                // real compiler emits.
                if let Some(leaf) = self.leaf(rhs) {
                    self.expr(lhs)?;
                    self.binary_with_leaf(*op, leaf);
                    return Ok(());
                }
                self.expr(lhs)?;
                self.asm.push(ACC);
                self.expr(rhs)?;
                self.asm.pop(SCRATCH); // lhs in r1, rhs in r0
                match op {
                    BinOp::Add => self.two_op(AluOp::Add),
                    BinOp::Sub => self.two_op(AluOp::Sub),
                    BinOp::Mul => self.two_op(AluOp::Mul),
                    BinOp::Div => self.two_op(AluOp::Div),
                    BinOp::And => self.two_op(AluOp::And),
                    BinOp::Or => self.two_op(AluOp::Or),
                    BinOp::Xor => self.two_op(AluOp::Xor),
                    BinOp::Shl => self.two_op(AluOp::Shl),
                    BinOp::Shr => self.two_op(AluOp::Shr),
                    BinOp::Rem => {
                        // r1 % r0 = r1 - (r1 / r0) * r0
                        self.asm.movrr(SCRATCH2, SCRATCH);
                        self.asm.alu(AluOp::Div, SCRATCH2, ACC);
                        self.asm.alu(AluOp::Mul, SCRATCH2, ACC);
                        self.asm.alu(AluOp::Sub, SCRATCH, SCRATCH2);
                        self.asm.movrr(ACC, SCRATCH);
                    }
                    BinOp::Eq => self.compare(Cond::E),
                    BinOp::Ne => self.compare(Cond::Ne),
                    BinOp::Lt => self.compare(Cond::L),
                    BinOp::Le => self.compare(Cond::Le),
                    BinOp::Gt => self.compare(Cond::G),
                    BinOp::Ge => self.compare(Cond::Ge),
                    BinOp::LogAnd | BinOp::LogOr => unreachable!("handled above"),
                }
                Ok(())
            }
        }
    }

    /// Applies `r1 = r1 op r0; r0 = r1`.
    fn two_op(&mut self, op: AluOp) {
        self.asm.alu(op, SCRATCH, ACC);
        self.asm.movrr(ACC, SCRATCH);
    }

    /// Classifies an expression as a directly addressable operand.
    fn leaf(&self, e: &Expr) -> Option<Leaf> {
        match e {
            Expr::Int { value, .. } => i32::try_from(*value).ok().map(Leaf::Imm),
            Expr::Var { name, .. } => match self.fi.slots.get(name) {
                Some(&slot) => Some(Leaf::Slot(self.slot_disp(slot))),
                None => Some(Leaf::Global(self.global_addr(name))),
            },
            _ => None,
        }
    }

    /// Loads a leaf operand into `dst` (may clobber `r2` for globals; never
    /// clobbers the flags or `r0` unless `dst` is `r0`).
    fn load_leaf(&mut self, dst: Reg, leaf: Leaf) {
        match leaf {
            Leaf::Imm(v) => self.asm.movri(dst, v),
            Leaf::Slot(disp) => self.asm.ld(dst, FP, disp),
            Leaf::Global(addr) => {
                self.asm.mov_addr(SCRATCH2, addr);
                self.asm.ld(dst, SCRATCH2, 0);
            }
        }
    }

    /// `r0 = r0 op leaf` without touching the stack.
    fn binary_with_leaf(&mut self, op: BinOp, leaf: Leaf) {
        let alu = match op {
            BinOp::Add => Some(AluOp::Add),
            BinOp::Sub => Some(AluOp::Sub),
            BinOp::Mul => Some(AluOp::Mul),
            BinOp::Div => Some(AluOp::Div),
            BinOp::And => Some(AluOp::And),
            BinOp::Or => Some(AluOp::Or),
            BinOp::Xor => Some(AluOp::Xor),
            BinOp::Shl => Some(AluOp::Shl),
            BinOp::Shr => Some(AluOp::Shr),
            _ => None,
        };
        if let Some(alu) = alu {
            match leaf {
                Leaf::Imm(v) => self.asm.alui(alu, ACC, v),
                other => {
                    self.load_leaf(SCRATCH, other);
                    self.asm.alu(alu, ACC, SCRATCH);
                }
            }
            return;
        }
        match op {
            BinOp::Rem => {
                // r0 % leaf = r0 - (r0 / leaf) * leaf
                self.load_leaf(SCRATCH, leaf);
                self.asm.movrr(SCRATCH2, ACC);
                self.asm.alu(AluOp::Div, SCRATCH2, SCRATCH);
                self.asm.alu(AluOp::Mul, SCRATCH2, SCRATCH);
                self.asm.alu(AluOp::Sub, ACC, SCRATCH2);
            }
            cmp if cmp.is_comparison() => {
                self.emit_compare_flags(leaf);
                self.asm.movri(ACC, 0);
                self.asm.movri(SCRATCH2, 1);
                self.asm.cmov(cond_of(cmp), ACC, SCRATCH2);
            }
            other => unreachable!("non-leaf-compatible operator {other:?}"),
        }
    }

    /// Sets the flags for `r0 cmp leaf`.
    fn emit_compare_flags(&mut self, leaf: Leaf) {
        match leaf {
            Leaf::Imm(v) => self.asm.cmpi(ACC, v),
            other => {
                self.load_leaf(SCRATCH, other);
                self.asm.cmp(ACC, SCRATCH);
            }
        }
    }

    /// Emits the condition of `cond_expr` and a branch to `target` taken
    /// when the condition's truth equals `jump_if`. Fuses leaf comparisons
    /// into a `cmp` + `jcc` pair (no 0/1 materialization).
    fn branch_on(
        &mut self,
        cond_expr: &Expr,
        jump_if: bool,
        target: String,
    ) -> Result<(), CodegenError> {
        if let Expr::Binary { op, lhs, rhs, .. } = cond_expr {
            if op.is_comparison() {
                if let Some(leaf) = self.leaf(rhs) {
                    self.expr(lhs)?;
                    self.emit_compare_flags(leaf);
                    let cc = if jump_if { cond_of(*op) } else { cond_of(*op).negated() };
                    self.asm.jcc(cc, target);
                    return Ok(());
                }
            }
        }
        self.expr(cond_expr)?;
        self.asm.cmpi(ACC, 0);
        self.asm.jcc(if jump_if { Cond::Ne } else { Cond::E }, target);
        Ok(())
    }

    /// `r0 = (r1 cc r0) ? 1 : 0`.
    fn compare(&mut self, cc: Cond) {
        self.asm.cmp(SCRATCH, ACC);
        self.asm.movri(ACC, 0);
        self.asm.movri(SCRATCH2, 1);
        self.asm.cmov(cc, ACC, SCRATCH2);
    }

    /// Short-circuit `&&` / `||` producing 0/1.
    fn logical(&mut self, op: BinOp, lhs: &Expr, rhs: &Expr) -> Result<(), CodegenError> {
        let l_short = self.asm.fresh_label("sc");
        let l_end = self.asm.fresh_label("sc_end");
        self.expr(lhs)?;
        self.asm.cmpi(ACC, 0);
        match op {
            BinOp::LogAnd => self.asm.jcc(Cond::E, l_short.clone()),
            BinOp::LogOr => self.asm.jcc(Cond::Ne, l_short.clone()),
            _ => unreachable!(),
        }
        self.expr(rhs)?;
        self.asm.cmpi(ACC, 0);
        self.asm.movri(ACC, 0);
        self.asm.movri(SCRATCH2, 1);
        self.asm.cmov(Cond::Ne, ACC, SCRATCH2);
        self.asm.jmp(l_end.clone());
        self.asm.label(l_short);
        self.asm.movri(ACC, if op == BinOp::LogAnd { 0 } else { 1 });
        self.asm.label(l_end);
        Ok(())
    }
}
