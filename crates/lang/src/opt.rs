//! AST-level optimizations for MiniC: constant folding, algebraic
//! identities, and dead-branch elimination.
//!
//! The pass is *semantics-preserving* with respect to the VISA evaluation
//! rules: wrapping 64-bit arithmetic, unsigned `/` and `%` (division by a
//! constant zero is never folded — the runtime trap must survive), signed
//! comparisons producing 0/1, and short-circuit logicals (a side-effecting
//! right operand is never duplicated or dropped unless the left operand
//! makes it unreachable).
//!
//! Opt-in: [`crate::compile`] does not run it (the experiment figures are
//! recorded against unoptimized code); use [`optimize`] +
//! [`crate::codegen::generate`] or [`crate::compile_optimized`].

use crate::ast::*;

/// Optimizes a program: folds constants, simplifies identities, and removes
/// statically dead branches/loops.
///
/// # Examples
///
/// ```
/// use cfed_lang::{optimize, parse};
///
/// let prog = parse("fn main() { out(2 * 3 + 4); }")?;
/// let opt = optimize(&prog);
/// // 2 * 3 + 4 folded to 10.
/// let text = cfed_lang::pretty::pretty(&opt);
/// assert!(text.contains("out(10);"));
/// # Ok::<(), cfed_lang::ParseError>(())
/// ```
pub fn optimize(prog: &Program) -> Program {
    Program {
        globals: prog.globals.clone(),
        functions: prog
            .functions
            .iter()
            .map(|f| Function {
                name: f.name.clone(),
                params: f.params.clone(),
                body: opt_block(&f.body),
                pos: f.pos,
            })
            .collect(),
    }
}

fn opt_block(b: &Block) -> Block {
    let mut stmts = Vec::with_capacity(b.stmts.len());
    for s in &b.stmts {
        // `None` means the statement is statically dead.
        if let Some(new) = opt_stmt(s) {
            stmts.push(new);
        }
    }
    Block { stmts }
}

fn opt_stmt(s: &Stmt) -> Option<Stmt> {
    Some(match s {
        Stmt::Let { name, value, pos } => {
            Stmt::Let { name: name.clone(), value: opt_expr(value), pos: *pos }
        }
        Stmt::Assign { name, value, pos } => {
            Stmt::Assign { name: name.clone(), value: opt_expr(value), pos: *pos }
        }
        Stmt::Store { name, index, value, pos } => Stmt::Store {
            name: name.clone(),
            index: opt_expr(index),
            value: opt_expr(value),
            pos: *pos,
        },
        Stmt::If { cond, then_blk, else_blk, pos } => {
            let cond = opt_expr(cond);
            if let Some(v) = const_of(&cond) {
                // Statically decided branch: inline the live arm. (Wrap in
                // `if (1)` to keep this a single statement.)
                let live = if v != 0 {
                    Some(opt_block(then_blk))
                } else {
                    else_blk.as_ref().map(opt_block)
                };
                match live {
                    Some(blk) if !blk.stmts.is_empty() => Stmt::If {
                        cond: Expr::Int { value: 1, pos: *pos },
                        then_blk: blk,
                        else_blk: None,
                        pos: *pos,
                    },
                    _ => return None,
                }
            } else {
                Stmt::If {
                    cond,
                    then_blk: opt_block(then_blk),
                    else_blk: else_blk.as_ref().map(opt_block),
                    pos: *pos,
                }
            }
        }
        Stmt::While { cond, body, pos } => {
            let cond = opt_expr(cond);
            if const_of(&cond) == Some(0) {
                return None; // loop never entered
            }
            Stmt::While { cond, body: opt_block(body), pos: *pos }
        }
        Stmt::Return { value, pos } => {
            Stmt::Return { value: value.as_ref().map(opt_expr_ref), pos: *pos }
        }
        Stmt::Out { value, pos } => Stmt::Out { value: opt_expr(value), pos: *pos },
        Stmt::Assert { value, pos } => {
            let value = opt_expr(value);
            if matches!(const_of(&value), Some(v) if v != 0) {
                return None; // statically true assertion
            }
            Stmt::Assert { value, pos: *pos }
        }
        Stmt::Expr { value, pos } => {
            let value = opt_expr(value);
            if is_pure(&value) {
                return None; // pure expression statement: no effect
            }
            Stmt::Expr { value, pos: *pos }
        }
    })
}

fn opt_expr_ref(e: &Expr) -> Expr {
    opt_expr(e)
}

/// The constant value of an already-optimized expression, if it is one.
fn const_of(e: &Expr) -> Option<i64> {
    match e {
        Expr::Int { value, .. } => Some(*value),
        _ => None,
    }
}

/// Whether evaluating `e` has no side effects (calls may write globals or
/// `out`; everything else is pure — loads included, since MiniC has no
/// volatile memory).
fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::Int { .. } | Expr::Var { .. } => true,
        Expr::Index { index, .. } => is_pure(index),
        Expr::Call { .. } => false,
        Expr::Binary { lhs, rhs, .. } => is_pure(lhs) && is_pure(rhs),
        Expr::Unary { expr, .. } => is_pure(expr),
    }
}

fn int(value: i64, pos: Pos) -> Expr {
    Expr::Int { value, pos }
}

fn opt_expr(e: &Expr) -> Expr {
    match e {
        Expr::Int { .. } | Expr::Var { .. } => e.clone(),
        Expr::Index { name, index, pos } => {
            Expr::Index { name: name.clone(), index: Box::new(opt_expr(index)), pos: *pos }
        }
        Expr::Call { name, args, pos } => Expr::Call {
            name: name.clone(),
            args: args.iter().map(opt_expr_ref).collect(),
            pos: *pos,
        },
        Expr::Unary { op, expr, pos } => {
            let inner = opt_expr(expr);
            match (op, const_of(&inner)) {
                (UnOp::Neg, Some(v)) => int(v.wrapping_neg(), *pos),
                (UnOp::Not, Some(v)) => int((v == 0) as i64, *pos),
                (UnOp::BitNot, Some(v)) => int(!v, *pos),
                _ => Expr::Unary { op: *op, expr: Box::new(inner), pos: *pos },
            }
        }
        Expr::Binary { op, lhs, rhs, pos } => {
            let l = opt_expr(lhs);
            let r = opt_expr(rhs);
            fold_binary(*op, l, r, *pos)
        }
    }
}

/// Evaluates `a op b` exactly as the generated code would.
fn eval_const(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        // Unsigned division; never fold the trapping case away.
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            ((a as u64) / (b as u64)) as i64
        }
        BinOp::Rem => {
            if b == 0 {
                return None;
            }
            ((a as u64) % (b as u64)) as i64
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => ((a as u64) << (b as u64 & 63)) as i64,
        BinOp::Shr => ((a as u64) >> (b as u64 & 63)) as i64,
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::LogAnd => ((a != 0) && (b != 0)) as i64,
        BinOp::LogOr => ((a != 0) || (b != 0)) as i64,
    })
}

fn as_bool_expr(e: Expr, pos: Pos) -> Expr {
    // Normalize a truthy expression to 0/1 (`e != 0`).
    Expr::Binary { op: BinOp::Ne, lhs: Box::new(e), rhs: Box::new(int(0, pos)), pos }
}

fn fold_binary(op: BinOp, l: Expr, r: Expr, pos: Pos) -> Expr {
    let lc = const_of(&l);
    let rc = const_of(&r);

    // Full constant folding.
    if let (Some(a), Some(b)) = (lc, rc) {
        if let Some(v) = eval_const(op, a, b) {
            return int(v, pos);
        }
    }

    // Short-circuit logicals with a constant left operand.
    match (op, lc) {
        (BinOp::LogAnd, Some(0)) => return int(0, pos),
        (BinOp::LogAnd, Some(_)) => return as_bool_expr(r, pos),
        (BinOp::LogOr, Some(0)) => return as_bool_expr(r, pos),
        (BinOp::LogOr, Some(_)) => return int(1, pos),
        _ => {}
    }

    // Algebraic identities (only drop an operand when it is pure).
    match (op, rc) {
        (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr, Some(0)) => {
            return l
        }
        (BinOp::Mul | BinOp::Div, Some(1)) => return l,
        (BinOp::Mul, Some(0)) if is_pure(&l) => return int(0, pos),
        (BinOp::And, Some(0)) if is_pure(&l) => return int(0, pos),
        _ => {}
    }
    match (op, lc) {
        (BinOp::Add | BinOp::Or | BinOp::Xor, Some(0)) => return r,
        (BinOp::Mul, Some(1)) => return r,
        (BinOp::Mul, Some(0)) if is_pure(&r) => return int(0, pos),
        _ => {}
    }

    Expr::Binary { op, lhs: Box::new(l), rhs: Box::new(r), pos }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::pretty::pretty;

    fn opt_text(src: &str) -> String {
        pretty(&optimize(&parse(src).unwrap()))
    }

    #[test]
    fn folds_arithmetic() {
        let t = opt_text("fn main() { out(2 * 3 + 4 - 1); out(1 << 10); out((7 > 3) + 1); }");
        assert!(t.contains("out(9);"), "{t}");
        assert!(t.contains("out(1024);"), "{t}");
        assert!(t.contains("out(2);"), "{t}");
    }

    #[test]
    fn preserves_division_by_zero() {
        let t = opt_text("fn main() { out(5 / 0); }");
        assert!(t.contains("5 / 0"), "the trap must survive: {t}");
    }

    #[test]
    fn identities() {
        let t = opt_text("fn f(x) { return x + 0; } fn g(x) { return x * 1; } fn main() { }");
        assert!(t.contains("return x;"), "{t}");
        assert!(!t.contains("x + 0"));
        assert!(!t.contains("x * 1"));
    }

    #[test]
    fn mul_zero_keeps_side_effects() {
        let t = opt_text("fn f() { out(1); return 2; } fn main() { out(f() * 0); }");
        assert!(t.contains("f() * 0"), "calls must not be dropped: {t}");
        let t = opt_text("fn main() { let x = 5; out(x * 0); }");
        assert!(t.contains("out(0);"), "{t}");
    }

    #[test]
    fn dead_branches_removed() {
        let t = opt_text("fn main() { if (0) { out(1); } out(2); if (1) { out(3); } }");
        assert!(!t.contains("out(1)"), "{t}");
        assert!(t.contains("out(3)"), "{t}");
        let t = opt_text("fn main() { if (0) { out(1); } else { out(4); } }");
        assert!(t.contains("out(4)") && !t.contains("out(1)"), "{t}");
    }

    #[test]
    fn dead_loops_removed() {
        let t = opt_text("fn main() { while (0) { out(9); } out(1); }");
        assert!(!t.contains("out(9)"), "{t}");
    }

    #[test]
    fn short_circuit_folding_keeps_semantics() {
        // `0 && f()` drops the call (it would not run anyway).
        let t = opt_text("fn f() { out(7); return 1; } fn main() { out(0 && f()); }");
        assert!(t.contains("out(0);"), "{t}");
        // `1 && f()` must keep the call, normalized to 0/1.
        let t = opt_text("fn f() { out(7); return 5; } fn main() { out(1 && f()); }");
        assert!(t.contains("f() != 0"), "{t}");
        // `1 || f()` drops the call (short-circuited away).
        let t = opt_text("fn f() { out(7); return 1; } fn main() { out(1 || f()); }");
        assert!(t.contains("out(1);"), "{t}");
    }

    #[test]
    fn pure_statement_dropped_impure_kept() {
        let t = opt_text("global a[2]; fn main() { a[0]; a[1] + 1; main2(); } fn main2() { }");
        assert!(!t.contains("a[1] + 1"), "{t}");
        assert!(!t.contains("a[0];"), "{t}");
        assert!(t.contains("main2();"), "{t}");
    }

    #[test]
    fn statically_true_asserts_removed() {
        let t = opt_text("fn main() { assert(2 > 1); assert(1 + 1); out(5); }");
        assert!(!t.contains("assert"), "{t}");
        let t = opt_text("fn f(x) { assert(x > 0); return x; } fn main() { out(f(3)); }");
        assert!(t.contains("assert"), "dynamic asserts stay: {t}");
    }
}
