//! Recursive-descent parser for MiniC with precedence-climbing expressions.

use crate::ast::*;
use crate::lexer::{lex, LexError, Tok, Token};
use std::error::Error;
use std::fmt;

/// A syntax error with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError { message: e.message, pos: e.pos }
    }
}

/// Parses MiniC source text into a [`Program`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
///
/// # Examples
///
/// ```
/// use cfed_lang::parse;
///
/// let prog = parse("fn main() { out(1 + 2 * 3); }")?;
/// assert_eq!(prog.functions.len(), 1);
/// # Ok::<(), cfed_lang::parser::ParseError>(())
/// ```
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    Parser { tokens, idx: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    idx: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.idx]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.idx].clone();
        if self.idx + 1 < self.tokens.len() {
            self.idx += 1;
        }
        t
    }

    fn check(&mut self, tok: &Tok) -> bool {
        if &self.peek().tok == tok {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, ParseError> {
        if self.peek().tok == tok {
            Ok(self.advance())
        } else {
            Err(self.err(format!("expected {}, found {}", tok, self.peek().tok)))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { message, pos: self.pos() }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().tok.clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn int_literal(&mut self) -> Result<i64, ParseError> {
        // Allow a leading minus in constant contexts (global initializers).
        let neg = self.check(&Tok::Minus);
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.advance();
                Ok(if neg { v.wrapping_neg() } else { v })
            }
            other => Err(self.err(format!("expected integer literal, found {other}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        loop {
            match &self.peek().tok {
                Tok::Eof => break,
                Tok::Global => prog.globals.push(self.global()?),
                Tok::Fn => prog.functions.push(self.function()?),
                other => return Err(self.err(format!("expected `fn` or `global`, found {other}"))),
            }
        }
        Ok(prog)
    }

    fn global(&mut self) -> Result<Global, ParseError> {
        let pos = self.pos();
        self.expect(Tok::Global)?;
        let name = self.ident()?;
        let mut is_array = false;
        let mut len = 1u64;
        let mut explicit_len = false;
        if self.check(&Tok::LBracket) {
            is_array = true;
            if !self.check(&Tok::RBracket) {
                let n = self.int_literal()?;
                if n <= 0 {
                    return Err(self.err(format!("array length must be positive, got {n}")));
                }
                len = n as u64;
                explicit_len = true;
                self.expect(Tok::RBracket)?;
            }
        }
        let mut init = Vec::new();
        if self.check(&Tok::Assign) {
            if is_array {
                self.expect(Tok::LBracket)?;
                if !self.check(&Tok::RBracket) {
                    loop {
                        init.push(self.int_literal()?);
                        if !self.check(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                }
                if !explicit_len {
                    len = init.len() as u64;
                } else if init.len() as u64 > len {
                    return Err(
                        self.err(format!("{} initializers for array of length {len}", init.len()))
                    );
                }
            } else {
                init.push(self.int_literal()?);
            }
        } else if is_array && !explicit_len {
            return Err(self.err("array global needs a length or an initializer".into()));
        }
        self.expect(Tok::Semi)?;
        Ok(Global { name, len, init, is_array, pos })
    }

    fn function(&mut self) -> Result<Function, ParseError> {
        let pos = self.pos();
        self.expect(Tok::Fn)?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.check(&Tok::RParen) {
            loop {
                params.push(self.ident()?);
                if !self.check(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        let body = self.block()?;
        Ok(Function { name, params, body, pos })
    }

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.check(&Tok::RBrace) {
            if matches!(self.peek().tok, Tok::Eof) {
                return Err(self.err("unexpected end of input inside block".into()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.pos();
        match self.peek().tok.clone() {
            Tok::Let => {
                self.advance();
                let name = self.ident()?;
                self.expect(Tok::Assign)?;
                let value = self.expr()?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Let { name, value, pos })
            }
            Tok::If => {
                self.advance();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_blk = self.block()?;
                let else_blk = if self.check(&Tok::Else) {
                    if matches!(self.peek().tok, Tok::If) {
                        // `else if` sugar: wrap in a single-statement block.
                        let inner = self.stmt()?;
                        Some(Block { stmts: vec![inner] })
                    } else {
                        Some(self.block()?)
                    }
                } else {
                    None
                };
                Ok(Stmt::If { cond, then_blk, else_blk, pos })
            }
            Tok::While => {
                self.advance();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, pos })
            }
            Tok::Return => {
                self.advance();
                let value =
                    if matches!(self.peek().tok, Tok::Semi) { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return { value, pos })
            }
            Tok::Out => {
                self.advance();
                self.expect(Tok::LParen)?;
                let value = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Out { value, pos })
            }
            Tok::Assert => {
                self.advance();
                self.expect(Tok::LParen)?;
                let value = self.expr()?;
                self.expect(Tok::RParen)?;
                self.expect(Tok::Semi)?;
                Ok(Stmt::Assert { value, pos })
            }
            Tok::Ident(name) => {
                // Could be assignment, array store, or expression statement.
                match self.tokens.get(self.idx + 1).map(|t| &t.tok) {
                    Some(Tok::Assign) => {
                        self.advance();
                        self.advance();
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Assign { name, value, pos })
                    }
                    Some(Tok::LBracket) => {
                        // Look ahead: `a[e] = v;` is a store; `a[e]` in an
                        // expression statement is rare but must still parse —
                        // we try store first by scanning for `]` `=` is
                        // ambiguous, so parse the index then decide.
                        self.advance();
                        self.advance();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        if self.check(&Tok::Assign) {
                            let value = self.expr()?;
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::Store { name, index, value, pos })
                        } else {
                            // Expression statement of an index read.
                            let value = Expr::Index { name, index: Box::new(index), pos };
                            let value = self.continue_expr(value)?;
                            self.expect(Tok::Semi)?;
                            Ok(Stmt::Expr { value, pos })
                        }
                    }
                    _ => {
                        let value = self.expr()?;
                        self.expect(Tok::Semi)?;
                        Ok(Stmt::Expr { value, pos })
                    }
                }
            }
            Tok::LBrace => {
                // Anonymous block: inline as an if(1) for simplicity.
                let blk = self.block()?;
                Ok(Stmt::If {
                    cond: Expr::Int { value: 1, pos },
                    then_blk: blk,
                    else_blk: None,
                    pos,
                })
            }
            other => Err(self.err(format!("expected statement, found {other}"))),
        }
    }

    /// Continue parsing binary operators after an already-parsed primary.
    fn continue_expr(&mut self, lhs: Expr) -> Result<Expr, ParseError> {
        self.binary_rhs(lhs, 0)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.unary()?;
        self.binary_rhs(lhs, 0)
    }

    fn binary_rhs(&mut self, mut lhs: Expr, min_prec: u8) -> Result<Expr, ParseError> {
        loop {
            let (op, prec) = match self.peek().tok {
                Tok::PipePipe => (BinOp::LogOr, 1),
                Tok::AmpAmp => (BinOp::LogAnd, 2),
                Tok::Pipe => (BinOp::Or, 3),
                Tok::Caret => (BinOp::Xor, 4),
                Tok::Amp => (BinOp::And, 5),
                Tok::EqEq => (BinOp::Eq, 6),
                Tok::NotEq => (BinOp::Ne, 6),
                Tok::Lt => (BinOp::Lt, 7),
                Tok::Le => (BinOp::Le, 7),
                Tok::Gt => (BinOp::Gt, 7),
                Tok::Ge => (BinOp::Ge, 7),
                Tok::Shl => (BinOp::Shl, 8),
                Tok::Shr => (BinOp::Shr, 8),
                Tok::Plus => (BinOp::Add, 9),
                Tok::Minus => (BinOp::Sub, 9),
                Tok::Star => (BinOp::Mul, 10),
                Tok::Slash => (BinOp::Div, 10),
                Tok::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            let pos = self.pos();
            self.advance();
            let mut rhs = self.unary()?;
            // Left associative: bind tighter operators to the right operand.
            loop {
                let next_prec = match self.peek().tok {
                    Tok::PipePipe => 1,
                    Tok::AmpAmp => 2,
                    Tok::Pipe => 3,
                    Tok::Caret => 4,
                    Tok::Amp => 5,
                    Tok::EqEq | Tok::NotEq => 6,
                    Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge => 7,
                    Tok::Shl | Tok::Shr => 8,
                    Tok::Plus | Tok::Minus => 9,
                    Tok::Star | Tok::Slash | Tok::Percent => 10,
                    _ => 0,
                };
                if next_prec > prec {
                    rhs = self.binary_rhs(rhs, prec + 1)?;
                } else {
                    break;
                }
            }
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs), pos };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        if self.check(&Tok::Minus) {
            let e = self.unary()?;
            return Ok(Expr::Unary { op: UnOp::Neg, expr: Box::new(e), pos });
        }
        if self.check(&Tok::Bang) {
            let e = self.unary()?;
            return Ok(Expr::Unary { op: UnOp::Not, expr: Box::new(e), pos });
        }
        if self.check(&Tok::Tilde) {
            let e = self.unary()?;
            return Ok(Expr::Unary { op: UnOp::BitNot, expr: Box::new(e), pos });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let pos = self.pos();
        match self.peek().tok.clone() {
            Tok::Int(value) => {
                self.advance();
                Ok(Expr::Int { value, pos })
            }
            Tok::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.advance();
                if self.check(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.check(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.check(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    Ok(Expr::Call { name, args, pos })
                } else if self.check(&Tok::LBracket) {
                    let index = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    Ok(Expr::Index { name, index: Box::new(index), pos })
                } else {
                    Ok(Expr::Var { name, pos })
                }
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_expr(src: &str) -> Expr {
        let prog = parse(&format!("fn main() {{ out({src}); }}")).unwrap();
        match &prog.functions[0].body.stmts[0] {
            Stmt::Out { value, .. } => value.clone(),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    fn op_of(e: &Expr) -> BinOp {
        match e {
            Expr::Binary { op, .. } => *op,
            other => panic!("not binary: {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3");
        assert_eq!(op_of(&e), BinOp::Add);
        if let Expr::Binary { rhs, .. } = e {
            assert_eq!(op_of(&rhs), BinOp::Mul);
        }
    }

    #[test]
    fn left_associativity() {
        // (10 - 3) - 2
        let e = parse_expr("10 - 3 - 2");
        if let Expr::Binary { op, lhs, rhs, .. } = e {
            assert_eq!(op, BinOp::Sub);
            assert_eq!(op_of(&lhs), BinOp::Sub);
            assert!(matches!(*rhs, Expr::Int { value: 2, .. }));
        } else {
            panic!()
        }
    }

    #[test]
    fn comparison_below_logical() {
        let e = parse_expr("a < b && c > d");
        assert_eq!(op_of(&e), BinOp::LogAnd);
    }

    #[test]
    fn parens_override() {
        let e = parse_expr("(1 + 2) * 3");
        assert_eq!(op_of(&e), BinOp::Mul);
    }

    #[test]
    fn unary_chain() {
        let e = parse_expr("-~!x");
        assert!(matches!(e, Expr::Unary { op: UnOp::Neg, .. }));
    }

    #[test]
    fn calls_and_indexing() {
        let e = parse_expr("f(1, g(2), a[i + 1])");
        if let Expr::Call { name, args, .. } = e {
            assert_eq!(name, "f");
            assert_eq!(args.len(), 3);
            assert!(matches!(&args[2], Expr::Index { .. }));
        } else {
            panic!()
        }
    }

    #[test]
    fn statements_parse() {
        let src = r#"
            global counter;
            global table[4] = [1, 2, 3, 4];
            fn helper(x) { return x + 1; }
            fn main() {
                let i = 0;
                while (i < 10) {
                    if (i % 2 == 0) { counter = counter + helper(i); }
                    else { table[i % 4] = i; }
                    i = i + 1;
                }
                assert(counter > 0);
                out(counter);
                return 0;
            }
        "#;
        let prog = parse(src).unwrap();
        assert_eq!(prog.globals.len(), 2);
        assert_eq!(prog.globals[1].len, 4);
        assert_eq!(prog.functions.len(), 2);
    }

    #[test]
    fn else_if_chains() {
        let src = "fn main() { if (1) { out(1); } else if (2) { out(2); } else { out(3); } }";
        let prog = parse(src).unwrap();
        if let Stmt::If { else_blk, .. } = &prog.functions[0].body.stmts[0] {
            let inner = &else_blk.as_ref().unwrap().stmts[0];
            assert!(matches!(inner, Stmt::If { .. }));
        } else {
            panic!()
        }
    }

    #[test]
    fn negative_global_initializer() {
        let prog = parse("global g = -5; fn main() { }").unwrap();
        assert_eq!(prog.globals[0].init, vec![-5]);
    }

    #[test]
    fn array_without_length_infers_from_init() {
        let prog = parse("global a[] = [7, 8]; fn main() { }").unwrap();
        assert_eq!(prog.globals[0].len, 2);
    }

    #[test]
    fn error_messages_have_positions() {
        let err = parse("fn main() { let = 3; }").unwrap_err();
        assert!(err.message.contains("identifier"));
        assert_eq!(err.pos.line, 1);
    }

    #[test]
    fn unterminated_block_reported() {
        assert!(parse("fn main() { out(1);").is_err());
    }

    #[test]
    fn index_read_statement() {
        // `a[i];` as a bare statement must parse (continue_expr path).
        let prog = parse("global a[2]; fn main() { a[0]; a[0] + 1; }").unwrap();
        assert_eq!(prog.functions[0].body.stmts.len(), 2);
    }

    #[test]
    fn too_many_initializers_rejected() {
        assert!(parse("global a[1] = [1, 2]; fn main() { }").is_err());
    }
}
