//! End-to-end tests: compile MiniC, run on the simulator, check observable
//! output and exit codes.

use cfed_lang::compile;
use cfed_sim::{ExitReason, Machine, Trap};

fn run(src: &str) -> (ExitReason, Vec<u64>) {
    let image = compile(src).unwrap_or_else(|e| panic!("compile failed: {e}"));
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let exit = m.run(50_000_000);
    (exit, m.cpu.output().to_vec())
}

fn outputs(src: &str) -> Vec<u64> {
    let (exit, out) = run(src);
    assert_eq!(exit, ExitReason::Halted { code: 0 }, "program did not halt cleanly");
    out
}

#[test]
fn arithmetic_precedence() {
    assert_eq!(outputs("fn main() { out(1 + 2 * 3 - 4); }"), vec![3]);
    assert_eq!(outputs("fn main() { out((1 + 2) * (3 + 4)); }"), vec![21]);
    assert_eq!(outputs("fn main() { out(100 / 7); out(100 % 7); }"), vec![14, 2]);
    assert_eq!(outputs("fn main() { out(1 << 10); out(1024 >> 3); }"), vec![1024, 128]);
    assert_eq!(outputs("fn main() { out(12 & 10); out(12 | 10); out(12 ^ 10); }"), vec![8, 14, 6]);
}

#[test]
fn unary_operators() {
    let (exit, out) = run("fn main() { out(-5 + 6); out(!0); out(!7); out(~0 & 0xFF); }");
    assert_eq!(exit, ExitReason::Halted { code: 0 });
    assert_eq!(out, vec![1, 1, 0, 0xFF]);
}

#[test]
fn signed_comparisons() {
    assert_eq!(
        outputs("fn main() { out(-1 < 1); out(2 <= 2); out(-3 > -4); out(5 >= 6); }"),
        vec![1, 1, 1, 0]
    );
    assert_eq!(outputs("fn main() { out(3 == 3); out(3 != 3); }"), vec![1, 0]);
}

#[test]
fn short_circuit_evaluation() {
    // Division by zero on the right side must not execute.
    assert_eq!(outputs("fn main() { out(0 && 1 / 0); out(1 || 1 / 0); }"), vec![0, 1]);
    assert_eq!(outputs("fn main() { out(1 && 2); out(0 || 0); }"), vec![1, 0]);
}

#[test]
fn while_loop_sum() {
    let src = r#"
        fn main() {
            let sum = 0;
            let i = 1;
            while (i <= 100) { sum = sum + i; i = i + 1; }
            out(sum);
        }
    "#;
    assert_eq!(outputs(src), vec![5050]);
}

#[test]
fn nested_loops() {
    let src = r#"
        fn main() {
            let total = 0;
            let i = 0;
            while (i < 10) {
                let j = 0;
                while (j < 10) { total = total + i * j; j = j + 1; }
                i = i + 1;
            }
            out(total);
        }
    "#;
    assert_eq!(outputs(src), vec![2025]);
}

#[test]
fn if_else_chains() {
    let src = r#"
        fn classify(x) {
            if (x < 0) { return 0; }
            else if (x == 0) { return 1; }
            else if (x < 10) { return 2; }
            else { return 3; }
        }
        fn main() {
            out(classify(-5)); out(classify(0)); out(classify(7)); out(classify(99));
        }
    "#;
    assert_eq!(outputs(src), vec![0, 1, 2, 3]);
}

#[test]
fn functions_and_recursion() {
    let src = r#"
        fn fib(n) {
            if (n < 2) { return n; }
            return fib(n - 1) + fib(n - 2);
        }
        fn main() { out(fib(15)); }
    "#;
    assert_eq!(outputs(src), vec![610]);
}

#[test]
fn mutual_recursion() {
    let src = r#"
        fn is_even(n) { if (n == 0) { return 1; } return is_odd(n - 1); }
        fn is_odd(n) { if (n == 0) { return 0; } return is_even(n - 1); }
        fn main() { out(is_even(10)); out(is_odd(10)); }
    "#;
    assert_eq!(outputs(src), vec![1, 0]);
}

#[test]
fn many_parameters() {
    let src = r#"
        fn weigh(a, b, c, d, e) { return a + 2*b + 3*c + 4*d + 5*e; }
        fn main() { out(weigh(1, 2, 3, 4, 5)); }
    "#;
    assert_eq!(outputs(src), vec![1 + 4 + 9 + 16 + 25]);
}

#[test]
fn globals_and_arrays() {
    let src = r#"
        global counter = 10;
        global table[5] = [2, 4, 6, 8, 10];
        fn main() {
            counter = counter + table[2];
            table[0] = counter;
            out(table[0]);
            let i = 0;
            let sum = 0;
            while (i < 5) { sum = sum + table[i]; i = i + 1; }
            out(sum);
        }
    "#;
    assert_eq!(outputs(src), vec![16, 16 + 4 + 6 + 8 + 10]);
}

#[test]
fn exit_code_from_main() {
    let (exit, _) = run("fn main() { return 42; }");
    assert_eq!(exit, ExitReason::Halted { code: 42 });
}

#[test]
fn assert_pass_and_fail() {
    let (exit, _) = run("fn main() { assert(1 == 1); }");
    assert_eq!(exit, ExitReason::Halted { code: 0 });
    let (exit, _) = run("fn main() { assert(2 < 1); }");
    match exit {
        ExitReason::Trapped(Trap::Software { code, .. }) => {
            assert_eq!(code, cfed_sim::trap_codes::GUEST_ASSERT);
        }
        other => panic!("expected assert trap, got {other:?}"),
    }
}

#[test]
fn division_by_zero_traps() {
    let (exit, _) = run("fn main() { let x = 0; out(5 / x); }");
    assert!(matches!(exit, ExitReason::Trapped(Trap::DivByZero { .. })));
}

#[test]
fn large_literals_via_constant_pool() {
    let src = "fn main() { out(0x123456789A); out(1 << 40); }";
    assert_eq!(outputs(src), vec![0x123456789A, 1 << 40]);
}

#[test]
fn lcg_prng_in_minic() {
    // A linear congruential generator — the idiom workloads use for
    // reproducible pseudo-random data.
    let src = r#"
        global seed = 12345;
        fn rand() {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            return seed;
        }
        fn main() {
            let i = 0;
            let acc = 0;
            while (i < 100) { acc = acc ^ rand(); i = i + 1; }
            out(acc != 0);
        }
    "#;
    assert_eq!(outputs(src), vec![1]);
}

#[test]
fn deep_recursion_within_stack() {
    let src = r#"
        fn depth(n) { if (n == 0) { return 0; } return 1 + depth(n - 1); }
        fn main() { out(depth(1000)); }
    "#;
    assert_eq!(outputs(src), vec![1000]);
}

#[test]
fn guest_code_never_touches_dbt_registers() {
    // Instrumentation registers r8..r14 must stay untouched by generated
    // code (paper §5.1: the DBT needs them for PC'/RTS without spilling).
    let image = compile(
        r#"
        global a[8];
        fn f(x, y) { let t = x * y; a[x % 8] = t; return t; }
        fn main() { let i = 0; while (i < 5) { out(f(i, i + 1)); i = i + 1; } }
        "#,
    )
    .unwrap();
    for inst in image.insts() {
        let text = inst.to_string();
        for r in 8..=14 {
            assert!(
                !text.contains(&format!("r{r}")),
                "generated code uses reserved register r{r}: {text}"
            );
        }
    }
}

#[test]
fn output_matches_reference_model() {
    // Cross-check a small program against the same computation in Rust.
    let mut expected = Vec::new();
    let mut seed = 7u64;
    for _ in 0..50 {
        seed = (seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407)) >> 33;
        expected.push(seed % 1000);
        seed += 1;
    }
    // The MiniC mirror uses smaller constants to stay in i32 literals where
    // possible; use the pool for the big ones.
    let src = r#"
        global seed = 7;
        fn step() {
            seed = (seed * 6364136223846793005 + 1442695040888963407) >> 33;
            let r = seed % 1000;
            seed = seed + 1;
            return r;
        }
        fn main() { let i = 0; while (i < 50) { out(step()); i = i + 1; } }
    "#;
    assert_eq!(outputs(src), expected);
}
