//! Robustness: the MiniC front end must never panic — any input produces
//! either a program or a positioned error.

use cfed_lang::{compile, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: lex/parse return an error or a program, never panic.
    #[test]
    fn parser_total_on_arbitrary_strings(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }

    /// Token-soup built from MiniC's own vocabulary (much likelier to reach
    /// deep parser states than raw bytes). The strategy is shared with the
    /// `cfed-fuzz` generator so the vocabulary has one definition.
    #[test]
    fn parser_total_on_token_soup(src in cfed_fuzz::gen::strategies::minic_token_soup()) {
        // compile() additionally exercises sema + codegen when parsing
        // happens to succeed.
        let _ = compile(&src);
    }

    /// Deeply nested expressions neither overflow the stack nor panic.
    #[test]
    fn deep_nesting_handled(depth in 1usize..120) {
        let src = format!(
            "fn main() {{ out({}1{}); }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        prop_assert!(parse(&src).is_ok());
        let src = format!("fn main() {{ out({}1); }}", "-".repeat(depth));
        prop_assert!(parse(&src).is_ok());
    }
}
