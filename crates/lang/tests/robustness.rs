//! Robustness: the MiniC front end must never panic — any input produces
//! either a program or a positioned error.

use cfed_lang::{compile, parse};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes: lex/parse return an error or a program, never panic.
    #[test]
    fn parser_total_on_arbitrary_strings(src in "\\PC{0,200}") {
        let _ = parse(&src);
    }

    /// Token-soup built from MiniC's own vocabulary (much likelier to reach
    /// deep parser states than raw bytes).
    #[test]
    fn parser_total_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("fn"), Just("let"), Just("if"), Just("else"), Just("while"),
                Just("return"), Just("global"), Just("out"), Just("assert"),
                Just("("), Just(")"), Just("{"), Just("}"), Just("["), Just("]"),
                Just(","), Just(";"), Just("="), Just("+"), Just("-"), Just("*"),
                Just("/"), Just("%"), Just("<"), Just(">"), Just("<="), Just("=="),
                Just("&&"), Just("||"), Just("!"), Just("~"), Just("x"), Just("y"),
                Just("main"), Just("0"), Just("1"), Just("42"), Just("0xFF"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        // compile() additionally exercises sema + codegen when parsing
        // happens to succeed.
        let _ = compile(&src);
    }

    /// Deeply nested expressions neither overflow the stack nor panic.
    #[test]
    fn deep_nesting_handled(depth in 1usize..120) {
        let src = format!(
            "fn main() {{ out({}1{}); }}",
            "(".repeat(depth),
            ")".repeat(depth)
        );
        prop_assert!(parse(&src).is_ok());
        let src = format!("fn main() {{ out({}1); }}", "-".repeat(depth));
        prop_assert!(parse(&src).is_ok());
    }
}
