//! # cfed-serve — coordinator/worker campaign service
//!
//! Distributes a fault-injection campaign across worker *processes* over
//! TCP, extending the in-process `cfed-runner` pool to multiple hosts
//! while preserving its core guarantee: the merged report is **byte-
//! identical** to a single-process run, whatever the worker count,
//! schedule, crashes, or retries.
//!
//! The pieces:
//!
//! * [`proto`] — length-prefixed JSON frames and the matrix wire format;
//! * [`coordinator`] — splits the campaign matrix into idempotent work
//!   units (one shard of one cell, keyed exactly like the checkpointed
//!   JSONL store), leases them with deadlines, retries failures/expiries
//!   under the shared [`cfed_runner::retry::RetryPolicy`], and is the
//!   single store writer;
//! * [`worker`] — runs leased units on the runner pool's
//!   [`cfed_runner::pool::UnitExecutor`] (golden-run cache + snapshot
//!   fast-forward) and streams results and telemetry back;
//! * [`http`] — live `/report`, `/progress`, `/healthz` endpoints reusing
//!   the offline report renderer;
//! * [`stats`] — `serve_stats` counters persisted as store meta records
//!   and emitted as telemetry.
//!
//! The `cfed-campaign` binary (this crate) fronts all of it: the classic
//! single-process study plus `serve coordinate` / `serve work`
//! subcommands. See DESIGN.md § "Campaign service".

pub mod coordinator;
pub mod http;
pub mod proto;
pub mod stats;
pub mod worker;

use std::path::Path;

use cfed_core::TechniqueKind;
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec, CAMPAIGN_WORKLOADS};
use cfed_workloads::Scale;

pub use coordinator::{
    Coordinator, CoordinatorOptions, CoordinatorSummary, PhasePlan, PhaseSummary,
};
pub use stats::{ServeStats, WorkerStats};
pub use worker::{work, WorkerOptions, WorkerSummary};

/// The standard two-phase campaign study — **the** phase list both the
/// single-process `cfed-campaign` run and `serve coordinate` execute, so
/// their stores (and therefore reports) are interchangeable:
///
/// 1. `coverage` — baseline + five techniques × both update styles over
///    the six campaign workloads (ALLBB policy), stored at
///    `{out}/{run_id}-coverage.jsonl`;
/// 2. `latency` — EdgCF/CMOVcc under the four checking policies, stored
///    at `{out}/{run_id}-latency.jsonl`.
pub fn campaign_phases(trials: u64, seed: u64, out: &Path, run_id: &str) -> Vec<PhasePlan> {
    let workloads: Vec<WorkloadSpec> =
        CAMPAIGN_WORKLOADS.iter().map(|name| WorkloadSpec::named(name, Scale::Test)).collect();
    let mut techniques: Vec<Option<TechniqueKind>> = vec![None];
    techniques.extend(TechniqueKind::ALL_FIVE.into_iter().map(Some));
    vec![
        PhasePlan {
            label: "coverage".to_string(),
            matrix: CampaignMatrix {
                workloads: workloads.clone(),
                techniques,
                styles: vec![UpdateStyle::CMov, UpdateStyle::Jcc],
                policies: vec![CheckPolicy::AllBb],
                trials,
                seed,
                attacks: vec![None],
            },
            store: out.join(format!("{run_id}-coverage.jsonl")),
        },
        PhasePlan {
            label: "latency".to_string(),
            matrix: CampaignMatrix {
                workloads,
                techniques: vec![Some(TechniqueKind::EdgCf)],
                styles: vec![UpdateStyle::CMov],
                policies: CheckPolicy::ALL.to_vec(),
                trials,
                seed,
                attacks: vec![None],
            },
            store: out.join(format!("{run_id}-latency.jsonl")),
        },
    ]
}

/// The adversarial campaign study: one phase, every attack archetype
/// against baseline + the five techniques over `workloads` (defaults to
/// the six campaign workloads when empty), stored at
/// `{out}/{run_id}-attacks.jsonl`. Single-process `cfed-campaign attack`
/// and `serve coordinate --attacks` both execute exactly this plan, so
/// their stores — and the `report --attacks` frontier — are
/// interchangeable.
pub fn attack_phases(
    workloads: &[String],
    trials: u64,
    seed: u64,
    out: &Path,
    run_id: &str,
) -> Vec<PhasePlan> {
    let names: Vec<&str> = if workloads.is_empty() {
        CAMPAIGN_WORKLOADS.to_vec()
    } else {
        workloads.iter().map(String::as_str).collect()
    };
    let specs: Vec<WorkloadSpec> =
        names.iter().map(|name| WorkloadSpec::named(name, Scale::Test)).collect();
    vec![PhasePlan {
        label: "attacks".to_string(),
        matrix: CampaignMatrix::attacks(specs, trials, seed),
        store: out.join(format!("{run_id}-attacks.jsonl")),
    }]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_phases_cover_every_archetype_and_technique() {
        let phases = attack_phases(&[], 128, 7, Path::new("results/campaigns"), "r2");
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].label, "attacks");
        // 7 archetypes x 6 configurations x 6 workloads.
        assert_eq!(phases[0].matrix.cells().len(), 7 * 6 * 6);
        assert!(phases[0].store.ends_with("r2-attacks.jsonl"));

        let narrowed = attack_phases(&["164.gzip".to_string()], 128, 7, Path::new("out"), "r3");
        assert_eq!(narrowed[0].matrix.cells().len(), 7 * 6);
    }

    #[test]
    fn campaign_phases_match_the_classic_stores() {
        let phases = campaign_phases(500, 42, Path::new("results/campaigns"), "r1");
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].label, "coverage");
        assert_eq!(phases[0].matrix.cells().len(), 6 * 6 * 2);
        assert!(phases[0].store.ends_with("r1-coverage.jsonl"));
        assert_eq!(phases[1].label, "latency");
        assert_eq!(phases[1].matrix.cells().len(), 6 * 4);
        assert!(phases[1].store.ends_with("r1-latency.jsonl"));
    }
}
