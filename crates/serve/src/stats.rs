//! Campaign-service counters: units leased / completed / retried /
//! expired, event-forwarding drops, and per-worker unit-latency
//! histograms.
//!
//! The coordinator appends one `{"meta":"serve_stats", …}` record per
//! phase store and emits the same shape as a `serve_stats` telemetry
//! event. Meta records are invisible to the store loader, so the default
//! report stays byte-identical between single-process and service runs;
//! `cfed-campaign report --serve-stats` opts into rendering them.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cfed_telemetry::json::{obj, Json};
use cfed_telemetry::{Event, Histogram};

/// Per-worker unit accounting.
#[derive(Debug, Default, Clone)]
pub struct WorkerStats {
    /// Units this worker completed successfully.
    pub units: u64,
    /// Unit wall-clock latency in milliseconds (log2 buckets).
    pub latency_ms: Histogram,
}

/// Counters for one coordinator phase (or, summed, a whole run).
#[derive(Debug, Default, Clone)]
pub struct ServeStats {
    /// Leases handed out (counts re-leases of the same unit again).
    pub leased: u64,
    /// Units whose results reached the store.
    pub completed: u64,
    /// Failed or expired attempts that were re-queued under the retry
    /// policy.
    pub retried: u64,
    /// Leases that passed their deadline without a result.
    pub expired: u64,
    /// Units that exhausted the retry budget and were recorded as failed.
    pub failed: u64,
    /// Result frames for units already in the store (late or duplicate
    /// delivery; dropped without a second append).
    pub duplicates: u64,
    /// Workers quarantined after accumulating the strike limit of expired
    /// leases.
    pub quarantined: u64,
    /// Worker telemetry events re-emitted by the coordinator.
    pub events_forwarded: u64,
    /// Events workers dropped at their bounded outbound queue.
    pub events_dropped: u64,
    /// Per-worker unit stats, by worker name.
    pub workers: BTreeMap<String, WorkerStats>,
}

impl ServeStats {
    /// Records a completed unit for `worker` that took `ms` wall-clock.
    pub fn record_unit(&mut self, worker: &str, ms: u64) {
        self.completed += 1;
        let w = self.workers.entry(worker.to_string()).or_default();
        w.units += 1;
        w.latency_ms.record(ms);
    }

    /// Folds another phase's stats into this one.
    pub fn absorb(&mut self, other: &ServeStats) {
        self.leased += other.leased;
        self.completed += other.completed;
        self.retried += other.retried;
        self.expired += other.expired;
        self.failed += other.failed;
        self.duplicates += other.duplicates;
        self.quarantined += other.quarantined;
        self.events_forwarded += other.events_forwarded;
        self.events_dropped += other.events_dropped;
        for (name, w) in &other.workers {
            let into = self.workers.entry(name.clone()).or_default();
            into.units += w.units;
            into.latency_ms.merge(&w.latency_ms);
        }
    }

    /// The store meta-record fields (everything but the `"meta"` tag).
    pub fn to_meta_fields(&self) -> Vec<(&'static str, Json)> {
        let workers = self
            .workers
            .iter()
            .map(|(name, w)| {
                obj(vec![
                    ("worker", Json::Str(name.clone())),
                    ("units", Json::UInt(w.units)),
                    ("lat_ms", w.latency_ms.to_json()),
                ])
            })
            .collect();
        vec![
            ("leased", Json::UInt(self.leased)),
            ("completed", Json::UInt(self.completed)),
            ("retried", Json::UInt(self.retried)),
            ("expired", Json::UInt(self.expired)),
            ("failed", Json::UInt(self.failed)),
            ("duplicates", Json::UInt(self.duplicates)),
            ("quarantined", Json::UInt(self.quarantined)),
            ("events_forwarded", Json::UInt(self.events_forwarded)),
            ("events_dropped", Json::UInt(self.events_dropped)),
            ("workers", Json::Arr(workers)),
        ]
    }

    /// The `serve_stats` telemetry event.
    pub fn to_event(&self) -> Event {
        let mut e = Event::new("serve_stats");
        for (k, v) in self.to_meta_fields() {
            e = e.json(k, v);
        }
        e
    }

    /// Parses a `{"meta":"serve_stats", …}` record back into counters (the
    /// `report --serve-stats` path).
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn from_meta(v: &Json) -> Result<ServeStats, String> {
        let num = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        let mut workers = BTreeMap::new();
        if let Some(list) = v.get("workers").and_then(Json::as_arr) {
            for w in list {
                let name = w
                    .get("worker")
                    .and_then(Json::as_str)
                    .ok_or("worker entry missing name")?
                    .to_string();
                let latency_ms = match w.get("lat_ms") {
                    Some(h) => Histogram::from_json(h)?,
                    None => Histogram::new(),
                };
                workers.insert(
                    name,
                    WorkerStats {
                        units: w.get("units").and_then(Json::as_u64).unwrap_or(0),
                        latency_ms,
                    },
                );
            }
        }
        Ok(ServeStats {
            leased: num("leased"),
            completed: num("completed"),
            retried: num("retried"),
            expired: num("expired"),
            failed: num("failed"),
            duplicates: num("duplicates"),
            quarantined: num("quarantined"),
            events_forwarded: num("events_forwarded"),
            events_dropped: num("events_dropped"),
            workers,
        })
    }

    /// Human-readable rendering (the `report --serve-stats` section).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "units: {} leased, {} completed, {} retried, {} expired, {} failed, {} duplicate",
            self.leased, self.completed, self.retried, self.expired, self.failed, self.duplicates
        );
        let _ = writeln!(
            out,
            "events: {} forwarded, {} dropped at worker queues",
            self.events_forwarded, self.events_dropped
        );
        for (name, w) in &self.workers {
            // A worker with zero recorded units has no latency data: render
            // "–" rather than a fabricated 0ms percentile.
            let p = |q: f64| match w.latency_ms.percentile(q) {
                Some(v) => format!("{v}ms"),
                None => "–".to_string(),
            };
            let max = match w.latency_ms.max() {
                Some(v) => format!("{v}ms"),
                None => "–".to_string(),
            };
            let _ = writeln!(
                out,
                "  worker {name}: {} units, unit latency p50<={} p99<={} max={}",
                w.units,
                p(0.50),
                p(0.99),
                max
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_roundtrip_through_meta() {
        let mut s = ServeStats { leased: 9, retried: 2, events_dropped: 1, ..Default::default() };
        s.record_unit("w0", 4);
        s.record_unit("w0", 120);
        s.record_unit("w1", 7);
        let mut fields = vec![("meta", Json::Str("serve_stats".to_string()))];
        fields.extend(s.to_meta_fields());
        let rendered = obj(fields).render();
        let parsed = cfed_telemetry::json::parse(&rendered).unwrap();
        let back = ServeStats::from_meta(&parsed).unwrap();
        assert_eq!(back.leased, 9);
        assert_eq!(back.completed, 3);
        assert_eq!(back.retried, 2);
        assert_eq!(back.workers.len(), 2);
        assert_eq!(back.workers["w0"].units, 2);
        assert_eq!(back.workers["w0"].latency_ms.count(), 2);
        let text = back.render();
        assert!(text.contains("worker w0"), "{text}");
        assert!(text.contains("p99<="), "{text}");
    }

    #[test]
    fn zero_unit_worker_renders_dashes_not_zeros() {
        let mut s = ServeStats::default();
        // A worker that joined but completed nothing: percentile(q) has no
        // samples, so the report must show "–", never a fabricated 0ms.
        s.workers.insert("idle".to_string(), WorkerStats::default());
        s.record_unit("busy", 12);
        let text = s.render();
        assert!(text.contains("worker idle: 0 units, unit latency p50<=– p99<=– max=–"), "{text}");
        assert!(text.contains("worker busy: 1 units"), "{text}");
        assert!(!text.contains("p50<=0ms"), "{text}");
    }

    #[test]
    fn absorb_merges_worker_histograms() {
        let mut a = ServeStats::default();
        a.record_unit("w0", 10);
        let mut b = ServeStats { expired: 1, ..Default::default() };
        b.record_unit("w0", 30);
        b.record_unit("w1", 5);
        a.absorb(&b);
        assert_eq!(a.completed, 3);
        assert_eq!(a.expired, 1);
        assert_eq!(a.workers["w0"].latency_ms.count(), 2);
        assert_eq!(a.workers["w1"].units, 1);
    }
}
