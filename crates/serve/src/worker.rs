//! The campaign worker: connects to a coordinator, executes leased units
//! on the shared runner-pool executor (per-thread image caches, shared
//! golden cache with snapshot fast-forward), and streams results and
//! telemetry back over the wire.
//!
//! Safety property: a worker never trusts a lease blindly. It recomputes
//! the unit's store key from its own reconstruction of the phase matrix
//! and refuses leases whose key disagrees — a serialization or version
//! mismatch between coordinator and worker fails loudly instead of
//! appending tallies under the wrong key.
//!
//! Telemetry events (`unit_done`, `unit_failed`) pass through a bounded
//! [`ChannelSink`]: a slow coordinator link drops events (counted,
//! reported on every result frame) rather than stalling execution.

use std::collections::{HashMap, HashSet};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cfed_runner::matrix::{CellSpec, ShardTask};
use cfed_runner::pool::{GoldenCache, UnitExecutor};
use cfed_telemetry::json::{obj, Json};
use cfed_telemetry::{ChannelSink, Event, EventSink, Profile};

use crate::proto::{matrix_from_json, read_frame, tag, write_frame};

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address, e.g. `127.0.0.1:7171`.
    pub connect: String,
    /// Advertised worker name (the coordinator de-duplicates collisions).
    pub name: String,
    /// Executor threads — also the lease slot count advertised in `hello`.
    /// `0` means `std::thread::available_parallelism()`.
    pub threads: usize,
    /// Whether golden runs carry snapshot fast-forward sets.
    pub snapshots: bool,
    /// Whether golden preparation also runs the sampling profiler, shipping
    /// one per-cell execution profile back to the coordinator (first worker
    /// to finish a unit of the cell wins; profiles are deterministic, so
    /// which worker sends it cannot change the stored bytes).
    pub profile: bool,
    /// Capacity of the bounded outbound telemetry queue; overflow is
    /// dropped and counted, never blocking unit execution.
    pub event_queue: usize,
    /// Suppress stderr progress output.
    pub quiet: bool,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            connect: "127.0.0.1:7171".to_string(),
            name: String::new(),
            threads: 0,
            snapshots: true,
            profile: true,
            event_queue: 1024,
            quiet: false,
        }
    }
}

/// Outcome of a worker session.
#[derive(Debug, Default)]
pub struct WorkerSummary {
    /// Name the coordinator addressed this worker by.
    pub worker: String,
    /// Units completed successfully.
    pub units_done: u64,
    /// Unit attempts that failed (reported via `fail` frames).
    pub units_failed: u64,
    /// Leases refused because their key disagreed with the worker's own
    /// reconstruction of the matrix.
    pub leases_refused: u64,
    /// Telemetry events dropped at the bounded outbound queue.
    pub events_dropped: u64,
}

/// One phase as the worker sees it: the reconstructed cell list plus a
/// golden cache shared by all executor threads.
struct PhaseCtx {
    cells: Vec<CellSpec>,
    goldens: Arc<GoldenCache>,
}

struct Task {
    phase: u64,
    ctx: Arc<PhaseCtx>,
    cell: usize,
    shard: u64,
    key: String,
}

enum WorkerMsg {
    /// A frame from the coordinator.
    Frame(Json),
    /// The coordinator connection closed or failed.
    Disconnected(String),
    /// An executor thread finished a unit. `profile` carries the cell's
    /// execution profile when profiling is on; the main loop forwards it
    /// at most once per `(phase, cell)`.
    Done {
        phase: u64,
        cell: usize,
        key: String,
        ms: u64,
        outcome: Result<Json, String>,
        profile: Option<Arc<Profile>>,
    },
}

/// Connects to the coordinator and serves until it says `bye`, the
/// connection drops, or `stop` is set (drain in-flight units, announce
/// `bye`, exit — leased-but-unfinished units simply expire and are
/// re-leased elsewhere).
///
/// # Errors
///
/// Returns a message when the connection cannot be established; once
/// serving, coordinator loss is a normal exit, not an error.
pub fn work(
    options: &WorkerOptions,
    stop: Option<Arc<AtomicBool>>,
) -> Result<WorkerSummary, String> {
    let stream = TcpStream::connect(&options.connect)
        .map_err(|e| format!("connecting to coordinator {}: {e}", options.connect))?;
    let _ = stream.set_nodelay(true);
    serve_connection(stream, options, stop)
}

// Same capping rule as `RunnerOptions::resolved_threads`: an explicit
// request never resolves above the host's available parallelism.
fn resolved_threads(options: &WorkerOptions) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if options.threads > 0 {
        return options.threads.min(cores);
    }
    cores
}

fn serve_connection(
    stream: TcpStream,
    options: &WorkerOptions,
    stop: Option<Arc<AtomicBool>>,
) -> Result<WorkerSummary, String> {
    let threads = resolved_threads(options);
    let stop = stop.unwrap_or_else(|| Arc::new(AtomicBool::new(false)));
    let (msg_tx, msg_rx) = mpsc::channel::<WorkerMsg>();

    // Reader thread: blocking frame reads, forwarded to the main loop.
    // The main thread owns all writes, so frames never interleave.
    let reader = {
        let tx = msg_tx.clone();
        let mut read_half = stream.try_clone().map_err(|e| format!("cloning connection: {e}"))?;
        std::thread::spawn(move || loop {
            match read_frame(&mut read_half) {
                Ok(Some(frame)) => {
                    if tx.send(WorkerMsg::Frame(frame)).is_err() {
                        break;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(WorkerMsg::Disconnected("coordinator closed".to_string()));
                    break;
                }
                Err(e) => {
                    let _ = tx.send(WorkerMsg::Disconnected(e));
                    break;
                }
            }
        })
    };

    // Executor pool: threads pull tasks from a shared channel; each thread
    // keeps one UnitExecutor per phase (private image cache, shared golden
    // cache) so repeated shards of one cell hit warm state.
    let (task_tx, task_rx) = mpsc::channel::<Task>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let mut executor_handles = Vec::with_capacity(threads);
    for _ in 0..threads {
        let task_rx = Arc::clone(&task_rx);
        let tx = msg_tx.clone();
        executor_handles.push(std::thread::spawn(move || {
            let mut executors: HashMap<u64, UnitExecutor> = HashMap::new();
            loop {
                let task = {
                    let rx = task_rx.lock().expect("task queue poisoned");
                    rx.recv()
                };
                let Ok(task) = task else { break };
                let executor = executors
                    .entry(task.phase)
                    .or_insert_with(|| UnitExecutor::new(Arc::clone(&task.ctx.goldens), false));
                let started = Instant::now();
                let run = executor.run(&task.ctx.cells[task.cell], task.shard);
                let ms = u64::try_from(started.elapsed().as_millis()).unwrap_or(u64::MAX);
                let outcome = run.tallies.map(|t| t.to_json(&task.key));
                let done = WorkerMsg::Done {
                    phase: task.phase,
                    cell: task.cell,
                    key: task.key,
                    ms,
                    outcome,
                    profile: run.profile,
                };
                if tx.send(done).is_err() {
                    break;
                }
            }
        }));
    }

    let sink = ChannelSink::new(options.event_queue);
    let mut write_half = stream;
    let mut summary = WorkerSummary::default();
    let mut phases: HashMap<u64, Arc<PhaseCtx>> = HashMap::new();
    let mut profiles_sent: HashSet<(u64, usize)> = HashSet::new();
    let mut inflight: u64 = 0;
    let mut leaving = false; // bye sent or stop requested: no new leases

    let hello = obj(vec![
        ("t", Json::Str("hello".to_string())),
        ("name", Json::Str(options.name.clone())),
        ("slots", Json::UInt(threads as u64)),
    ]);
    write_frame(&mut write_half, &hello)?;

    loop {
        if stop.load(std::sync::atomic::Ordering::Relaxed) && !leaving {
            leaving = true;
            if !options.quiet {
                eprintln!(
                    "cfed-serve worker: stop requested — draining {inflight} in-flight unit(s)"
                );
            }
        }
        if leaving && inflight == 0 {
            let _ = write_frame(&mut write_half, &obj(vec![("t", Json::Str("bye".to_string()))]));
            break;
        }
        let msg = match msg_rx.recv_timeout(Duration::from_millis(25)) {
            Ok(msg) => msg,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            WorkerMsg::Disconnected(reason) => {
                if !options.quiet {
                    eprintln!("cfed-serve worker: connection lost: {reason}");
                }
                break;
            }
            WorkerMsg::Done { phase, cell, key, ms, outcome, profile } => {
                inflight -= 1;
                match outcome {
                    Ok(record) => {
                        summary.units_done += 1;
                        sink.emit(&Event::new("unit_done").str("unit", &key).u64("ms", ms));
                        // Ship the cell's profile before the result frame:
                        // if this result completes the phase, the
                        // coordinator must still hold the phase store open
                        // when the profile arrives.
                        if let Some(p) = profile {
                            if profiles_sent.insert((phase, cell)) {
                                let cell_key = phases
                                    .get(&phase)
                                    .map(|ctx| ctx.cells[cell].key())
                                    .unwrap_or_default();
                                let frame = obj(vec![
                                    ("t", Json::Str("profile".to_string())),
                                    ("phase", Json::UInt(phase)),
                                    ("cell", Json::Str(cell_key)),
                                    ("profile", p.to_json()),
                                ]);
                                if write_frame(&mut write_half, &frame).is_err() {
                                    break;
                                }
                            }
                        }
                        let frame = obj(vec![
                            ("t", Json::Str("result".to_string())),
                            ("phase", Json::UInt(phase)),
                            ("key", Json::Str(key)),
                            ("ms", Json::UInt(ms)),
                            ("dropped", Json::UInt(sink.dropped())),
                            ("record", record),
                        ]);
                        if write_frame(&mut write_half, &frame).is_err() {
                            break;
                        }
                    }
                    Err(error) => {
                        summary.units_failed += 1;
                        sink.emit(
                            &Event::new("unit_failed").str("unit", &key).str("error", &error),
                        );
                        let frame = obj(vec![
                            ("t", Json::Str("fail".to_string())),
                            ("phase", Json::UInt(phase)),
                            ("key", Json::Str(key)),
                            ("error", Json::Str(error)),
                        ]);
                        if write_frame(&mut write_half, &frame).is_err() {
                            break;
                        }
                    }
                }
                if forward_events(&mut write_half, &sink).is_err() {
                    break;
                }
            }
            WorkerMsg::Frame(frame) => {
                let Ok(kind) = tag(&frame) else { continue };
                match kind {
                    "welcome" => {
                        if let Some(name) = frame.get("worker").and_then(Json::as_str) {
                            summary.worker = name.to_string();
                            if !options.quiet {
                                let run = frame.get("run_id").and_then(Json::as_str).unwrap_or("?");
                                eprintln!(
                                    "cfed-serve worker: joined run {run} as {name} ({threads} slot(s))"
                                );
                            }
                        }
                    }
                    "phase" => match parse_phase(&frame, options.snapshots, options.profile) {
                        Ok((index, ctx)) => {
                            phases.insert(index, Arc::new(ctx));
                        }
                        Err(e) => {
                            if !options.quiet {
                                eprintln!("cfed-serve worker: bad phase frame: {e}");
                            }
                        }
                    },
                    "lease" => {
                        let accepted = accept_lease(&frame, &phases, leaving).and_then(|task| {
                            task_tx.send(task).map_err(|_| "executor pool gone".to_string())
                        });
                        match accepted {
                            Ok(()) => inflight += 1,
                            Err(error) => {
                                summary.leases_refused += 1;
                                let key = frame
                                    .get("key")
                                    .and_then(Json::as_str)
                                    .unwrap_or("")
                                    .to_string();
                                let fail = obj(vec![
                                    ("t", Json::Str("fail".to_string())),
                                    ("phase", frame.get("phase").cloned().unwrap_or(Json::UInt(0))),
                                    ("key", Json::Str(key)),
                                    ("error", Json::Str(error)),
                                ]);
                                if write_frame(&mut write_half, &fail).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                    "bye" => {
                        leaving = true;
                    }
                    _ => {}
                }
            }
        }
    }

    summary.events_dropped = sink.dropped();
    // Tear down: close the socket (unblocks the reader), retire the
    // executor pool, and join everything.
    let _ = write_half.shutdown(std::net::Shutdown::Both);
    drop(task_tx);
    drop(msg_rx);
    for handle in executor_handles {
        let _ = handle.join();
    }
    let _ = reader.join();
    if !options.quiet {
        eprintln!(
            "cfed-serve worker: exiting — {} done, {} failed, {} refused, {} event(s) dropped",
            summary.units_done,
            summary.units_failed,
            summary.leases_refused,
            summary.events_dropped
        );
    }
    Ok(summary)
}

/// Parses a `phase` frame into the worker's execution context.
fn parse_phase(frame: &Json, snapshots: bool, profile: bool) -> Result<(u64, PhaseCtx), String> {
    let index = frame.get("phase").and_then(Json::as_u64).ok_or("phase frame missing index")?;
    let matrix = matrix_from_json(frame.get("matrix").ok_or("phase frame missing matrix")?)?;
    let cells = matrix.cells();
    Ok((index, PhaseCtx { cells, goldens: Arc::new(GoldenCache::new(snapshots, profile)) }))
}

/// Validates a lease against the worker's own matrix reconstruction and
/// produces the executor task.
fn accept_lease(
    frame: &Json,
    phases: &HashMap<u64, Arc<PhaseCtx>>,
    leaving: bool,
) -> Result<Task, String> {
    if leaving {
        return Err("worker is draining".to_string());
    }
    let phase = frame.get("phase").and_then(Json::as_u64).ok_or("lease missing phase")?;
    let cell = frame.get("cell").and_then(Json::as_u64).ok_or("lease missing cell")? as usize;
    let shard = frame.get("shard").and_then(Json::as_u64).ok_or("lease missing shard")?;
    let key = frame.get("key").and_then(Json::as_str).ok_or("lease missing key")?.to_string();
    let ctx = phases.get(&phase).ok_or_else(|| format!("unknown phase {phase}"))?;
    if cell >= ctx.cells.len() {
        return Err(format!("cell index {cell} out of range ({} cells)", ctx.cells.len()));
    }
    let expected = ShardTask { cell, shard_index: shard }.key(&ctx.cells);
    if expected != key {
        return Err(format!(
            "lease key mismatch: coordinator sent {key:?}, worker computes {expected:?}"
        ));
    }
    Ok(Task { phase, ctx: Arc::clone(ctx), cell, shard, key })
}

/// Drains the bounded event queue into `event` frames.
fn forward_events(w: &mut TcpStream, sink: &ChannelSink) -> Result<(), String> {
    for event in sink.drain() {
        let frame = obj(vec![("t", Json::Str("event".to_string())), ("ev", event.to_json())]);
        write_frame(w, &frame)?;
    }
    Ok(())
}
