//! `cfed-campaign` — the full fault-injection study as one resumable run.
//!
//! Drives two campaign matrices over the `cfed-runner` worker pool:
//!
//! * **coverage** — baseline + five techniques × both update styles over
//!   the six campaign workloads (ALLBB policy), tallied per branch-error
//!   category;
//! * **latency** — EdgCF/CMOVcc under the four checking policies,
//!   measuring mean instructions from injection to the check report.
//!
//! Every finished shard is checkpointed to a JSONL store under `--out`;
//! re-running with the same `--run-id`, `--seed` and `--trials` resumes
//! from the checkpoints instead of re-executing. Tallies are bit-identical
//! for any `--threads` value.
//!
//! Usage: `cargo run --release -p cfed-serve --bin cfed-campaign -- [OPTIONS]`
//!
//! The `attack` subcommand runs the adversarial study instead: every
//! attack archetype against baseline + the five techniques, stored at
//! `<run-id>-attacks.jsonl` with the same resume/determinism guarantees;
//! `serve coordinate --attacks` distributes the identical plan.
//!
//! The `report` subcommand renders a finished (or partial) store:
//! `cfed-campaign report --store results/campaigns/<run>-coverage.jsonl`
//! (`--attacks` renders the attack detection frontier, `--serve-stats`
//! also renders the campaign-service counters when the store was written
//! by a coordinator).
//!
//! The `profile` subcommand renders the per-cell execution profiles the
//! sampling profiler appends alongside results (run without `--no-profile`):
//! per-cell payload/instrumentation/other cycle attribution with the
//! hottest static blocks, plus a per-technique overhead table reconstructed
//! purely from the profiles (the paper's fig. 12 shape).
//!
//! The `serve` subcommands distribute the same study across processes:
//! `serve coordinate` leases work units over TCP and is the single store
//! writer; `serve work` connects to a coordinator and executes units.
//! Stores and reports are byte-identical to the single-process run.
//!
//! The `bench` subcommand runs a fixed-seed smoke campaign twice — fast-
//! forward snapshots on and off — checks the tallies match bit for bit,
//! and writes a `BENCH_campaign.json` record (throughput, snapshot stats,
//! host fingerprint). It also times the interpreter on the same workloads
//! with and without the pre-decoded instruction cache (guest MIPS each
//! way, plus the cache's hit/miss/invalidation counters). `--baseline
//! PATH` compares the snapshots-over-scratch speedup and the
//! decoded-over-raw interpreter speedup against a committed record and
//! exits nonzero when either is more than 25% below it — the CI perf gate
//! (both are ratios of two passes on the same host, so a committed
//! baseline is portable across runners). It also times the profiler-capable
//! dispatch with profiling off against the direct decoded loop and fails
//! outright (no baseline needed) if the dispatch costs ≥1% throughput, and
//! — where the host supports it — the DBT's x86-64 native backend against
//! the decoded interpreter, failing outright below a 2x floor, and the
//! profile-guided trace tier against tier-1 native execution on a hot-loop
//! workload, failing outright below a 1.2x floor.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use cfed_core::{
    run_dbt_native_enabled, run_dbt_tiered_enabled, Category, RunConfig, TechniqueKind,
};
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::CategoryStats;
use cfed_runner::cli::Parser;
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_runner::pool::{run_matrix, RunPerf, RunSummary, RunnerOptions};
use cfed_runner::report::{render_attack_frontier, render_report};
use cfed_runner::retry::RetryPolicy;
use cfed_runner::store::read_meta;
use cfed_serve::{
    attack_phases, campaign_phases, Coordinator, CoordinatorOptions, ServeStats, WorkerOptions,
};
use cfed_sim::Machine;
use cfed_telemetry::json::{obj, Json};
use cfed_telemetry::{JsonlSink, Telemetry};
use cfed_workloads::Scale;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("report") => run_report(&argv[1..]),
        Some("profile") => run_profile(&argv[1..]),
        Some("bench") => run_bench(&argv[1..]),
        Some("attack") => run_attacks(&argv[1..]),
        Some("serve") => match argv.get(1).map(String::as_str) {
            Some("coordinate") => run_coordinate(&argv[2..]),
            Some("work") => run_work(&argv[2..]),
            Some("--help" | "-h") | None => {
                eprintln!(
                    "usage: cfed-campaign serve <coordinate|work> [OPTIONS]\n\
                     \x20 coordinate  lease campaign units to workers over TCP (single store writer)\n\
                     \x20 work        connect to a coordinator and execute leased units\n\
                     run `cfed-campaign serve coordinate --help` or `serve work --help` for options"
                );
                std::process::exit(if argv.len() > 1 { 0 } else { 2 });
            }
            Some(other) => {
                eprintln!(
                    "cfed-campaign: unknown serve subcommand {other:?} (expected coordinate or work)"
                );
                std::process::exit(2);
            }
        },
        _ => run_campaign(&argv),
    }
}

/// The SIGINT-drain flag: set by the signal handler, polled by the
/// coordinator/worker loops so an interrupted campaign checkpoints its
/// store and exits cleanly instead of dying mid-write.
static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();

extern "C" fn on_sigint(_signum: i32) {
    if let Some(flag) = STOP.get() {
        flag.store(true, Ordering::Relaxed);
    }
}

/// Installs the SIGINT handler and returns the drain flag. Uses the C
/// `signal()` entry point directly — the only libc surface this needs —
/// so no FFI crate dependency is pulled in.
fn install_sigint() -> Arc<AtomicBool> {
    let flag = STOP.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint);
    }
    flag
}

fn run_report(argv: &[String]) {
    let args = Parser::new("cfed-campaign report", "render a campaign result store")
        .required_flag("store", "PATH", "JSONL result store to render")
        .switch("attacks", "render the attack detection frontier (archetype x technique)")
        .switch("serve-stats", "also render campaign-service counters (coordinator stores)")
        .parse_from(argv);
    let store = Path::new(args.get("store").expect("required"));
    let rendered =
        if args.has("attacks") { render_attack_frontier(store) } else { render_report(store) };
    match rendered {
        Ok(text) => print!("{text}"),
        Err(e) => {
            eprintln!("cfed-campaign: {e}");
            std::process::exit(2);
        }
    }
    if args.has("serve-stats") {
        match read_meta(store, "serve_stats") {
            Ok(records) if records.is_empty() => {
                println!("\nserve stats: none recorded (single-process store)");
            }
            Ok(records) => {
                let mut total = ServeStats::default();
                for record in &records {
                    match ServeStats::from_meta(record) {
                        Ok(s) => total.absorb(&s),
                        Err(e) => {
                            eprintln!("cfed-campaign: malformed serve_stats record: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                println!("\nserve stats ({} coordinator phase(s)):", records.len());
                print!("{}", total.render());
            }
            Err(e) => {
                eprintln!("cfed-campaign: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// One-line fatal error with the conventional bad-usage exit code.
fn fatal(prefix: &str, message: String) -> ! {
    eprintln!("{prefix}: {message}");
    std::process::exit(2);
}

fn run_profile(argv: &[String]) {
    let args = Parser::new(
        "cfed-campaign profile",
        "render the per-cell execution profiles recorded in a result store",
    )
    .required_flag("store", "PATH", "JSONL result store holding profile records")
    .flag("top", "N", "5", "hottest static blocks to list per cell")
    .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign profile: {message}");
        std::process::exit(2);
    };
    let store = Path::new(args.get("store").expect("required"));
    let top = args.get_usize("top").unwrap_or_else(|e| die(e));
    let profiles = cfed_runner::read_profiles(store).unwrap_or_else(|e| die(e));
    if profiles.is_empty() {
        eprintln!(
            "cfed-campaign profile: no profile records in {} (was the run made with --no-profile?)",
            store.display()
        );
        std::process::exit(1);
    }
    print!("{}", render_profiles(&profiles, top));
}

/// The labelled fields of a cell key:
/// `{workload}|{technique}|{style}|{policy}|{max_insts}|s{seed}|t{trials}`,
/// with an optional trailing `atk:{archetype}` part on attack cells.
fn cell_key_parts(key: &str) -> Option<(String, String, String, String)> {
    let parts: Vec<&str> = key.split('|').collect();
    let plausible = parts.len() == 7 || (parts.len() == 8 && parts[7].starts_with("atk:"));
    if !plausible {
        return None;
    }
    Some((parts[0].to_string(), parts[1].to_string(), parts[2].to_string(), parts[3].to_string()))
}

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Renders the stored profiles: per-cell cycle attribution with the
/// hottest static blocks, then the fig12-style per-technique overhead
/// table reconstructed purely from the profiles. Because the profiler
/// attributes *every* retired cycle, the reconstructed slowdown equals the
/// measured end-to-end cycles ratio exactly — the table is the figure, not
/// an estimate of it.
fn render_profiles(
    profiles: &std::collections::BTreeMap<String, cfed_telemetry::Profile>,
    top: usize,
) -> String {
    let mut out = String::new();
    // (workload, style) -> baseline total cycles; (technique, style) ->
    // per-workload totals for the overhead table.
    let mut baseline: std::collections::BTreeMap<(String, String), u64> =
        std::collections::BTreeMap::new();
    let mut techs: std::collections::BTreeMap<(String, String), Vec<(String, ProfTotals)>> =
        std::collections::BTreeMap::new();

    for (key, profile) in profiles {
        let Some((workload, technique, style, policy)) = cell_key_parts(key) else {
            let _ = writeln!(out, "== {key} == (unrecognized key shape)");
            continue;
        };
        let t = profile.totals();
        let _ = writeln!(out, "== {workload} | {technique} | {style} | {policy} ==");
        let _ = writeln!(
            out,
            "cycles: {} total — payload {} ({:.1}%), instr {} ({:.1}%: update {}, check+glue {}), \
             other {} ({:.1}%)",
            t.total(),
            t.payload,
            pct(t.payload, t.total()),
            t.instr(),
            pct(t.instr(), t.total()),
            t.head,
            t.tail,
            t.other,
            pct(t.other, t.total()),
        );
        for (addr, b) in profile.top_blocks(top) {
            let _ = writeln!(
                out,
                "  block {addr:#08x}: {} hits, {} cycles ({} payload, {} instr, {:.1}% instr)",
                b.hits,
                b.total_cycles(),
                b.payload_cycles,
                b.instr_cycles(),
                pct(b.instr_cycles(), b.total_cycles()),
            );
        }
        let _ = writeln!(out);

        let totals = ProfTotals { total: t.total(), head: t.head, tail: t.tail };
        if technique == "baseline" {
            baseline.insert((workload, style), t.total());
        } else {
            techs.entry((technique, style)).or_default().push((workload, totals));
        }
    }

    let _ = writeln!(out, "== per-technique overhead (reconstructed from profiles, fig12) ==");
    if baseline.is_empty() {
        let _ = writeln!(out, "(no baseline cells in this store; slowdowns unavailable)");
        return out;
    }
    let _ = writeln!(
        out,
        "{:>9} {:>8} | {:>8} | {:>6} {:>7} {:>11}",
        "technique", "style", "slowdown", "instr%", "update%", "check+glue%"
    );
    let _ = writeln!(out, "{}", "-".repeat(60));
    for ((technique, style), cells) in &techs {
        let mut ratios = Vec::new();
        let (mut total, mut head, mut tail) = (0u64, 0u64, 0u64);
        for (workload, t) in cells {
            if let Some(&base) = baseline.get(&(workload.clone(), style.clone())) {
                if base > 0 {
                    ratios.push(t.total as f64 / base as f64);
                }
            }
            total += t.total;
            head += t.head;
            tail += t.tail;
        }
        let slowdown = if ratios.is_empty() { f64::NAN } else { cfed_core::geomean(&ratios) };
        let _ = writeln!(
            out,
            "{:>9} {:>8} | {:>7.3}x | {:>5.1}% {:>6.1}% {:>10.1}%",
            technique,
            style,
            slowdown,
            pct(head + tail, total),
            pct(head, total),
            pct(tail, total),
        );
    }
    out
}

/// Whole-cell cycle totals carried into the overhead table.
struct ProfTotals {
    total: u64,
    head: u64,
    tail: u64,
}

/// Builds the telemetry handle for `--events PATH`, validating the
/// `--forensics`/`--events` pairing.
fn telemetry_for(args: &cfed_runner::cli::Args, prefix: &str) -> Telemetry {
    if args.has("forensics") && args.get("events").filter(|s| !s.is_empty()).is_none() {
        fatal(
            prefix,
            "--forensics requires --events PATH (forensics bundles are emitted as events)"
                .to_string(),
        );
    }
    match args.get("events").filter(|s| !s.is_empty()) {
        Some(path) => {
            let path = PathBuf::from(path);
            if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir)
                    .unwrap_or_else(|e| fatal(prefix, format!("creating {}: {e}", dir.display())));
            }
            Telemetry::to(Arc::new(JsonlSink::create(&path).unwrap_or_else(|e| fatal(prefix, e))))
        }
        None => Telemetry::off(),
    }
}

fn retry_policy_for(args: &cfed_runner::cli::Args, prefix: &str) -> RetryPolicy {
    let max_attempts = args.get_u64("retries").unwrap_or_else(|e| fatal(prefix, e));
    let backoff_ms = args.get_u64("backoff-ms").unwrap_or_else(|e| fatal(prefix, e));
    if max_attempts == 0 {
        fatal(prefix, "--retries must be at least 1 (the first attempt counts)".to_string());
    }
    RetryPolicy {
        max_attempts: u32::try_from(max_attempts).unwrap_or(u32::MAX),
        backoff_ms,
        ..RetryPolicy::default()
    }
}

fn run_campaign(argv: &[String]) {
    let args = Parser::new("cfed-campaign", "full coverage + latency fault-injection study")
        .flag("trials", "N", "500", "injections per workload per configuration")
        .flag("threads", "N", "0", "worker threads (0 = all cores)")
        .flag("seed", "SEED", "3488423942", "campaign RNG seed")
        .flag("out", "DIR", "results/campaigns", "directory for the JSONL result stores")
        .flag(
            "run-id",
            "ID",
            "",
            "run identifier; re-use to resume (default: derived from seed/trials)",
        )
        .flag("events", "PATH", "", "write structured telemetry events (JSONL) to PATH")
        .flag("retries", "N", "3", "attempts per failed shard before recording it failed")
        .flag("backoff-ms", "MS", "25", "base backoff between shard retry attempts")
        .switch("progress", "print per-shard progress to stderr")
        .switch("quiet", "suppress stderr progress output")
        .switch(
            "forensics",
            "re-inject SDC/timeout/misdetection trials and emit forensics events (use with --events)",
        )
        .switch(
            "no-snapshots",
            "disable fast-forward snapshots; every trial replays its fault-free prefix from scratch",
        )
        .switch(
            "no-profile",
            "skip per-cell execution profiling (profiles feed `cfed-campaign profile`)",
        )
        .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign: {message}");
        std::process::exit(2);
    };
    let trials = args.get_u64("trials").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let seed = args.get_u64("seed").unwrap_or_else(|e| die(e));
    let out = PathBuf::from(args.get("out").expect("has default"));
    let run_id = match args.get("run-id").filter(|s| !s.is_empty()) {
        Some(id) => id.to_string(),
        None => format!("campaign-s{seed}-t{trials}"),
    };
    let quiet = args.has("quiet");
    let telemetry = telemetry_for(&args, "cfed-campaign");
    let options = RunnerOptions {
        threads,
        max_shards: None,
        progress: args.has("progress"),
        quiet,
        telemetry,
        forensics: args.has("forensics"),
        snapshots: !args.has("no-snapshots"),
        profile: !args.has("no-profile"),
        retry: retry_policy_for(&args, "cfed-campaign"),
    };

    // The exact phase list `serve coordinate` uses, so stores (and their
    // reports) are interchangeable between the two execution modes.
    let phases = campaign_phases(trials, seed, &out, &run_id);
    let coverage = &phases[0];
    let latency = &phases[1];

    let mut runs = Vec::with_capacity(phases.len());
    for plan in &phases {
        if !quiet {
            eprintln!(
                "cfed-campaign: {} matrix — {} cells, {} shards, store {}",
                plan.label,
                plan.matrix.cells().len(),
                CampaignMatrix::shards(&plan.matrix.cells()).len(),
                plan.store.display()
            );
        }
        let run = run_matrix(&plan.matrix, &run_id, Some(&plan.store), &options)
            .unwrap_or_else(|e| die(e));
        if !quiet {
            report_progress(&run);
        }
        runs.push(run);
    }
    let (coverage_run, latency_run) = (&runs[0], &runs[1]);

    for style in [UpdateStyle::CMov, UpdateStyle::Jcc] {
        println!("=== Coverage, {style} update style ({trials} trials/workload/config) ===");
        print!(
            "{}",
            render_coverage(&coverage.matrix, coverage_run, style, &coverage.matrix.techniques)
        );
        println!();
    }
    println!("=== Detection latency by checking policy (EdgCF, CMOVcc) ===");
    print!("{}", render_latency(&latency.matrix, latency_run));

    if !quiet {
        eprintln!(
            "cfed-campaign: full per-cell tables: cfed-campaign report --store {}",
            coverage.store.display()
        );
    }

    if !coverage_run.complete() || !latency_run.complete() {
        eprintln!("cfed-campaign: some shards failed; re-run with the same --run-id to retry them");
        std::process::exit(1);
    }
}

fn run_attacks(argv: &[String]) {
    let args = Parser::new(
        "cfed-campaign attack",
        "adversarial campaign: every attack archetype vs baseline + five techniques",
    )
    .flag("trials", "N", "300", "attacks per workload per archetype per configuration")
    .flag("threads", "N", "0", "worker threads (0 = all cores)")
    .flag("seed", "SEED", "3488423942", "campaign RNG seed")
    .flag("out", "DIR", "results/campaigns", "directory for the JSONL result store")
    .flag(
        "run-id",
        "ID",
        "",
        "run identifier; re-use to resume (default: derived from seed/trials)",
    )
    .flag(
        "workloads",
        "NAMES",
        "",
        "comma-separated campaign workload names (default: all six)",
    )
    .flag("events", "PATH", "", "write structured telemetry events (JSONL) to PATH")
    .flag("retries", "N", "3", "attempts per failed shard before recording it failed")
    .flag("backoff-ms", "MS", "25", "base backoff between shard retry attempts")
    .switch("progress", "print per-shard progress to stderr")
    .switch("quiet", "suppress stderr progress output")
    .switch(
        "forensics",
        "re-mount SDC/timeout attacks with a tracer and emit attack_forensics events (use with --events)",
    )
    .switch(
        "no-snapshots",
        "disable fast-forward snapshots; every trial replays its attack-free prefix from scratch",
    )
    .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign attack: {message}");
        std::process::exit(2);
    };
    let trials = args.get_u64("trials").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let seed = args.get_u64("seed").unwrap_or_else(|e| die(e));
    let out = PathBuf::from(args.get("out").expect("has default"));
    let run_id = match args.get("run-id").filter(|s| !s.is_empty()) {
        Some(id) => id.to_string(),
        None => format!("attack-s{seed}-t{trials}"),
    };
    let workloads: Vec<String> = args
        .get("workloads")
        .filter(|s| !s.is_empty())
        .map(|s| s.split(',').map(|w| w.trim().to_string()).filter(|w| !w.is_empty()).collect())
        .unwrap_or_default();
    let quiet = args.has("quiet");
    let options = RunnerOptions {
        threads,
        max_shards: None,
        progress: args.has("progress"),
        quiet,
        telemetry: telemetry_for(&args, "cfed-campaign attack"),
        forensics: args.has("forensics"),
        snapshots: !args.has("no-snapshots"),
        profile: false,
        retry: retry_policy_for(&args, "cfed-campaign attack"),
    };

    // The exact phase `serve coordinate --attacks` uses, so stores (and the
    // frontier rendered from them) are interchangeable between modes.
    let phases = attack_phases(&workloads, trials, seed, &out, &run_id);
    let plan = &phases[0];
    if !quiet {
        eprintln!(
            "cfed-campaign attack: {} cells, {} shards, store {}",
            plan.matrix.cells().len(),
            CampaignMatrix::shards(&plan.matrix.cells()).len(),
            plan.store.display()
        );
    }
    let run =
        run_matrix(&plan.matrix, &run_id, Some(&plan.store), &options).unwrap_or_else(|e| die(e));
    if !quiet {
        report_progress(&run);
    }

    match render_attack_frontier(&plan.store) {
        Ok(text) => print!("{text}"),
        Err(e) => die(e),
    }
    if !quiet {
        eprintln!(
            "cfed-campaign attack: per-cell tables: cfed-campaign report --store {}",
            plan.store.display()
        );
    }
    if !run.complete() {
        eprintln!(
            "cfed-campaign attack: some shards failed; re-run with the same --run-id to retry them"
        );
        std::process::exit(1);
    }
}

fn run_coordinate(argv: &[String]) {
    let args = Parser::new(
        "cfed-campaign serve coordinate",
        "lease the campaign to worker processes over TCP (single store writer)",
    )
    .flag("trials", "N", "500", "injections per workload per configuration")
    .flag("seed", "SEED", "3488423942", "campaign RNG seed")
    .flag("out", "DIR", "results/campaigns", "directory for the JSONL result stores")
    .flag(
        "run-id",
        "ID",
        "",
        "run identifier; re-use to resume (default: derived from seed/trials)",
    )
    .flag(
        "listen",
        "ADDR",
        "127.0.0.1:7171",
        "worker listen address (use :0 for an ephemeral port)",
    )
    .flag("http", "ADDR", "", "also serve /report /progress /healthz on ADDR")
    .flag("addr-file", "PATH", "", "write the bound worker (and http) address to PATH")
    .flag("lease-ms", "MS", "60000", "lease deadline before a unit is re-queued")
    .flag("max-inflight", "N", "4", "outstanding lease cap per worker")
    .flag("retries", "N", "3", "attempts per unit before recording it failed")
    .flag("backoff-ms", "MS", "25", "base backoff between unit retry attempts")
    .flag("events", "PATH", "", "write structured telemetry events (JSONL) to PATH")
    .flag(
        "workloads",
        "NAMES",
        "",
        "comma-separated workload names for --attacks (default: all six)",
    )
    .switch("attacks", "run the adversarial attack study instead of coverage + latency")
    .switch("quiet", "suppress stderr progress output")
    .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign serve coordinate: {message}");
        std::process::exit(2);
    };
    let trials = args.get_u64("trials").unwrap_or_else(|e| die(e));
    let seed = args.get_u64("seed").unwrap_or_else(|e| die(e));
    let out = PathBuf::from(args.get("out").expect("has default"));
    let run_id = match args.get("run-id").filter(|s| !s.is_empty()) {
        Some(id) => id.to_string(),
        None => format!("campaign-s{seed}-t{trials}"),
    };
    let lease_ms = args.get_u64("lease-ms").unwrap_or_else(|e| die(e));
    let max_inflight = args.get_usize("max-inflight").unwrap_or_else(|e| die(e));
    if max_inflight == 0 {
        die("--max-inflight must be at least 1".to_string());
    }
    let quiet = args.has("quiet");
    let options = CoordinatorOptions {
        listen: args.get("listen").expect("has default").to_string(),
        http: args.get("http").filter(|s| !s.is_empty()).map(str::to_string),
        lease_ms,
        retry: retry_policy_for(&args, "cfed-campaign serve coordinate"),
        max_inflight,
        quiet,
        telemetry: telemetry_for(&args, "cfed-campaign serve coordinate"),
    };

    let coordinator = Coordinator::bind(options).unwrap_or_else(|e| die(e));
    if !quiet {
        eprintln!("cfed-campaign serve coordinate: leasing on {}", coordinator.addr());
        if let Some(http) = coordinator.http_addr() {
            eprintln!("cfed-campaign serve coordinate: http on {http}");
        }
    }
    if let Some(path) = args.get("addr-file").filter(|s| !s.is_empty()) {
        let mut text = format!("{}\n", coordinator.addr());
        if let Some(http) = coordinator.http_addr() {
            text.push_str(&format!("{http}\n"));
        }
        std::fs::write(path, text).unwrap_or_else(|e| die(format!("writing {path}: {e}")));
    }

    let stop = install_sigint();
    let phases = if args.has("attacks") {
        let workloads: Vec<String> = args
            .get("workloads")
            .filter(|s| !s.is_empty())
            .map(|s| s.split(',').map(|w| w.trim().to_string()).filter(|w| !w.is_empty()).collect())
            .unwrap_or_default();
        attack_phases(&workloads, trials, seed, &out, &run_id)
    } else {
        campaign_phases(trials, seed, &out, &run_id)
    };
    let summary = coordinator.run(&run_id, &phases, Some(stop)).unwrap_or_else(|e| die(e));

    for phase in &summary.phases {
        println!(
            "serve: phase {} — {}/{} units done ({} resumed, {} failed)",
            phase.label,
            phase.done_units,
            phase.total_units,
            phase.resumed_units,
            phase.failed_units
        );
    }
    print!("{}", summary.stats.render());
    for plan in &phases {
        println!("serve: report: cfed-campaign report --store {}", plan.store.display());
    }
    if summary.stopped {
        eprintln!(
            "cfed-campaign serve coordinate: interrupted — stores checkpointed; re-run with the \
             same --run-id to resume"
        );
        std::process::exit(130);
    }
    if !summary.complete() {
        eprintln!(
            "cfed-campaign serve coordinate: some units failed; re-run with the same --run-id to \
             retry them"
        );
        std::process::exit(1);
    }
}

fn run_work(argv: &[String]) {
    let args = Parser::new(
        "cfed-campaign serve work",
        "connect to a coordinator and execute leased campaign units",
    )
    .required_flag("connect", "ADDR", "coordinator address, e.g. 127.0.0.1:7171")
    .flag("name", "NAME", "", "advertised worker name (default: host PID tag)")
    .flag("threads", "N", "0", "executor threads / lease slots (0 = all cores)")
    .flag("event-queue", "N", "1024", "bounded outbound telemetry queue capacity")
    .switch(
        "no-snapshots",
        "disable fast-forward snapshots; every trial replays its fault-free prefix from scratch",
    )
    .switch(
        "no-profile",
        "skip per-cell execution profiling (profiles feed `cfed-campaign profile`)",
    )
    .switch("quiet", "suppress stderr progress output")
    .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign serve work: {message}");
        std::process::exit(2);
    };
    let name = match args.get("name").filter(|s| !s.is_empty()) {
        Some(name) => name.to_string(),
        None => format!("worker-{}", std::process::id()),
    };
    let options = WorkerOptions {
        connect: args.get("connect").expect("required").to_string(),
        name,
        threads: args.get_usize("threads").unwrap_or_else(|e| die(e)),
        snapshots: !args.has("no-snapshots"),
        profile: !args.has("no-profile"),
        event_queue: args.get_usize("event-queue").unwrap_or_else(|e| die(e)),
        quiet: args.has("quiet"),
    };
    let stop = install_sigint();
    cfed_serve::work(&options, Some(stop)).unwrap_or_else(|e| die(e));
}

/// Tolerated slowdown against the committed baseline before the perf gate
/// fails: the current snapshots-over-scratch speedup must stay above 75%
/// of the baseline's. The gate compares *speedups*, not absolute
/// trials/sec — both passes run on the same host in the same invocation,
/// so the ratio self-normalizes away host speed, turbo state and CI-runner
/// contention that absolute rates would false-positive on.
const BASELINE_TOLERANCE_PCT: u64 = 25;

/// Hard budget for what the profiler-capable dispatch may cost when no
/// profiler is attached, in percent of direct interpreter throughput. Both
/// laps run in the same invocation, so this gate needs no committed
/// baseline and fails the bench run outright when exceeded.
const PROFILER_OFF_BUDGET_PCT: f64 = 1.0;

/// The fixed-seed smoke matrix the perf gate times: two workloads under
/// the uninstrumented baseline and EdgCF. Small enough for CI, large
/// enough that prefix replay dominates the from-scratch path.
fn bench_matrix(trials: u64, seed: u64) -> CampaignMatrix {
    CampaignMatrix {
        workloads: vec![
            WorkloadSpec::named("164.gzip", Scale::Test),
            WorkloadSpec::named("181.mcf", Scale::Test),
        ],
        techniques: vec![None, Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials,
        seed,
        attacks: vec![None],
    }
}

/// Interpreter-throughput measurement over the bench workloads: guest MIPS
/// with the raw fetch–decode–execute loop versus the pre-decoded engine.
struct InterpPerf {
    raw_mips: f64,
    decoded_mips: f64,
    /// Decoded-over-raw throughput ratio.
    speedup: f64,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Times the native interpreter on the bench workloads with the decode
/// cache off (per-instruction fetch+decode) and on (decode-once lines,
/// fused bursts), checking both paths retire bit-identical runs.
///
/// Each configuration is timed `REPS` times after a warm-up run and the
/// best time kept: the timed regions are sub-millisecond, so any scheduler
/// preemption on a shared host would otherwise dominate the measurement.
fn bench_interp() -> Result<InterpPerf, String> {
    const WARMUP: usize = 1;
    const REPS: usize = 7;
    let specs =
        [WorkloadSpec::named("164.gzip", Scale::Test), WorkloadSpec::named("181.mcf", Scale::Test)];
    let mut raw = (0u64, 0.0f64); // (guest insts, best-case seconds)
    let mut decoded = (0u64, 0.0f64);
    let (mut hits, mut misses, mut invalidations) = (0u64, 0u64, 0u64);
    for spec in &specs {
        let image = spec.image()?;
        let mut reference = None;
        for use_cache in [false, true] {
            let mut best = f64::INFINITY;
            let mut insts = 0;
            for rep in 0..WARMUP + REPS {
                let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
                m.set_decode_cache(use_cache);
                let timer = std::time::Instant::now();
                let exit = m.run(u64::MAX);
                let secs = timer.elapsed().as_secs_f64();
                let stats = m.cpu.stats();
                let observed = (exit, m.cpu.take_output(), stats.insts, stats.cycles);
                match &reference {
                    None => reference = Some(observed),
                    Some(r) if *r != observed => {
                        return Err(format!("interpreter divergence on {}", spec.key()))
                    }
                    Some(_) => {}
                }
                insts = stats.insts;
                if rep >= WARMUP {
                    best = best.min(secs);
                }
                if use_cache && rep == WARMUP + REPS - 1 {
                    let s = m.decode_cache_stats().expect("cache enabled");
                    hits += s.hits;
                    misses += s.misses;
                    invalidations += s.invalidations;
                }
            }
            let acc = if use_cache { &mut decoded } else { &mut raw };
            acc.0 += insts;
            acc.1 += best;
            if std::env::var_os("CFED_BENCH_VERBOSE").is_some() {
                eprintln!(
                    "cfed-campaign bench: interp     {} {} {:.1} MIPS",
                    spec.key(),
                    if use_cache { "decoded" } else { "raw" },
                    insts as f64 / best / 1e6
                );
            }
        }
    }
    let mips = |(insts, secs): (u64, f64)| {
        if secs > 0.0 {
            insts as f64 / secs / 1e6
        } else {
            0.0
        }
    };
    let (raw_mips, decoded_mips) = (mips(raw), mips(decoded));
    Ok(InterpPerf {
        raw_mips,
        decoded_mips,
        speedup: if raw_mips > 0.0 { decoded_mips / raw_mips } else { 0.0 },
        hits,
        misses,
        invalidations,
    })
}

/// Hard floor on native-JIT-over-decoded-interpreter guest throughput, in
/// milli-ratio units (2000 = 2.00x). Like the profiler-off gate this needs
/// no committed baseline — both laps run in the same invocation on the
/// same host, so the ratio self-normalizes — and a native backend that
/// cannot double the decoded interpreter is a regression outright.
const NATIVE_MIN_RATIO_MILLI: u64 = 2000;

/// Native-backend throughput measurement over the bench workloads.
struct NativePerf {
    native_mips: f64,
    decoded_mips: f64,
    /// Native-over-decoded-interpreter throughput ratio.
    over_decoded: f64,
}

/// Scale factor for the native laps. The @test instances retire ~10–30k
/// guest instructions, so the JIT's fixed per-run costs (code-buffer
/// mapping, block compilation) dominate and the measurement says nothing
/// about emitted-code throughput; at this scale each lap retires a few
/// million instructions and translation amortizes to noise, which is the
/// regime the backend exists for.
const NATIVE_BENCH_SCALE: u64 = 400;

/// Times the DBT's x86-64 native backend against the decoded interpreter
/// on the bench workloads at [`NATIVE_BENCH_SCALE`] (uninstrumented
/// baseline configuration; translation included and amortized). Every
/// native lap must retire bit-identically to a fused-interpreter DBT
/// reference run, and every interpreter lap must produce the same guest
/// output. Returns `None` where the native backend is unavailable
/// (non-x86-64 hosts, `CFED_NO_NATIVE=1`) so the record and gates degrade
/// gracefully. Laps interleave (alternating order) with the same
/// best-of-`REPS` discipline as [`bench_profiler_off_once`]; both MIPS
/// figures use the interpreter's guest instruction count as numerator, so
/// the ratio is a pure time ratio over identical guest work (the DBT's
/// own counter includes translation glue and would flatter it).
fn bench_native() -> Result<Option<NativePerf>, String> {
    if !cfed_dbt::native_enabled() {
        return Ok(None);
    }
    const WARMUP: usize = 1;
    const REPS: usize = 5;
    let scale = Scale::Custom(NATIVE_BENCH_SCALE);
    let specs = [WorkloadSpec::named("164.gzip", scale), WorkloadSpec::named("181.mcf", scale)];
    let cfg = RunConfig { max_insts: u64::MAX, ..RunConfig::baseline() };
    let mut native = (0u64, 0.0f64); // (guest insts, best-case seconds)
    let mut decoded = (0u64, 0.0f64);
    for spec in &specs {
        let image = spec.image()?;
        let reference = run_dbt_native_enabled(&image, &cfg, false);
        let mut best = [f64::INFINITY; 2]; // [decoded, native]
        let mut guest_insts = 0;
        for rep in 0..WARMUP + REPS {
            let order = if rep % 2 == 0 { [false, true] } else { [true, false] };
            for use_native in order {
                if use_native {
                    let timer = std::time::Instant::now();
                    let outcome = run_dbt_native_enabled(&image, &cfg, true);
                    let secs = timer.elapsed().as_secs_f64();
                    if outcome != reference {
                        return Err(format!("native-backend divergence on {}", spec.key()));
                    }
                    if rep >= WARMUP {
                        best[1] = best[1].min(secs);
                    }
                } else {
                    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
                    let timer = std::time::Instant::now();
                    let _ = m.run(u64::MAX);
                    let secs = timer.elapsed().as_secs_f64();
                    if m.cpu.take_output() != reference.output {
                        return Err(format!("native-vs-interpreter divergence on {}", spec.key()));
                    }
                    guest_insts = m.cpu.stats().insts;
                    if rep >= WARMUP {
                        best[0] = best[0].min(secs);
                    }
                }
            }
        }
        decoded.0 += guest_insts;
        decoded.1 += best[0];
        native.0 += guest_insts;
        native.1 += best[1];
        if std::env::var_os("CFED_BENCH_VERBOSE").is_some() {
            eprintln!(
                "cfed-campaign bench: native     {} decoded {:.1} MIPS, native {:.1} MIPS",
                spec.key(),
                guest_insts as f64 / best[0] / 1e6,
                guest_insts as f64 / best[1] / 1e6
            );
        }
    }
    let mips = |(insts, secs): (u64, f64)| {
        if secs > 0.0 {
            insts as f64 / secs / 1e6
        } else {
            0.0
        }
    };
    let (native_mips, decoded_mips) = (mips(native), mips(decoded));
    Ok(Some(NativePerf {
        native_mips,
        decoded_mips,
        over_decoded: if decoded_mips > 0.0 { native_mips / decoded_mips } else { 0.0 },
    }))
}

/// Hard floor on trace-tier-over-native-tier-1 guest throughput on the
/// hot-loop workload, in milli-ratio units (1200 = 1.20x). Self-normalizing
/// like the native floor: both laps run in the same invocation on the same
/// host, under the same native backend — the ratio isolates exactly what
/// the optimizing tier buys (measured ~1.4x; the floor leaves headroom for
/// runner jitter without ever accepting a tier that does not pay for
/// itself).
const TRACE_MIN_RATIO_MILLI: u64 = 1200;

/// Trace-tier throughput measurement.
struct TracePerf {
    trace_mips: f64,
    native_mips: f64,
    /// Trace-tier-over-native-tier-1 throughput ratio.
    over_native: f64,
}

/// The trace-tier bench workload: a hot multi-block loop nest, the regime
/// profile-guided trace formation exists for. Real campaign workloads
/// spread time across warm-but-not-hot code and measure the tier at only
/// ~1.0–1.1x; this loop spends its life inside a few superblocks, so the
/// measurement (and its regression gate) tracks the quality of the trace
/// pipeline — check hoisting, signature coalescing, dispatch elision —
/// rather than workload mix.
const TRACE_BENCH_SOURCE: &str = r#"
    fn main() {
        let outer = 0;
        let acc = 3;
        while (outer < 200) {
            let i = 0;
            while (i < 5000) {
                if (i % 4 == 1) { acc = acc * 2 - i; } else { acc = acc + i; }
                if (acc > 1000000) { acc = acc - 1000000; }
                i = i + 1;
            }
            outer = outer + 1;
        }
        out(acc);
    }
"#;

/// Times the profile-guided trace tier against tier-1 native execution on
/// [`TRACE_BENCH_SOURCE`] under EdgCF/CMOVcc (ALLBB policy) — the fully
/// instrumented configuration, where the tier's verified check hoisting
/// and signature-update coalescing have instructions to remove. Both laps
/// run the native backend; they differ only in tier formation. Every
/// tiered native lap must retire bit-identically to a tiered
/// fused-interpreter reference, and the tier-1 lap must produce the same
/// guest output. Returns `None` where the native backend or the tier is
/// unavailable (`CFED_NO_NATIVE=1`, `CFED_NO_TIER=1`, non-x86-64 hosts) so
/// the record and gates degrade gracefully. Both MIPS figures use the
/// tier-1 lap's retired guest instruction count as numerator, so the ratio
/// is a pure time ratio over identical guest work (the tiered run retires
/// fewer instructions — that being the point — and crediting it with its
/// own smaller count would understate the win).
fn bench_trace() -> Result<Option<TracePerf>, String> {
    if !cfed_dbt::native_enabled() || !cfed_dbt::tier_enabled() {
        return Ok(None);
    }
    const WARMUP: usize = 1;
    const REPS: usize = 5;
    let spec = WorkloadSpec::inline("trace-hot-loop", TRACE_BENCH_SOURCE);
    let image = spec.image()?;
    let cfg = RunConfig {
        style: UpdateStyle::CMov,
        max_insts: u64::MAX,
        ..RunConfig::technique(TechniqueKind::EdgCf)
    };
    let threshold = cfed_dbt::DEFAULT_COMPILE_THRESHOLD;
    let reference = run_dbt_tiered_enabled(&image, &cfg, threshold, false, true);
    if reference.dbt.traces == 0 {
        return Err("trace bench workload formed no traces".to_string());
    }
    let mut best = [f64::INFINITY; 2]; // [tier-1 native, trace tier]
    let mut guest_insts = 0;
    for rep in 0..WARMUP + REPS {
        let order = if rep % 2 == 0 { [false, true] } else { [true, false] };
        for use_tier in order {
            let timer = std::time::Instant::now();
            let outcome = run_dbt_tiered_enabled(&image, &cfg, threshold, true, use_tier);
            let secs = timer.elapsed().as_secs_f64();
            if use_tier {
                if outcome != reference {
                    return Err("trace-tier native divergence from fused reference".to_string());
                }
            } else {
                if outcome.output != reference.output {
                    return Err("tier-1 native divergence on trace bench".to_string());
                }
                guest_insts = outcome.insts;
            }
            if rep >= WARMUP {
                let slot = usize::from(use_tier);
                best[slot] = best[slot].min(secs);
            }
        }
    }
    if std::env::var_os("CFED_BENCH_VERBOSE").is_some() {
        eprintln!(
            "cfed-campaign bench: trace      tier-1 {:.1} MIPS, trace {:.1} MIPS ({} traces)",
            guest_insts as f64 / best[0] / 1e6,
            guest_insts as f64 / best[1] / 1e6,
            reference.dbt.traces
        );
    }
    let mips = |secs: f64| {
        if secs > 0.0 {
            guest_insts as f64 / secs / 1e6
        } else {
            0.0
        }
    };
    let (native_mips, trace_mips) = (mips(best[0]), mips(best[1]));
    Ok(Some(TracePerf {
        trace_mips,
        native_mips,
        over_native: if native_mips > 0.0 { trace_mips / native_mips } else { 0.0 },
    }))
}

/// Throughput of the profiler-capable dispatch with no profiler attached,
/// against the decoded loop invoked directly.
struct ProfilerOffPerf {
    dispatch_mips: f64,
    direct_mips: f64,
    /// How much guest throughput the *ability* to profile costs when
    /// profiling is off, in percent (floored at 0 — run-to-run jitter can
    /// make the dispatch path measure faster).
    overhead_pct: f64,
}

/// Measures what having the profiler hook in the dispatch path costs when
/// no profiler is attached: `Machine::run` (which checks for a profiler
/// once per run and falls through to the unprofiled fused loop) versus
/// calling `Cpu::run_decoded` directly on the same image. Both laps are
/// the same monomorphized interpreter; the gate asserts the profiler
/// plumbing stays off the hot path. Same best-of-`REPS` timing discipline
/// as [`bench_interp`], and the laps must retire bit-identical runs.
///
/// A measurement that lands at or above the gate budget is re-measured
/// once and the lower overhead kept: the paired laps differ by well under
/// 0.1% at steady state, but the first measurement of a freshly built
/// binary occasionally reads 1–2% high (cold page cache, frequency
/// ramp-up). A genuine hot-path regression reads high in both passes and
/// still trips the gate.
fn bench_profiler_off() -> Result<ProfilerOffPerf, String> {
    let first = bench_profiler_off_once()?;
    if first.overhead_pct < PROFILER_OFF_BUDGET_PCT {
        return Ok(first);
    }
    let second = bench_profiler_off_once()?;
    Ok(if second.overhead_pct < first.overhead_pct { second } else { first })
}

/// One full paired measurement (see [`bench_profiler_off`]).
fn bench_profiler_off_once() -> Result<ProfilerOffPerf, String> {
    const WARMUP: usize = 1;
    const REPS: usize = 7;
    let specs =
        [WorkloadSpec::named("164.gzip", Scale::Test), WorkloadSpec::named("181.mcf", Scale::Test)];
    let mut dispatch = (0u64, 0.0f64); // (guest insts, best-case seconds)
    let mut direct = (0u64, 0.0f64);
    for spec in &specs {
        let image = spec.image()?;
        let mut reference = None;
        let mut best = [f64::INFINITY; 2]; // [direct, dispatch]
        let mut insts = 0;
        // The laps interleave (alternating order each rep) so systematic
        // drift across the measurement — turbo ramp-up, cold page cache —
        // lands on both sides instead of biasing whichever ran second.
        for rep in 0..WARMUP + REPS {
            let order = if rep % 2 == 0 { [false, true] } else { [true, false] };
            for use_dispatch in order {
                let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
                let timer = std::time::Instant::now();
                let exit = if use_dispatch {
                    m.run(u64::MAX)
                } else {
                    let mut ic = m.icache.take().expect("decode cache attached by default");
                    m.cpu.run_decoded(&mut m.mem, &mut ic, u64::MAX)
                };
                let secs = timer.elapsed().as_secs_f64();
                let stats = m.cpu.stats();
                let observed = (exit, m.cpu.take_output(), stats.insts, stats.cycles);
                match &reference {
                    None => reference = Some(observed),
                    Some(r) if *r != observed => {
                        return Err(format!("dispatch divergence on {}", spec.key()))
                    }
                    Some(_) => {}
                }
                insts = stats.insts;
                if rep >= WARMUP {
                    let slot = &mut best[usize::from(use_dispatch)];
                    *slot = slot.min(secs);
                }
            }
        }
        direct.0 += insts;
        direct.1 += best[0];
        dispatch.0 += insts;
        dispatch.1 += best[1];
    }
    let mips = |(insts, secs): (u64, f64)| {
        if secs > 0.0 {
            insts as f64 / secs / 1e6
        } else {
            0.0
        }
    };
    let (dispatch_mips, direct_mips) = (mips(dispatch), mips(direct));
    let overhead_pct = if direct_mips > 0.0 {
        (100.0 * (direct_mips - dispatch_mips) / direct_mips).max(0.0)
    } else {
        0.0
    };
    Ok(ProfilerOffPerf { dispatch_mips, direct_mips, overhead_pct })
}

fn perf_record(perf: &RunPerf) -> Json {
    obj(vec![
        ("wall_ms", Json::UInt(perf.wall_ms)),
        ("executed_trials", Json::UInt(perf.executed_trials)),
        ("trials_per_sec_milli", Json::UInt((perf.trials_per_sec * 1000.0).round() as u64)),
        ("snapshot_sets", Json::UInt(perf.snapshots.snapshot_sets)),
        ("snapshots_held", Json::UInt(perf.snapshots.snapshots)),
        ("snapshot_bytes", Json::UInt(perf.snapshots.bytes)),
        ("restores", Json::UInt(perf.snapshots.restores)),
        ("misses", Json::UInt(perf.snapshots.misses)),
        ("branches_fast_forwarded", Json::UInt(perf.snapshots.branches_fast_forwarded)),
        ("branches_stepped", Json::UInt(perf.snapshots.branches_stepped)),
        ("benign_pruned", Json::UInt(perf.snapshots.benign_pruned)),
    ])
}

fn run_bench(argv: &[String]) {
    let args = Parser::new(
        "cfed-campaign bench",
        "fixed-seed smoke campaign timing the fast-forward engine (the CI perf gate)",
    )
    .flag("trials", "N", "192", "injections per workload per configuration")
    .flag("threads", "N", "0", "worker threads (0 = all cores)")
    .flag("seed", "SEED", "3488423942", "campaign RNG seed")
    .flag("out", "PATH", "BENCH_campaign.json", "write the benchmark record here")
    .flag(
        "baseline",
        "PATH",
        "",
        "committed benchmark record to gate against; exit 1 when >25% slower",
    )
    .switch("quiet", "suppress stderr progress output")
    .parse_from(argv);
    let die = |message: String| -> ! {
        eprintln!("cfed-campaign bench: {message}");
        std::process::exit(2);
    };
    let trials = args.get_u64("trials").unwrap_or_else(|e| die(e));
    let threads = args.get_usize("threads").unwrap_or_else(|e| die(e));
    let seed = args.get_u64("seed").unwrap_or_else(|e| die(e));
    let quiet = args.has("quiet");
    let out = PathBuf::from(args.get("out").expect("has default"));

    let matrix = bench_matrix(trials, seed);
    let cells = matrix.cells();
    let shards = CampaignMatrix::shards(&cells).len();
    if !quiet {
        eprintln!(
            "cfed-campaign bench: {} cells, {shards} shards, {} trials/cell, seed {seed}",
            cells.len(),
            trials
        );
    }

    let run_pass = |label: &str, snapshots: bool| -> RunSummary {
        let options = RunnerOptions { threads, quiet: true, snapshots, ..Default::default() };
        let summary = run_matrix(&matrix, label, None, &options).unwrap_or_else(|e| die(e));
        if !summary.complete() {
            let failures: Vec<&String> = summary.cells.iter().flat_map(|c| &c.failures).collect();
            die(format!("{label} pass had failed shards: {failures:?}"));
        }
        if !quiet {
            eprintln!(
                "cfed-campaign bench: {label:<9} {:>7.1} trials/s ({} trials in {} ms)",
                summary.perf.trials_per_sec, summary.perf.executed_trials, summary.perf.wall_ms
            );
        }
        summary
    };
    let scratch = run_pass("scratch", false);
    let snap = run_pass("snapshots", true);

    // The fast path must be an optimization, not a different experiment:
    // identical tallies, trial for trial.
    for (a, b) in snap.cells.iter().zip(&scratch.cells) {
        let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
        for c in Category::ALL {
            if ra.category(c) != rb.category(c) {
                die(format!("outcome divergence in cell {} category {c}", a.key));
            }
        }
        if ra.skipped != rb.skipped || ra.latency_totals() != rb.latency_totals() {
            die(format!("outcome divergence in cell {}", a.key));
        }
    }

    let interp = bench_interp().unwrap_or_else(|e| die(e));
    if !quiet {
        eprintln!(
            "cfed-campaign bench: interp     raw {:.1} MIPS, decoded {:.1} MIPS ({:.2}x)",
            interp.raw_mips, interp.decoded_mips, interp.speedup
        );
    }
    let native = bench_native().unwrap_or_else(|e| die(e));
    if !quiet {
        match &native {
            Some(n) => eprintln!(
                "cfed-campaign bench: native     {:.1} MIPS vs decoded {:.1} MIPS ({:.2}x)",
                n.native_mips, n.decoded_mips, n.over_decoded
            ),
            None => eprintln!("cfed-campaign bench: native     backend unavailable on this host"),
        }
    }
    let trace = bench_trace().unwrap_or_else(|e| die(e));
    if !quiet {
        match &trace {
            Some(t) => eprintln!(
                "cfed-campaign bench: trace      {:.1} MIPS vs tier-1 native {:.1} MIPS ({:.2}x)",
                t.trace_mips, t.native_mips, t.over_native
            ),
            None => eprintln!("cfed-campaign bench: trace      tier unavailable on this host"),
        }
    }
    let prof_off = bench_profiler_off().unwrap_or_else(|e| die(e));
    if !quiet {
        eprintln!(
            "cfed-campaign bench: prof-off   dispatch {:.1} MIPS, direct {:.1} MIPS ({:.2}% \
             overhead)",
            prof_off.dispatch_mips, prof_off.direct_mips, prof_off.overhead_pct
        );
    }

    let speedup = if scratch.perf.trials_per_sec > 0.0 {
        snap.perf.trials_per_sec / scratch.perf.trials_per_sec
    } else {
        0.0
    };
    // Same source and fallback as `resolved_threads`, so the recorded pair
    // is always consistent (`threads_resolved <= cpus`); the old record
    // could claim 2 resolved workers on a 1-CPU host.
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let resolved = RunnerOptions { threads, ..Default::default() }.resolved_threads();
    let record = obj(vec![
        ("schema", Json::Str("cfed-bench-campaign-v2".to_string())),
        (
            "host",
            obj(vec![
                ("os", Json::Str(std::env::consts::OS.to_string())),
                ("arch", Json::Str(std::env::consts::ARCH.to_string())),
                ("cpus", Json::UInt(cpus as u64)),
                ("threads_requested", Json::UInt(threads as u64)),
                ("threads_resolved", Json::UInt(resolved as u64)),
            ]),
        ),
        (
            "matrix",
            obj(vec![
                ("workloads", Json::UInt(matrix.workloads.len() as u64)),
                ("cells", Json::UInt(cells.len() as u64)),
                ("shards", Json::UInt(shards as u64)),
                ("trials_per_cell", Json::UInt(trials)),
                ("seed", Json::UInt(seed)),
            ]),
        ),
        ("snapshots", perf_record(&snap.perf)),
        ("scratch", perf_record(&scratch.perf)),
        ("speedup_milli", Json::UInt((speedup * 1000.0).round() as u64)),
        (
            "interp",
            obj(vec![
                ("raw_mips_milli", Json::UInt((interp.raw_mips * 1000.0).round() as u64)),
                ("decoded_mips_milli", Json::UInt((interp.decoded_mips * 1000.0).round() as u64)),
                ("decode_hits", Json::UInt(interp.hits)),
                ("decode_misses", Json::UInt(interp.misses)),
                ("decode_invalidations", Json::UInt(interp.invalidations)),
            ]),
        ),
        ("interp_speedup_milli", Json::UInt((interp.speedup * 1000.0).round() as u64)),
        (
            "profiler_off_overhead_pct_milli",
            Json::UInt((prof_off.overhead_pct * 1000.0).round() as u64),
        ),
    ]);
    // The native keys are present only where the backend ran: records from
    // non-x86-64 hosts stay valid, and readers treat the absent keys as
    // "not measured" rather than zero.
    let record = match &native {
        Some(n) => {
            let mut with_native = match record {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("record is an object"),
            };
            with_native.push((
                "native_mips_milli".to_string(),
                Json::UInt((n.native_mips * 1000.0).round() as u64),
            ));
            with_native.push((
                "native_over_decoded_milli".to_string(),
                Json::UInt((n.over_decoded * 1000.0).round() as u64),
            ));
            Json::Obj(with_native)
        }
        None => record,
    };
    // Likewise for the trace-tier keys: absent where the tier (or the
    // native backend underneath it) could not run.
    let record = match &trace {
        Some(t) => {
            let mut with_trace = match record {
                Json::Obj(pairs) => pairs,
                _ => unreachable!("record is an object"),
            };
            with_trace.push((
                "trace_mips_milli".to_string(),
                Json::UInt((t.trace_mips * 1000.0).round() as u64),
            ));
            with_trace.push((
                "trace_over_native_milli".to_string(),
                Json::UInt((t.over_native * 1000.0).round() as u64),
            ));
            Json::Obj(with_trace)
        }
        None => record,
    };
    std::fs::write(&out, record.render() + "\n")
        .unwrap_or_else(|e| die(format!("writing {}: {e}", out.display())));
    println!(
        "bench: snapshots {:.1} trials/s, scratch {:.1} trials/s, speedup {speedup:.2}x -> {}",
        snap.perf.trials_per_sec,
        scratch.perf.trials_per_sec,
        out.display()
    );
    println!(
        "bench: interpreter raw {:.1} MIPS, decoded {:.1} MIPS, speedup {:.2}x",
        interp.raw_mips, interp.decoded_mips, interp.speedup
    );
    // Unlike the two speedup gates, the profiler-off gate needs no committed
    // baseline: both laps run in this invocation on this host, so the
    // overhead ratio is self-normalizing and the budget is absolute.
    if prof_off.overhead_pct >= PROFILER_OFF_BUDGET_PCT {
        eprintln!(
            "cfed-campaign bench: PERF REGRESSION — profiler-capable dispatch costs {:.2}% \
             interpreter throughput with profiling off (budget <{PROFILER_OFF_BUDGET_PCT}%)",
            prof_off.overhead_pct
        );
        std::process::exit(1);
    }
    println!(
        "bench: profiler off costs {:.2}% interpreter throughput (budget <{}%)",
        prof_off.overhead_pct, PROFILER_OFF_BUDGET_PCT
    );
    // The native floor is likewise self-normalizing (native and decoded
    // laps share the invocation), so it gates absolutely wherever the
    // backend runs at all.
    match &native {
        Some(n) => {
            let ratio_milli = (n.over_decoded * 1000.0).round() as u64;
            if ratio_milli < NATIVE_MIN_RATIO_MILLI {
                eprintln!(
                    "cfed-campaign bench: PERF REGRESSION — native backend is only {:.2}x the \
                     decoded interpreter (floor {:.2}x)",
                    n.over_decoded,
                    NATIVE_MIN_RATIO_MILLI as f64 / 1000.0
                );
                std::process::exit(1);
            }
            println!(
                "bench: native backend {:.1} MIPS, {:.2}x over decoded (floor {:.2}x)",
                n.native_mips,
                n.over_decoded,
                NATIVE_MIN_RATIO_MILLI as f64 / 1000.0
            );
        }
        None => println!("bench: native backend unavailable on this host; native gate skipped"),
    }
    // The trace-tier floor shares the self-normalizing structure: both laps
    // run in this invocation under the same native backend, so the ratio
    // gates absolutely wherever the tier runs at all.
    match &trace {
        Some(t) => {
            let ratio_milli = (t.over_native * 1000.0).round() as u64;
            if ratio_milli < TRACE_MIN_RATIO_MILLI {
                eprintln!(
                    "cfed-campaign bench: PERF REGRESSION — trace tier is only {:.2}x tier-1 \
                     native on the hot-loop workload (floor {:.2}x)",
                    t.over_native,
                    TRACE_MIN_RATIO_MILLI as f64 / 1000.0
                );
                std::process::exit(1);
            }
            println!(
                "bench: trace tier {:.1} MIPS, {:.2}x over tier-1 native (floor {:.2}x)",
                t.trace_mips,
                t.over_native,
                TRACE_MIN_RATIO_MILLI as f64 / 1000.0
            );
        }
        None => println!("bench: trace tier unavailable on this host; trace gate skipped"),
    }

    if let Some(baseline_path) = args.get("baseline").filter(|s| !s.is_empty()) {
        let text = std::fs::read_to_string(baseline_path)
            .unwrap_or_else(|e| die(format!("reading baseline {baseline_path}: {e}")));
        let baseline = cfed_telemetry::json::parse(&text)
            .unwrap_or_else(|e| die(format!("parsing baseline {baseline_path}: {e}")));
        let gate = |name: &str, current_milli: u64, base_milli: u64| {
            let floor = base_milli * (100 - BASELINE_TOLERANCE_PCT) / 100;
            if current_milli < floor {
                eprintln!(
                    "cfed-campaign bench: PERF REGRESSION — {name} {:.2}x is more than {}% below \
                     the baseline {:.2}x",
                    current_milli as f64 / 1000.0,
                    BASELINE_TOLERANCE_PCT,
                    base_milli as f64 / 1000.0
                );
                std::process::exit(1);
            }
            println!(
                "bench: {name} within budget of baseline {:.2}x (floor {:.2}x)",
                base_milli as f64 / 1000.0,
                floor as f64 / 1000.0
            );
        };
        let base_speedup = baseline
            .get("speedup_milli")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| die(format!("baseline {baseline_path} has no speedup_milli")));
        gate("snapshot speedup", (speedup * 1000.0).round() as u64, base_speedup);
        // Records predating schema v2 have no interpreter section; the gate
        // engages once a v2 baseline is committed.
        match baseline.get("interp_speedup_milli").and_then(Json::as_u64) {
            Some(base_interp) => {
                gate("interp speedup", (interp.speedup * 1000.0).round() as u64, base_interp)
            }
            None => println!("bench: baseline has no interp_speedup_milli; interp gate skipped"),
        }
        // Same pattern for the native ratio: records predating the native
        // backend (or written on non-x86-64 hosts) simply lack the key.
        match (baseline.get("native_over_decoded_milli").and_then(Json::as_u64), &native) {
            (Some(base_native), Some(n)) => {
                gate("native speedup", (n.over_decoded * 1000.0).round() as u64, base_native)
            }
            (Some(_), None) => {
                println!("bench: native backend unavailable on this host; native gate skipped")
            }
            (None, _) => {
                println!("bench: baseline has no native_over_decoded_milli; native gate skipped")
            }
        }
        // And the trace-tier ratio: absent from records written before the
        // tier existed or on hosts where it could not run.
        match (baseline.get("trace_over_native_milli").and_then(Json::as_u64), &trace) {
            (Some(base_trace), Some(t)) => {
                gate("trace speedup", (t.over_native * 1000.0).round() as u64, base_trace)
            }
            (Some(_), None) => {
                println!("bench: trace tier unavailable on this host; trace gate skipped")
            }
            (None, _) => {
                println!("bench: baseline has no trace_over_native_milli; trace gate skipped")
            }
        }
    }
}

fn report_progress(run: &RunSummary) {
    eprintln!(
        "cfed-campaign: executed {} shards, resumed {} from checkpoints",
        run.executed_shards, run.resumed_shards
    );
}

/// Sums category tallies across one configuration's workload cells.
fn technique_totals(
    matrix: &CampaignMatrix,
    summary: &RunSummary,
    technique: Option<TechniqueKind>,
    style: UpdateStyle,
) -> (Vec<(Category, CategoryStats)>, u64) {
    let mut totals: Vec<(Category, CategoryStats)> =
        Category::ALL.iter().map(|&c| (c, CategoryStats::default())).collect();
    let mut missing = 0u64;
    for (cell, result) in matrix.cells().iter().zip(&summary.cells) {
        if cell.config.technique != technique || cell.config.style != style {
            continue;
        }
        let Some(report) = result.report.as_ref() else {
            missing += 1;
            continue;
        };
        for (c, slot) in &mut totals {
            let s = report.category(*c);
            slot.detected_check += s.detected_check;
            slot.detected_hw += s.detected_hw;
            slot.other_fault += s.other_fault;
            slot.benign += s.benign;
            slot.sdc += s.sdc;
            slot.timeout += s.timeout;
        }
    }
    (totals, missing)
}

fn render_coverage(
    matrix: &CampaignMatrix,
    summary: &RunSummary,
    style: UpdateStyle,
    techniques: &[Option<TechniqueKind>],
) -> String {
    let mut out = String::new();
    for &technique in techniques {
        let (totals, missing) = technique_totals(matrix, summary, technique, style);
        let name = technique.map_or("baseline".to_string(), |k| k.to_string());
        let _ = writeln!(out, "\n== {name} ==");
        if missing > 0 {
            let _ = writeln!(out, "   ({missing} workload cells missing — run incomplete)");
        }
        let _ = writeln!(
            out,
            "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>8}",
            "Category", "chk", "hw", "fault", "benign", "SDC", "timeout", "coverage"
        );
        let _ = writeln!(out, "{}", "-".repeat(72));
        for (c, s) in &totals {
            if s.total() == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{:>9} | {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>7.1}%",
                c.to_string(),
                s.detected_check,
                s.detected_hw,
                s.other_fault,
                s.benign,
                s.sdc,
                s.timeout,
                100.0 * s.coverage()
            );
        }
    }
    out
}

fn render_latency(matrix: &CampaignMatrix, summary: &RunSummary) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>8} | {:>16} | {:>12}", "policy", "mean latency", "check share");
    let _ = writeln!(out, "{}", "-".repeat(44));
    for policy in CheckPolicy::ALL {
        let mut lat_sum = 0.0;
        let mut lat_n = 0u64;
        let mut chk = 0u64;
        let mut hw = 0u64;
        for (cell, result) in matrix.cells().iter().zip(&summary.cells) {
            if cell.config.policy != policy {
                continue;
            }
            let Some(report) = result.report.as_ref() else { continue };
            if let Some(l) = report.mean_detection_latency() {
                lat_sum += l;
                lat_n += 1;
            }
            let t = report.sdc_prone_total();
            chk += t.detected_check;
            hw += t.detected_hw + t.other_fault;
        }
        let mean = if lat_n > 0 { lat_sum / lat_n as f64 } else { f64::NAN };
        let share = if chk + hw > 0 { chk as f64 / (chk + hw) as f64 } else { 0.0 };
        let _ = writeln!(
            out,
            "{:>8} | {:>11.0} insts | {:>11.1}%",
            policy.to_string(),
            mean,
            100.0 * share
        );
    }
    out
}
