//! The campaign coordinator: leases work units to connected workers,
//! handles worker failure via lease expiry / disconnect with bounded
//! retry, and is the single writer of the checkpointed result stores.
//!
//! A work unit is one shard of one matrix cell — exactly the unit the
//! JSONL store keys (`{cell key}#{shard index}`) — so the service is
//! idempotent end to end: duplicate results are dropped by key, a resumed
//! store skips persisted units, and the merged report is byte-identical
//! to a single-process run for any worker count, schedule, or crash/retry
//! history.
//!
//! ## Lease/retry state machine
//!
//! ```text
//! pending ──lease──▶ leased ──result──▶ done (appended, flushed)
//!    ▲                  │
//!    │   fail frame / lease expiry / worker disconnect
//!    └── attempts < max? re-queue after backoff : failed (appended)
//! ```
//!
//! Every failed or expired attempt emits the same `shard_failed`
//! telemetry event the in-process pool emits, with `retried:1` while the
//! retry budget lasts. A worker that accumulates [`MAX_STRIKES`] expired
//! leases is quarantined: its connection stays open (late results are
//! still accepted) but it is never leased to again.
//!
//! ## Backpressure
//!
//! Each worker holds at most `min(its advertised slots, max_inflight)`
//! outstanding leases; results and control frames are never dropped.
//! Telemetry events stream through the *worker's* bounded queue
//! ([`cfed_telemetry::ChannelSink`]) — when a slow coordinator link fills
//! it, events are dropped and counted there, and the cumulative drop
//! count rides back on every result frame into [`ServeStats`].

use std::collections::{HashMap, VecDeque};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use cfed_runner::matrix::{CampaignMatrix, CellSpec};
use cfed_runner::retry::RetryPolicy;
use cfed_runner::store::{CampaignStore, ShardTallies, StoreHeader};
use cfed_telemetry::json::{obj, Json};
use cfed_telemetry::{Event, EventSink, FlightRecorder, Profile, Telemetry};

use crate::http::LiveView;
use crate::proto::{matrix_to_json, read_frame, tag, write_frame};
use crate::stats::ServeStats;

/// Expired leases a worker may accumulate before the coordinator stops
/// leasing to it (its connection stays open for late results).
pub const MAX_STRIKES: u32 = 2;

/// Flight-recorder window: the scheduler's telemetry is teed through a
/// bounded ring of this many recent events, dumped (as a `flight_dump`
/// event straight to the configured sink, bypassing the ring so windows
/// never nest) on SIGINT drain, worker loss mid-unit, and quarantine.
const FLIGHT_WINDOW: usize = 64;

/// One phase of a campaign: a matrix persisted to its own store file.
#[derive(Debug, Clone)]
pub struct PhasePlan {
    /// Phase label (progress and `serve_stats` reporting).
    pub label: String,
    /// The matrix to execute.
    pub matrix: CampaignMatrix,
    /// The JSONL store path (created or resumed).
    pub store: PathBuf,
}

/// Coordinator configuration.
#[derive(Clone)]
pub struct CoordinatorOptions {
    /// TCP listen address for workers (e.g. `127.0.0.1:0`).
    pub listen: String,
    /// Optional HTTP listen address for `/report`, `/progress`, `/healthz`.
    pub http: Option<String>,
    /// Lease deadline: a unit not answered within this window is treated
    /// as failed and re-queued under the retry policy.
    pub lease_ms: u64,
    /// Bounded retry with backoff for failed/expired units — the same
    /// policy type the in-process pool applies to failed shards.
    pub retry: RetryPolicy,
    /// Hard cap on outstanding leases per worker (backpressure), applied
    /// on top of each worker's advertised slot count.
    pub max_inflight: usize,
    /// Suppress stderr progress output.
    pub quiet: bool,
    /// Structured-event handle; receives `shard_done`, `shard_failed`,
    /// `serve_stats`, and forwarded worker events (as `worker_event`).
    pub telemetry: Telemetry,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions {
            listen: "127.0.0.1:0".to_string(),
            http: None,
            lease_ms: 60_000,
            retry: RetryPolicy::default(),
            max_inflight: 4,
            quiet: false,
            telemetry: Telemetry::off(),
        }
    }
}

/// Per-phase outcome.
#[derive(Debug)]
pub struct PhaseSummary {
    /// Phase label.
    pub label: String,
    /// Total units in the phase.
    pub total_units: u64,
    /// Units persisted as done (including resumed ones).
    pub done_units: u64,
    /// Units persisted as permanently failed.
    pub failed_units: u64,
    /// Units skipped because the store already held them.
    pub resumed_units: u64,
}

impl PhaseSummary {
    /// Whether every unit completed successfully.
    pub fn complete(&self) -> bool {
        self.done_units == self.total_units
    }
}

/// Outcome of a coordinator run.
#[derive(Debug)]
pub struct CoordinatorSummary {
    /// One entry per phase, in plan order.
    pub phases: Vec<PhaseSummary>,
    /// Service counters summed over all phases.
    pub stats: ServeStats,
    /// Whether the run was stopped early (stop flag / SIGINT drain).
    pub stopped: bool,
}

impl CoordinatorSummary {
    /// Whether every phase completed every unit.
    pub fn complete(&self) -> bool {
        !self.stopped && self.phases.iter().all(PhaseSummary::complete)
    }
}

/// Shared write half of a worker connection.
#[derive(Clone)]
struct Writer(Arc<Mutex<TcpStream>>);

impl Writer {
    fn send(&self, v: &Json) -> Result<(), String> {
        write_frame(&mut *self.0.lock().expect("writer poisoned"), v)
    }

    fn close(&self) {
        let _ = self.0.lock().expect("writer poisoned").shutdown(std::net::Shutdown::Both);
    }
}

enum CoordMsg {
    /// A connection appeared; the writer half is registered eagerly so
    /// the scheduler can answer its `hello`.
    Connected { conn: usize, writer: Writer },
    /// A frame arrived from a connection.
    Frame { conn: usize, frame: Json },
    /// The connection closed or its reader failed.
    Gone { conn: usize },
}

struct WorkerConn {
    writer: Writer,
    name: String,
    slots: usize,
    /// Keys of units currently leased to this worker.
    inflight: Vec<String>,
    /// Expired leases; at [`MAX_STRIKES`] the worker is quarantined.
    strikes: u32,
    alive: bool,
    hello: bool,
    /// Last cumulative event-drop count reported by the worker.
    dropped_seen: u64,
}

struct Unit {
    cell: usize,
    shard: u64,
    key: String,
    /// Not leased before this instant (retry backoff).
    ready_at: Instant,
}

struct Lease {
    conn: usize,
    deadline: Instant,
}

/// A bound coordinator: listeners are open (so the address is known and
/// workers may already connect) but no campaign runs until
/// [`Coordinator::run`].
pub struct Coordinator {
    listener: TcpListener,
    addr: String,
    http_addr: Option<String>,
    http_handle: Option<std::thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
    live: Arc<LiveView>,
    options: CoordinatorOptions,
}

impl Coordinator {
    /// Binds the worker listener (and the HTTP listener, when configured).
    ///
    /// # Errors
    ///
    /// Returns a message when an address cannot be bound.
    pub fn bind(options: CoordinatorOptions) -> Result<Coordinator, String> {
        let listener = TcpListener::bind(&options.listen)
            .map_err(|e| format!("binding {}: {e}", options.listen))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("resolving listen address: {e}"))?
            .to_string();
        let live = Arc::new(LiveView::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let (http_addr, http_handle) = match &options.http {
            Some(http) => {
                let http_listener =
                    TcpListener::bind(http).map_err(|e| format!("binding http {http}: {e}"))?;
                let bound = http_listener
                    .local_addr()
                    .map_err(|e| format!("resolving http address: {e}"))?
                    .to_string();
                let handle =
                    crate::http::spawn(http_listener, Arc::clone(&live), Arc::clone(&shutdown));
                (Some(bound), Some(handle))
            }
            None => (None, None),
        };
        Ok(Coordinator { listener, addr, http_addr, http_handle, shutdown, live, options })
    }

    /// The bound worker address (resolves `:0` to the actual port).
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// The bound HTTP address, when HTTP is enabled.
    pub fn http_addr(&self) -> Option<&str> {
        self.http_addr.as_deref()
    }

    /// The live state the HTTP endpoints render.
    pub fn live(&self) -> Arc<LiveView> {
        Arc::clone(&self.live)
    }

    /// Runs the campaign phases to completion (or until `stop` is set:
    /// leasing halts, in-flight units drain, and the stores are left
    /// checkpointed for a later resume).
    ///
    /// # Errors
    ///
    /// Returns a message on store I/O errors; worker failures are handled
    /// by the retry machinery, not surfaced here.
    pub fn run(
        mut self,
        run_id: &str,
        phases: &[PhasePlan],
        stop: Option<Arc<AtomicBool>>,
    ) -> Result<CoordinatorSummary, String> {
        let (tx, rx) = mpsc::channel::<CoordMsg>();
        let accept_handle = spawn_acceptor(
            self.listener.try_clone().map_err(|e| format!("cloning listener: {e}"))?,
            tx.clone(),
            Arc::clone(&self.shutdown),
        );

        // Always-on flight recorder: tee in front of the configured sink
        // (or stand alone when telemetry is off) so anomaly paths can dump
        // the recent-event window without changing what downstream sees.
        let flight = Arc::new(match self.options.telemetry.sink() {
            Some(inner) => FlightRecorder::tee(FLIGHT_WINDOW, inner),
            None => FlightRecorder::new(FLIGHT_WINDOW),
        });
        let mut state = SchedulerState {
            workers: HashMap::new(),
            run_id: run_id.to_string(),
            options: self.options.clone(),
            live: Arc::clone(&self.live),
            stats_total: ServeStats::default(),
            stopped: false,
            telemetry: Telemetry::to(Arc::clone(&flight) as Arc<dyn EventSink>),
            flight,
        };
        let stop_flag = stop.unwrap_or_else(|| Arc::new(AtomicBool::new(false)));

        let mut summaries = Vec::with_capacity(phases.len());
        for (index, plan) in phases.iter().enumerate() {
            let summary = state.run_phase(index, plan, &rx, &stop_flag)?;
            summaries.push(summary);
            if state.stopped {
                break;
            }
        }

        // Campaign over: tell every worker to drain and exit, then tear
        // down the listener threads and reader sockets.
        for worker in state.workers.values() {
            if worker.hello && worker.alive {
                let _ = worker.writer.send(&obj(vec![("t", Json::Str("bye".to_string()))]));
            }
        }
        self.live.finish();
        self.shutdown.store(true, Ordering::Relaxed);
        for worker in state.workers.values() {
            worker.writer.close();
        }
        drop(tx);
        let _ = accept_handle.join();
        if let Some(handle) = self.http_handle.take() {
            let _ = handle.join();
        }
        Ok(CoordinatorSummary {
            phases: summaries,
            stats: state.stats_total.clone(),
            stopped: state.stopped,
        })
    }
}

fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<CoordMsg>,
    shutdown: Arc<AtomicBool>,
) -> std::thread::JoinHandle<()> {
    let _ = listener.set_nonblocking(true);
    std::thread::spawn(move || {
        let mut next_conn = 0usize;
        loop {
            if shutdown.load(Ordering::Relaxed) {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    let _ = stream.set_nodelay(true);
                    let conn = next_conn;
                    next_conn += 1;
                    let Ok(read_half) = stream.try_clone() else { continue };
                    let writer = Writer(Arc::new(Mutex::new(stream)));
                    if tx.send(CoordMsg::Connected { conn, writer }).is_err() {
                        break;
                    }
                    let tx = tx.clone();
                    std::thread::spawn(move || {
                        let mut read_half = read_half;
                        while let Ok(Some(frame)) = read_frame(&mut read_half) {
                            if tx.send(CoordMsg::Frame { conn, frame }).is_err() {
                                break;
                            }
                        }
                        let _ = tx.send(CoordMsg::Gone { conn });
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(15));
                }
                Err(_) => break,
            }
        }
    })
}

struct SchedulerState {
    workers: HashMap<usize, WorkerConn>,
    run_id: String,
    options: CoordinatorOptions,
    live: Arc<LiveView>,
    stats_total: ServeStats,
    stopped: bool,
    /// Scheduler events routed through the flight-recorder tee.
    telemetry: Telemetry,
    flight: Arc<FlightRecorder>,
}

/// Everything one phase needs while its scheduler loop runs.
struct PhaseRun {
    index: usize,
    cells: Vec<CellSpec>,
    /// The `phase` frame announced to present and future workers.
    announce: Json,
    store: CampaignStore,
    pending: VecDeque<Unit>,
    leases: HashMap<String, Lease>,
    attempts: HashMap<String, u32>,
    /// Units not yet resolved (done or permanently failed) this phase.
    remaining: u64,
    total: u64,
    stats: ServeStats,
}

impl SchedulerState {
    fn run_phase(
        &mut self,
        index: usize,
        plan: &PhasePlan,
        rx: &Receiver<CoordMsg>,
        stop: &AtomicBool,
    ) -> Result<PhaseSummary, String> {
        let cells = plan.matrix.cells();
        let all_units = CampaignMatrix::shards(&cells);
        let header = StoreHeader {
            run_id: self.run_id.clone(),
            seed: plan.matrix.seed,
            trials: plan.matrix.trials,
            shard_trials: CampaignMatrix::shard_trials(),
            digest: CampaignMatrix::digest(&cells),
            total_shards: all_units.len() as u64,
        };
        let store = CampaignStore::open(&plan.store, &header)?;
        let pending: VecDeque<Unit> = all_units
            .iter()
            .filter_map(|t| {
                let key = t.key(&cells);
                if store.done.contains_key(&key) {
                    return None;
                }
                Some(Unit { cell: t.cell, shard: t.shard_index, key, ready_at: Instant::now() })
            })
            .collect();
        let resumed_units = all_units.len() as u64 - pending.len() as u64;
        let remaining = pending.len() as u64;
        self.live.begin_phase(
            &self.run_id,
            &plan.label,
            header,
            store.done.clone(),
            store.failed.clone(),
        );
        if !self.options.quiet {
            eprintln!(
                "cfed-serve: phase {} — {} units ({} resumed), store {}",
                plan.label,
                all_units.len(),
                resumed_units,
                plan.store.display()
            );
        }

        let mut phase = PhaseRun {
            index,
            cells,
            announce: obj(vec![
                ("t", Json::Str("phase".to_string())),
                ("phase", Json::UInt(index as u64)),
                ("label", Json::Str(plan.label.clone())),
                ("matrix", matrix_to_json(&plan.matrix)),
            ]),
            store,
            pending,
            leases: HashMap::new(),
            attempts: HashMap::new(),
            remaining,
            total: all_units.len() as u64,
            stats: ServeStats::default(),
        };

        // A phase only ends once nothing is leased or pending, so leases
        // never carry across phases — but clear the per-worker in-flight
        // bookkeeping in case an expired-then-resolved unit left a stale
        // entry eating lease capacity.
        for worker in self.workers.values_mut() {
            worker.inflight.clear();
            if worker.hello && worker.alive && worker.writer.send(&phase.announce).is_err() {
                worker.alive = false;
            }
        }

        while phase.remaining > 0 {
            if stop.load(Ordering::Relaxed) && !self.stopped {
                self.stopped = true;
                // Straight to the configured sink (not through the ring):
                // the window must never contain earlier windows.
                self.options.telemetry.emit_with(|| self.flight.dump_event("sigint"));
                if !self.options.quiet {
                    eprintln!(
                        "cfed-serve: stop requested — draining {} in-flight unit(s)",
                        phase.leases.len()
                    );
                }
            }
            if self.stopped && phase.leases.is_empty() {
                break;
            }
            if !self.stopped {
                self.assign(&mut phase);
            }
            match rx.recv_timeout(Duration::from_millis(25)) {
                Ok(msg) => self.handle(msg, &mut phase)?,
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.expire(&mut phase)?;
            // Keep `/progress` and `/metrics` current mid-phase: publish
            // run-so-far counters (prior phases + this one) and the
            // per-worker in-flight lease counts every loop tick.
            let mut live_stats = self.stats_total.clone();
            live_stats.absorb(&phase.stats);
            self.live.set_stats(live_stats);
            self.publish_inflight();
        }

        // Phase accounting: persist the service counters as a meta record
        // (invisible to the report) and emit the serve_stats event.
        let stats = phase.stats.clone();
        phase.store.append_meta("serve_stats", stats.to_meta_fields())?;
        self.telemetry.emit_with(|| stats.to_event());
        self.stats_total.absorb(&stats);
        self.live.set_stats(self.stats_total.clone());
        let done_units = phase.store.done.len() as u64;
        let failed_units = phase.store.failed.len() as u64;
        if !self.options.quiet {
            eprintln!(
                "cfed-serve: phase {} {} — {}/{} units done ({} failed, {} retried attempt(s))",
                plan.label,
                if self.stopped { "checkpointed" } else { "complete" },
                done_units,
                phase.total,
                failed_units,
                stats.retried,
            );
        }
        Ok(PhaseSummary {
            label: plan.label.clone(),
            total_units: phase.total,
            done_units,
            failed_units,
            resumed_units,
        })
    }

    /// Leases ready units to live workers with spare capacity.
    fn assign(&mut self, phase: &mut PhaseRun) {
        let now = Instant::now();
        let cap = self.options.max_inflight.max(1);
        loop {
            // Next ready unit, respecting retry backoff.
            let Some(pos) = phase.pending.iter().position(|u| u.ready_at <= now) else {
                return;
            };
            // Least-loaded live worker with a free lease slot.
            let Some((&conn, worker)) = self
                .workers
                .iter_mut()
                .filter(|(_, w)| {
                    w.hello
                        && w.alive
                        && w.strikes < MAX_STRIKES
                        && w.inflight.len() < cap.min(w.slots.max(1))
                })
                .min_by_key(|(_, w)| w.inflight.len())
            else {
                return;
            };
            let unit = phase.pending.remove(pos).expect("position valid");
            let lease = obj(vec![
                ("t", Json::Str("lease".to_string())),
                ("phase", Json::UInt(phase.index as u64)),
                ("cell", Json::UInt(unit.cell as u64)),
                ("shard", Json::UInt(unit.shard)),
                ("key", Json::Str(unit.key.clone())),
            ]);
            if worker.writer.send(&lease).is_err() {
                worker.alive = false;
                phase.pending.push_front(unit);
                continue;
            }
            worker.inflight.push(unit.key.clone());
            phase.stats.leased += 1;
            phase.leases.insert(
                unit.key,
                Lease { conn, deadline: now + Duration::from_millis(self.options.lease_ms.max(1)) },
            );
        }
    }

    fn handle(&mut self, msg: CoordMsg, phase: &mut PhaseRun) -> Result<(), String> {
        match msg {
            CoordMsg::Connected { conn, writer } => {
                self.workers.insert(
                    conn,
                    WorkerConn {
                        writer,
                        name: format!("w{conn}"),
                        slots: 1,
                        inflight: Vec::new(),
                        strikes: 0,
                        alive: true,
                        hello: false,
                        dropped_seen: 0,
                    },
                );
                Ok(())
            }
            CoordMsg::Gone { conn } => self.worker_gone(conn, phase),
            CoordMsg::Frame { conn, frame } => self.handle_frame(conn, &frame, phase),
        }
    }

    fn handle_frame(
        &mut self,
        conn: usize,
        frame: &Json,
        phase: &mut PhaseRun,
    ) -> Result<(), String> {
        let Ok(kind) = tag(frame) else {
            return Ok(()); // tolerate junk frames rather than dying on them
        };
        match kind {
            "hello" => {
                let declared = frame.get("name").and_then(Json::as_str).unwrap_or("").to_string();
                let taken = !declared.is_empty()
                    && self.workers.values().any(|w| w.hello && w.name == declared);
                let slots =
                    frame.get("slots").and_then(Json::as_u64).unwrap_or(1).clamp(1, 256) as usize;
                let Some(worker) = self.workers.get_mut(&conn) else { return Ok(()) };
                worker.hello = true;
                worker.slots = slots;
                if !declared.is_empty() {
                    worker.name = if taken { format!("{declared}-{conn}") } else { declared };
                }
                let welcome = obj(vec![
                    ("t", Json::Str("welcome".to_string())),
                    ("run_id", Json::Str(self.run_id.clone())),
                    ("worker", Json::Str(worker.name.clone())),
                ]);
                if worker.writer.send(&welcome).is_err()
                    || worker.writer.send(&phase.announce).is_err()
                {
                    worker.alive = false;
                }
                self.publish_worker_count();
                Ok(())
            }
            "result" => self.handle_result(conn, frame, phase),
            "fail" => {
                let key = frame.get("key").and_then(Json::as_str).unwrap_or("").to_string();
                let error = frame
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("worker reported failure")
                    .to_string();
                if let Some(worker) = self.workers.get_mut(&conn) {
                    worker.inflight.retain(|k| k != &key);
                }
                if phase.leases.remove(&key).is_some() {
                    self.retry_or_fail(phase, &key, &error)?;
                }
                Ok(())
            }
            "event" => {
                phase.stats.events_forwarded += 1;
                let worker = self.workers.get(&conn).map_or("?", |w| w.name.as_str()).to_string();
                let payload = frame.get("ev").cloned().unwrap_or(Json::Null);
                self.live.record_event(&worker, payload.clone());
                self.telemetry.emit_with(|| {
                    Event::new("worker_event").str("worker", &worker).json("event", payload)
                });
                Ok(())
            }
            "profile" => {
                // First worker to finish a unit of a cell ships the cell's
                // execution profile; the store append is idempotent, so
                // duplicates from other workers (profiles are deterministic
                // functions of the cell) change nothing.
                let cell = frame.get("cell").and_then(Json::as_str).unwrap_or("").to_string();
                if !phase.cells.iter().any(|c| c.key() == cell) {
                    return Ok(()); // unknown cell: stale or corrupt frame
                }
                let Some(payload) = frame.get("profile") else { return Ok(()) };
                match Profile::from_json(payload) {
                    Ok(profile) => {
                        if phase.store.append_profile(&cell, &profile)? {
                            self.live.record_profile(&profile.totals());
                            self.telemetry.emit_with(|| {
                                let t = profile.totals();
                                Event::new("profile")
                                    .str("cell", &cell)
                                    .u64("blocks", profile.num_blocks() as u64)
                                    .u64("payload_cycles", t.payload)
                                    .u64("instr_cycles", t.instr())
                                    .u64("other_cycles", t.other)
                            });
                        }
                        Ok(())
                    }
                    Err(e) => {
                        if !self.options.quiet {
                            eprintln!("cfed-serve: bad profile frame for {cell}: {e}");
                        }
                        Ok(())
                    }
                }
            }
            "bye" => {
                if let Some(worker) = self.workers.get_mut(&conn) {
                    worker.alive = false;
                }
                self.publish_worker_count();
                Ok(())
            }
            _ => Ok(()),
        }
    }

    fn handle_result(
        &mut self,
        conn: usize,
        frame: &Json,
        phase: &mut PhaseRun,
    ) -> Result<(), String> {
        let key = frame.get("key").and_then(Json::as_str).unwrap_or("").to_string();
        let frame_phase = frame.get("phase").and_then(Json::as_u64);
        let ms = frame.get("ms").and_then(Json::as_u64).unwrap_or(0);
        if let Some(worker) = self.workers.get_mut(&conn) {
            worker.inflight.retain(|k| k != &key);
            // Cumulative drop counter from the worker's bounded event queue.
            let dropped = frame.get("dropped").and_then(Json::as_u64).unwrap_or(0);
            if dropped > worker.dropped_seen {
                phase.stats.events_dropped += dropped - worker.dropped_seen;
                worker.dropped_seen = dropped;
            }
        }
        if frame_phase != Some(phase.index as u64) || phase.store.done.contains_key(&key) {
            // Late delivery from a previous phase, or a duplicate of a unit
            // another worker already completed: idempotent drop.
            phase.stats.duplicates += 1;
            return Ok(());
        }
        // The unit must be tracked (leased, or back in the queue after an
        // expiry) — anything else is a duplicate of an attempt we already
        // resolved.
        let was_leased = phase.leases.remove(&key).is_some();
        let was_pending = {
            let before = phase.pending.len();
            phase.pending.retain(|u| u.key != key);
            phase.pending.len() != before
        };
        if !was_leased && !was_pending {
            phase.stats.duplicates += 1;
            return Ok(());
        }
        let record = frame.get("record").ok_or("result frame missing record")?;
        let tallies = match ShardTallies::from_json(record) {
            Ok(t) => t,
            Err(e) => {
                // A malformed record counts as a failed attempt.
                return self.retry_or_fail(phase, &key, &format!("malformed result: {e}"));
            }
        };
        phase.store.append_ok(&key, tallies.clone())?;
        phase.remaining -= 1;
        let worker_name = self.workers.get(&conn).map_or("?", |w| w.name.as_str()).to_string();
        phase.stats.record_unit(&worker_name, ms);
        self.live.record_done(&key, tallies);
        let done = phase.store.done.len() as u64;
        let total = phase.total;
        self.telemetry.emit_with(|| {
            Event::new("shard_done").str("shard", &key).u64("done", done).u64("of", total)
        });
        Ok(())
    }

    /// A unit's attempt failed (fail frame, expiry, disconnect, malformed
    /// result): re-queue with backoff while the retry budget lasts, else
    /// record it permanently failed.
    fn retry_or_fail(
        &mut self,
        phase: &mut PhaseRun,
        key: &str,
        error: &str,
    ) -> Result<(), String> {
        let slot = phase.attempts.entry(key.to_string()).or_insert(0);
        *slot += 1;
        let attempts = *slot;
        let Some((cell, shard)) = phase_unit(phase, key) else {
            return Ok(()); // unknown key: nothing to re-queue
        };
        if self.options.retry.allows(attempts) {
            phase.stats.retried += 1;
            self.telemetry.emit_with(|| {
                Event::new("shard_failed")
                    .str("shard", key)
                    .str("error", error)
                    .u64("attempt", u64::from(attempts))
                    .u64("retried", 1)
            });
            if !self.options.quiet {
                eprintln!("cfed-serve: unit {key} attempt {attempts} failed, retrying: {error}");
            }
            phase.pending.push_back(Unit {
                cell,
                shard,
                key: key.to_string(),
                ready_at: Instant::now() + self.options.retry.backoff(attempts),
            });
        } else {
            phase.stats.failed += 1;
            phase.store.append_failed(key, error)?;
            phase.remaining -= 1;
            self.live.record_failed(key, error);
            self.telemetry.emit_with(|| {
                Event::new("shard_failed")
                    .str("shard", key)
                    .str("error", error)
                    .u64("attempt", u64::from(attempts))
            });
            eprintln!("cfed-serve: unit {key} FAILED after {attempts} attempt(s): {error}");
        }
        Ok(())
    }

    /// Re-queues every unit leased to a disconnected worker.
    fn worker_gone(&mut self, conn: usize, phase: &mut PhaseRun) -> Result<(), String> {
        let Some(worker) = self.workers.get_mut(&conn) else { return Ok(()) };
        worker.alive = false;
        let name = worker.name.clone();
        let lost: Vec<String> = std::mem::take(&mut worker.inflight);
        self.publish_worker_count();
        if !lost.is_empty() {
            // A worker died mid-unit (killed, crashed, or cut off): dump
            // the recent-event window past the recorder so the forensics
            // trail survives even though the worker itself cannot report.
            self.options.telemetry.emit_with(|| {
                self.flight
                    .dump_event("worker_lost")
                    .str("worker", &name)
                    .u64("lost_leases", lost.len() as u64)
            });
        }
        for key in lost {
            if phase.leases.remove(&key).is_some() {
                phase.stats.expired += 1;
                self.retry_or_fail(phase, &key, "worker disconnected mid-unit")?;
            }
        }
        Ok(())
    }

    /// Fails leases past their deadline (striking the worker) and
    /// re-queues them under the retry policy.
    fn expire(&mut self, phase: &mut PhaseRun) -> Result<(), String> {
        let now = Instant::now();
        let expired: Vec<String> = phase
            .leases
            .iter()
            .filter(|(_, l)| l.deadline <= now)
            .map(|(k, _)| k.clone())
            .collect();
        for key in expired {
            let Some(lease) = phase.leases.remove(&key) else { continue };
            phase.stats.expired += 1;
            if let Some(worker) = self.workers.get_mut(&lease.conn) {
                worker.inflight.retain(|k| k != &key);
                worker.strikes += 1;
                if worker.strikes == MAX_STRIKES {
                    phase.stats.quarantined += 1;
                    self.options.telemetry.emit_with(|| {
                        self.flight.dump_event("quarantine").str("worker", &worker.name)
                    });
                    if !self.options.quiet {
                        eprintln!(
                            "cfed-serve: worker {} quarantined after {} expired leases",
                            worker.name, worker.strikes
                        );
                    }
                }
            }
            self.retry_or_fail(phase, &key, "lease expired")?;
        }
        Ok(())
    }

    fn publish_worker_count(&self) {
        self.live.set_workers(self.workers.values().filter(|w| w.hello && w.alive).count());
    }

    /// Mirrors per-worker outstanding-lease counts into the live view
    /// (`/progress` and the `cfed_worker_inflight` gauge).
    fn publish_inflight(&self) {
        let inflight = self
            .workers
            .values()
            .filter(|w| w.hello && w.alive)
            .map(|w| (w.name.clone(), w.inflight.len() as u64))
            .collect();
        self.live.set_inflight(inflight);
    }
}

/// Looks up a unit's `(cell, shard)` from its key via the phase cell list.
fn phase_unit(phase: &PhaseRun, key: &str) -> Option<(usize, u64)> {
    let (cell_key, shard) = key.rsplit_once('#')?;
    let shard: u64 = shard.parse().ok()?;
    let cell = phase.cells.iter().position(|c| c.key() == cell_key)?;
    Some((cell, shard))
}
