//! Live HTTP endpoints for a running coordinator.
//!
//! A deliberately tiny HTTP/1.0 server (one request per connection, plain
//! text) exposing read-only views of the in-flight campaign:
//!
//! * `/healthz` — liveness probe, always `ok`;
//! * `/progress` — one JSON object: phase, unit counts, worker count,
//!   per-worker in-flight leases, service counters;
//! * `/report` — the campaign report rendered from the coordinator's
//!   in-memory mirror of the store, via the same
//!   [`cfed_runner::report::render_parts`] the offline `report` subcommand
//!   uses — so the live view is byte-identical to what
//!   `cfed-campaign report` will print for the shards merged so far;
//! * `/metrics` — Prometheus text exposition built fresh per scrape from
//!   the same live state (leases, retries, quarantines, event drops, unit
//!   latency summaries, profiler cycle totals);
//! * `/events?kind=…&worker=…&since=…` — the queryable store of worker
//!   telemetry forwarded over the firehose, a bounded ring addressed by
//!   monotonic sequence number (use `since` as a resume cursor).

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cfed_runner::report::{render_parts, summarize};
use cfed_runner::store::{ShardTallies, StoreHeader};
use cfed_telemetry::json::{obj, Json};
use cfed_telemetry::{MetricKind, ProfileTotals, Registry};

use crate::stats::ServeStats;

/// Capacity of the queryable worker-event store behind `/events`. Older
/// events are evicted (counted) — the endpoint is a recent-history window,
/// not an archive; the JSONL sink remains the durable record.
const EVENT_STORE_CAP: usize = 256;

/// The coordinator's shared live state, mirrored for the HTTP endpoints.
/// The scheduler updates it incrementally as results land; readers only
/// ever take short lock holds to render.
#[derive(Default)]
pub struct LiveView {
    inner: Mutex<Inner>,
}

/// One forwarded worker event in the queryable store.
struct StoredEvent {
    /// Monotonic 1-based sequence number (the `/events?since=` cursor).
    seq: u64,
    worker: String,
    /// The event's `ev` kind tag, extracted for cheap filtering.
    kind: String,
    event: Json,
}

#[derive(Default)]
struct Inner {
    run_id: String,
    phase: String,
    header: Option<StoreHeader>,
    done: BTreeMap<String, ShardTallies>,
    failed: BTreeMap<String, String>,
    workers: usize,
    /// Outstanding leases per live worker.
    inflight: BTreeMap<String, u64>,
    stats: ServeStats,
    /// Bounded ring of forwarded worker events, newest last.
    events: VecDeque<StoredEvent>,
    next_event_seq: u64,
    /// Events evicted from the bounded ring.
    events_evicted: u64,
    /// Per-cell execution profiles persisted so far.
    profiles: u64,
    profile_totals: ProfileTotals,
    /// `/metrics` scrapes served.
    scrapes: u64,
    finished: bool,
}

impl Inner {
    fn push_event(&mut self, worker: &str, event: Json) {
        self.next_event_seq += 1;
        let kind = event.get("ev").and_then(Json::as_str).unwrap_or("?").to_string();
        self.events.push_back(StoredEvent {
            seq: self.next_event_seq,
            worker: worker.to_string(),
            kind,
            event,
        });
        while self.events.len() > EVENT_STORE_CAP {
            self.events.pop_front();
            self.events_evicted += 1;
        }
    }
}

impl LiveView {
    /// An empty view (no campaign loaded).
    pub fn new() -> LiveView {
        LiveView::default()
    }

    /// Installs a phase: header plus any shards already persisted (resume).
    pub(crate) fn begin_phase(
        &self,
        run_id: &str,
        phase: &str,
        header: StoreHeader,
        done: BTreeMap<String, ShardTallies>,
        failed: BTreeMap<String, String>,
    ) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.run_id = run_id.to_string();
        inner.phase = phase.to_string();
        inner.header = Some(header);
        inner.done = done;
        inner.failed = failed;
    }

    pub(crate) fn record_done(&self, key: &str, tallies: ShardTallies) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.failed.remove(key);
        inner.done.insert(key.to_string(), tallies);
    }

    pub(crate) fn record_failed(&self, key: &str, error: &str) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.failed.insert(key.to_string(), error.to_string());
    }

    pub(crate) fn set_workers(&self, workers: usize) {
        self.inner.lock().expect("live view poisoned").workers = workers;
    }

    pub(crate) fn set_stats(&self, stats: ServeStats) {
        self.inner.lock().expect("live view poisoned").stats = stats;
    }

    pub(crate) fn set_inflight(&self, inflight: BTreeMap<String, u64>) {
        self.inner.lock().expect("live view poisoned").inflight = inflight;
    }

    /// Stores one forwarded worker event in the bounded `/events` ring.
    pub(crate) fn record_event(&self, worker: &str, event: Json) {
        self.inner.lock().expect("live view poisoned").push_event(worker, event);
    }

    /// Accounts one persisted per-cell execution profile.
    pub(crate) fn record_profile(&self, totals: &ProfileTotals) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.profiles += 1;
        inner.profile_totals.payload += totals.payload;
        inner.profile_totals.head += totals.head;
        inner.profile_totals.tail += totals.tail;
        inner.profile_totals.other += totals.other;
    }

    pub(crate) fn finish(&self) {
        self.inner.lock().expect("live view poisoned").finished = true;
    }

    /// The `/report` body: the campaign report over the shards merged so
    /// far, byte-identical to `cfed-campaign report` over the same shards.
    pub fn report(&self) -> String {
        let inner = self.inner.lock().expect("live view poisoned");
        match &inner.header {
            Some(header) => render_parts(header, &summarize(&inner.done), &inner.failed),
            None => "no campaign loaded yet\n".to_string(),
        }
    }

    /// The `/progress` body: one JSON object. The service counters
    /// (including `events_forwarded`/`events_dropped`) are the live
    /// run-so-far values, republished by the scheduler every loop tick;
    /// `inflight` lists each live worker's outstanding leases.
    pub fn progress(&self) -> String {
        let inner = self.inner.lock().expect("live view poisoned");
        let total = inner.header.as_ref().map_or(0, |h| h.total_shards);
        let inflight = inner
            .inflight
            .iter()
            .map(|(name, n)| {
                obj(vec![("worker", Json::Str(name.clone())), ("units", Json::UInt(*n))])
            })
            .collect();
        let mut fields = vec![
            ("run_id", Json::Str(inner.run_id.clone())),
            ("phase", Json::Str(inner.phase.clone())),
            ("total_units", Json::UInt(total)),
            ("done_units", Json::UInt(inner.done.len() as u64)),
            ("failed_units", Json::UInt(inner.failed.len() as u64)),
            ("workers", Json::UInt(inner.workers as u64)),
            ("inflight", Json::Arr(inflight)),
            ("profiles", Json::UInt(inner.profiles)),
            ("finished", Json::Bool(inner.finished)),
        ];
        fields.extend(inner.stats.to_meta_fields());
        obj(fields).render() + "\n"
    }

    /// The `/metrics` body: Prometheus text exposition, built fresh from
    /// the live state on every scrape. Each scrape also records a
    /// `metrics_scrape` event into the `/events` store.
    pub fn metrics(&self) -> String {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.scrapes += 1;
        let scrapes = inner.scrapes;
        inner.push_event(
            "http",
            obj(vec![("ev", Json::Str("metrics_scrape".to_string())), ("n", Json::UInt(scrapes))]),
        );

        let mut r = Registry::new();
        r.family("cfed_units_leased_total", "Unit leases handed to workers", MetricKind::Counter)
            .sample(&[], inner.stats.leased);
        r.family("cfed_units_completed_total", "Units persisted as done", MetricKind::Counter)
            .sample(&[], inner.stats.completed);
        r.family("cfed_units_retried_total", "Unit attempts re-queued", MetricKind::Counter)
            .sample(&[], inner.stats.retried);
        r.family("cfed_units_expired_total", "Leases past their deadline", MetricKind::Counter)
            .sample(&[], inner.stats.expired);
        r.family("cfed_units_failed_total", "Units permanently failed", MetricKind::Counter)
            .sample(&[], inner.stats.failed);
        r.family("cfed_units_duplicate_total", "Duplicate result frames", MetricKind::Counter)
            .sample(&[], inner.stats.duplicates);
        r.family("cfed_workers_quarantined_total", "Workers quarantined", MetricKind::Counter)
            .sample(&[], inner.stats.quarantined);
        r.family(
            "cfed_events_forwarded_total",
            "Worker telemetry events forwarded to the coordinator",
            MetricKind::Counter,
        )
        .sample(&[], inner.stats.events_forwarded);
        r.family("cfed_events_dropped_total", "Events lost before serving", MetricKind::Counter)
            .sample(&[("at", "worker_queue")], inner.stats.events_dropped)
            .sample(&[("at", "event_store")], inner.events_evicted);
        r.family("cfed_workers", "Connected live workers", MetricKind::Gauge)
            .sample(&[], inner.workers as u64);
        r.family("cfed_worker_inflight", "Outstanding leases per worker", MetricKind::Gauge);
        for (name, n) in &inner.inflight {
            r.sample(&[("worker", name)], *n);
        }
        r.family("cfed_unit_latency_ms", "Unit wall-clock latency per worker", MetricKind::Summary);
        for (name, w) in &inner.stats.workers {
            r.summary_from_hist(
                &[("worker", name)],
                &w.latency_ms,
                &[(0.5, "0.5"), (0.99, "0.99")],
            );
        }
        r.family(
            "cfed_profiles_total",
            "Per-cell execution profiles persisted",
            MetricKind::Counter,
        )
        .sample(&[], inner.profiles);
        let t = inner.profile_totals;
        r.family(
            "cfed_profile_cycles_total",
            "Profiled cycles by attribution bucket",
            MetricKind::Counter,
        )
        .sample(&[("part", "payload")], t.payload)
        .sample(&[("part", "instrumentation")], t.head + t.tail)
        .sample(&[("part", "other")], t.other);
        r.family("cfed_metrics_scrapes_total", "Scrapes of this endpoint", MetricKind::Counter)
            .sample(&[], scrapes);
        r.render()
    }

    /// The `/events` body: stored events filtered by optional `kind`,
    /// `worker`, and `since` (exclusive sequence cursor), oldest first.
    pub fn events(&self, kind: Option<&str>, worker: Option<&str>, since: Option<u64>) -> String {
        let inner = self.inner.lock().expect("live view poisoned");
        let since = since.unwrap_or(0);
        let matches = |e: &StoredEvent| {
            e.seq > since
                && kind.is_none_or(|k| e.kind == k)
                && worker.is_none_or(|w| e.worker == w)
        };
        let events = inner
            .events
            .iter()
            .filter(|e| matches(e))
            .map(|e| {
                obj(vec![
                    ("seq", Json::UInt(e.seq)),
                    ("worker", Json::Str(e.worker.clone())),
                    ("kind", Json::Str(e.kind.clone())),
                    ("event", e.event.clone()),
                ])
            })
            .collect();
        obj(vec![
            ("next", Json::UInt(inner.next_event_seq)),
            ("evicted", Json::UInt(inner.events_evicted)),
            ("events", Json::Arr(events)),
        ])
        .render()
            + "\n"
    }
}

/// Serves `live` on `listener` until `shutdown` is set. Returns the server
/// thread handle; join it after setting the flag.
pub fn spawn(
    listener: TcpListener,
    live: Arc<LiveView>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let _ = listener.set_nonblocking(true);
    std::thread::spawn(move || loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, &live);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => break,
        }
    })
}

/// Extracts one `key=value` pair from a raw query string (no percent
/// decoding — event kinds and worker names are plain tokens).
fn query_param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| v.to_string())
    })
}

fn handle(mut stream: TcpStream, live: &LiveView) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut request = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&buf[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 16 * 1024 {
            break;
        }
    }
    let first_line = request.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let first_line = String::from_utf8_lossy(first_line);
    let mut parts = first_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "only GET is supported\n".to_string())
    } else {
        match path {
            "/healthz" => ("200 OK", "ok\n".to_string()),
            "/progress" => ("200 OK", live.progress()),
            "/report" => ("200 OK", live.report()),
            "/metrics" => ("200 OK", live.metrics()),
            "/events" => (
                "200 OK",
                live.events(
                    query_param(query, "kind").as_deref(),
                    query_param(query, "worker").as_deref(),
                    query_param(query, "since").and_then(|s| s.parse().ok()),
                ),
            ),
            _ => ("404 Not Found", format!("no such endpoint {path}\n")),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: &str, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        (head.split("\r\n").next().unwrap().to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_live_state() {
        let live = Arc::new(LiveView::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = spawn(listener, Arc::clone(&live), Arc::clone(&shutdown));

        let (status, body) = get(&addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(&addr, "/report");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("no campaign"), "{body}");

        live.begin_phase(
            "r",
            "coverage",
            StoreHeader {
                run_id: "r".into(),
                seed: 1,
                trials: 64,
                shard_trials: 64,
                digest: 2,
                total_shards: 1,
            },
            BTreeMap::new(),
            BTreeMap::new(),
        );
        live.record_done("cell#0", ShardTallies::default());
        let (_, body) = get(&addr, "/report");
        assert!(body.contains("run r"), "{body}");
        let (_, body) = get(&addr, "/progress");
        assert!(body.contains("\"done_units\":1"), "{body}");
        let (status, _) = get(&addr, "/nope");
        assert!(status.contains("404"), "{status}");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }

    #[test]
    fn metrics_and_events_endpoints() {
        let live = Arc::new(LiveView::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = spawn(listener, Arc::clone(&live), Arc::clone(&shutdown));

        live.set_workers(2);
        let mut inflight = BTreeMap::new();
        inflight.insert("w0".to_string(), 3);
        live.set_inflight(inflight);
        let parse = cfed_telemetry::json::parse;
        live.record_event("w0", parse(r#"{"ev":"unit_done","unit":"k#0","ms":7}"#).unwrap());
        live.record_event("w1", parse(r#"{"ev":"unit_failed","unit":"k#1"}"#).unwrap());
        live.record_profile(&ProfileTotals { payload: 10, head: 2, tail: 1, other: 3 });
        let mut stats = ServeStats { leased: 5, quarantined: 1, ..Default::default() };
        stats.record_unit("w0", 12);
        live.set_stats(stats);

        let (status, body) = get(&addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# HELP cfed_units_leased_total "), "{body}");
        assert!(body.contains("# TYPE cfed_units_leased_total counter"), "{body}");
        assert!(body.contains("cfed_units_leased_total 5"), "{body}");
        assert!(body.contains("cfed_workers_quarantined_total 1"), "{body}");
        assert!(body.contains("cfed_workers 2"), "{body}");
        assert!(body.contains("cfed_worker_inflight{worker=\"w0\"} 3"), "{body}");
        assert!(body.contains("cfed_unit_latency_ms{worker=\"w0\",quantile=\"0.5\"}"), "{body}");
        assert!(body.contains("cfed_unit_latency_ms_count{worker=\"w0\"} 1"), "{body}");
        assert!(body.contains("cfed_profiles_total 1"), "{body}");
        assert!(body.contains("cfed_profile_cycles_total{part=\"payload\"} 10"), "{body}");
        assert!(body.contains("cfed_profile_cycles_total{part=\"instrumentation\"} 3"), "{body}");
        assert!(body.contains("cfed_metrics_scrapes_total 1"), "{body}");
        // No duplicate families: every # TYPE line names a distinct metric.
        let types: Vec<&str> = body.lines().filter(|l| l.starts_with("# TYPE ")).collect();
        let unique: std::collections::BTreeSet<&&str> = types.iter().collect();
        assert_eq!(types.len(), unique.len(), "{body}");

        // The scrape itself landed in the event store as seq 3.
        let (_, body) = get(&addr, "/events?kind=unit_done");
        assert!(body.contains("\"worker\":\"w0\""), "{body}");
        assert!(!body.contains("unit_failed"), "{body}");
        let (_, body) = get(&addr, "/events?worker=w1");
        assert!(body.contains("unit_failed"), "{body}");
        assert!(!body.contains("unit_done"), "{body}");
        let (_, body) = get(&addr, "/events?since=2");
        assert!(body.contains("metrics_scrape"), "{body}");
        assert!(!body.contains("unit_done"), "{body}");

        let (_, body) = get(&addr, "/progress");
        assert!(body.contains("\"inflight\":[{\"worker\":\"w0\",\"units\":3}]"), "{body}");
        assert!(body.contains("\"profiles\":1"), "{body}");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
