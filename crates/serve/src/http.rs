//! Live HTTP endpoints for a running coordinator.
//!
//! A deliberately tiny HTTP/1.0 server (one request per connection, plain
//! text) exposing three read-only views of the in-flight campaign:
//!
//! * `/healthz` — liveness probe, always `ok`;
//! * `/progress` — one JSON object: phase, unit counts, worker count,
//!   service counters;
//! * `/report` — the campaign report rendered from the coordinator's
//!   in-memory mirror of the store, via the same
//!   [`cfed_runner::report::render_parts`] the offline `report` subcommand
//!   uses — so the live view is byte-identical to what
//!   `cfed-campaign report` will print for the shards merged so far.

use std::collections::BTreeMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cfed_runner::report::{render_parts, summarize};
use cfed_runner::store::{ShardTallies, StoreHeader};
use cfed_telemetry::json::{obj, Json};

use crate::stats::ServeStats;

/// The coordinator's shared live state, mirrored for the HTTP endpoints.
/// The scheduler updates it incrementally as results land; readers only
/// ever take short lock holds to render.
#[derive(Default)]
pub struct LiveView {
    inner: Mutex<Inner>,
}

#[derive(Default)]
struct Inner {
    run_id: String,
    phase: String,
    header: Option<StoreHeader>,
    done: BTreeMap<String, ShardTallies>,
    failed: BTreeMap<String, String>,
    workers: usize,
    stats: ServeStats,
    finished: bool,
}

impl LiveView {
    /// An empty view (no campaign loaded).
    pub fn new() -> LiveView {
        LiveView::default()
    }

    /// Installs a phase: header plus any shards already persisted (resume).
    pub(crate) fn begin_phase(
        &self,
        run_id: &str,
        phase: &str,
        header: StoreHeader,
        done: BTreeMap<String, ShardTallies>,
        failed: BTreeMap<String, String>,
    ) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.run_id = run_id.to_string();
        inner.phase = phase.to_string();
        inner.header = Some(header);
        inner.done = done;
        inner.failed = failed;
    }

    pub(crate) fn record_done(&self, key: &str, tallies: ShardTallies) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.failed.remove(key);
        inner.done.insert(key.to_string(), tallies);
    }

    pub(crate) fn record_failed(&self, key: &str, error: &str) {
        let mut inner = self.inner.lock().expect("live view poisoned");
        inner.failed.insert(key.to_string(), error.to_string());
    }

    pub(crate) fn set_workers(&self, workers: usize) {
        self.inner.lock().expect("live view poisoned").workers = workers;
    }

    pub(crate) fn set_stats(&self, stats: ServeStats) {
        self.inner.lock().expect("live view poisoned").stats = stats;
    }

    pub(crate) fn finish(&self) {
        self.inner.lock().expect("live view poisoned").finished = true;
    }

    /// The `/report` body: the campaign report over the shards merged so
    /// far, byte-identical to `cfed-campaign report` over the same shards.
    pub fn report(&self) -> String {
        let inner = self.inner.lock().expect("live view poisoned");
        match &inner.header {
            Some(header) => render_parts(header, &summarize(&inner.done), &inner.failed),
            None => "no campaign loaded yet\n".to_string(),
        }
    }

    /// The `/progress` body: one JSON object.
    pub fn progress(&self) -> String {
        let inner = self.inner.lock().expect("live view poisoned");
        let total = inner.header.as_ref().map_or(0, |h| h.total_shards);
        let mut fields = vec![
            ("run_id", Json::Str(inner.run_id.clone())),
            ("phase", Json::Str(inner.phase.clone())),
            ("total_units", Json::UInt(total)),
            ("done_units", Json::UInt(inner.done.len() as u64)),
            ("failed_units", Json::UInt(inner.failed.len() as u64)),
            ("workers", Json::UInt(inner.workers as u64)),
            ("finished", Json::Bool(inner.finished)),
        ];
        fields.extend(inner.stats.to_meta_fields());
        obj(fields).render() + "\n"
    }
}

/// Serves `live` on `listener` until `shutdown` is set. Returns the server
/// thread handle; join it after setting the flag.
pub fn spawn(
    listener: TcpListener,
    live: Arc<LiveView>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    let _ = listener.set_nonblocking(true);
    std::thread::spawn(move || loop {
        if shutdown.load(Ordering::Relaxed) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = handle(stream, &live);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => break,
        }
    })
}

fn handle(mut stream: TcpStream, live: &LiveView) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut request = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        request.extend_from_slice(&buf[..n]);
        if request.windows(4).any(|w| w == b"\r\n\r\n") || request.len() > 16 * 1024 {
            break;
        }
    }
    let first_line = request.split(|&b| b == b'\r').next().unwrap_or(&[]);
    let first_line = String::from_utf8_lossy(first_line);
    let mut parts = first_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, body) = if method != "GET" {
        ("405 Method Not Allowed", "only GET is supported\n".to_string())
    } else {
        match path {
            "/healthz" => ("200 OK", "ok\n".to_string()),
            "/progress" => ("200 OK", live.progress()),
            "/report" => ("200 OK", live.report()),
            _ => ("404 Not Found", format!("no such endpoint {path}\n")),
        }
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: text/plain; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: &str, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        (head.split("\r\n").next().unwrap().to_string(), body.to_string())
    }

    #[test]
    fn endpoints_serve_live_state() {
        let live = Arc::new(LiveView::new());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let handle = spawn(listener, Arc::clone(&live), Arc::clone(&shutdown));

        let (status, body) = get(&addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert_eq!(body, "ok\n");

        let (status, body) = get(&addr, "/report");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("no campaign"), "{body}");

        live.begin_phase(
            "r",
            "coverage",
            StoreHeader {
                run_id: "r".into(),
                seed: 1,
                trials: 64,
                shard_trials: 64,
                digest: 2,
                total_shards: 1,
            },
            BTreeMap::new(),
            BTreeMap::new(),
        );
        live.record_done("cell#0", ShardTallies::default());
        let (_, body) = get(&addr, "/report");
        assert!(body.contains("run r"), "{body}");
        let (_, body) = get(&addr, "/progress");
        assert!(body.contains("\"done_units\":1"), "{body}");
        let (status, _) = get(&addr, "/nope");
        assert!(status.contains("404"), "{status}");

        shutdown.store(true, Ordering::Relaxed);
        handle.join().unwrap();
    }
}
