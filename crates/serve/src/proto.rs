//! The wire protocol: length-prefixed JSON frames and the campaign-matrix
//! serialization the coordinator ships to workers.
//!
//! Every frame is a 4-byte big-endian byte length followed by that many
//! bytes of UTF-8 JSON (the workspace subset — see `cfed_telemetry::json`).
//! Frames carry a `"t"` tag naming the message:
//!
//! | direction            | tag       | payload                                    |
//! |----------------------|-----------|--------------------------------------------|
//! | worker → coordinator | `hello`   | worker name, lease slots                   |
//! | coordinator → worker | `welcome` | run id, assigned worker id                 |
//! | coordinator → worker | `phase`   | phase index, label, serialized matrix      |
//! | coordinator → worker | `lease`   | phase, cell index, shard index, shard key  |
//! | worker → coordinator | `result`  | key, shard tallies (store record shape),   |
//! |                      |           | unit wall ms, cumulative event drops       |
//! | worker → coordinator | `fail`    | key, error message                         |
//! | worker → coordinator | `event`   | one forwarded telemetry event              |
//! | coordinator → worker | `bye`     | campaign over (worker drains and exits)    |
//! | worker → coordinator | `bye`     | worker is leaving (drained; no re-lease    |
//! |                      |           | needed for frames already sent)            |
//!
//! Results carry the exact JSON shape the result store persists
//! ([`cfed_runner::store::ShardTallies::to_json`]), so the coordinator
//! appends them without re-encoding — which is what keeps a multi-process
//! store byte-compatible with a single-process one.

use std::io::{Read, Write};

use cfed_core::TechniqueKind;
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::AttackKind;
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_telemetry::json::{obj, parse, Json};
use cfed_workloads::Scale;

/// Upper bound on a frame's byte length; anything larger is treated as a
/// corrupt stream rather than an allocation request.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame (length prefix + JSON bytes), flushing.
///
/// # Errors
///
/// Returns the I/O error message on a failed or short write.
pub fn write_frame(w: &mut impl Write, v: &Json) -> Result<(), String> {
    let body = v.render();
    let len = u32::try_from(body.len()).map_err(|_| "frame exceeds u32 length".to_string())?;
    if body.len() > MAX_FRAME {
        return Err(format!("frame of {} bytes exceeds MAX_FRAME", body.len()));
    }
    w.write_all(&len.to_be_bytes())
        .and_then(|()| w.write_all(body.as_bytes()))
        .and_then(|()| w.flush())
        .map_err(|e| format!("writing frame: {e}"))
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF inside a frame is an error.
///
/// # Errors
///
/// Returns a message on I/O failure, oversized frames, or malformed JSON.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Json>, String> {
    let mut len_buf = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut len_buf[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err("connection closed inside a frame header".to_string()),
            Ok(n) => got += n,
            Err(e) => return Err(format!("reading frame header: {e}")),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(format!("frame of {len} bytes exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| format!("reading frame body: {e}"))?;
    let text = std::str::from_utf8(&body).map_err(|e| format!("frame is not UTF-8: {e}"))?;
    parse(text).map(Some).map_err(|e| format!("frame is not valid JSON: {e}"))
}

/// The `"t"` tag of a frame, or an error naming the problem.
///
/// # Errors
///
/// Returns a message when the frame has no string `"t"` field.
pub fn tag(v: &Json) -> Result<&str, String> {
    v.get("t").and_then(Json::as_str).ok_or_else(|| "frame has no \"t\" tag".to_string())
}

/// Renders a technique for the wire (`"baseline"` for `None`, otherwise
/// the `Display` name also used in store keys).
pub fn technique_to_str(technique: Option<TechniqueKind>) -> String {
    technique.map_or_else(|| "baseline".to_string(), |k| k.to_string())
}

/// Parses [`technique_to_str`] output.
///
/// # Errors
///
/// Returns a message naming the unknown technique.
pub fn technique_from_str(s: &str) -> Result<Option<TechniqueKind>, String> {
    match s {
        "baseline" => Ok(None),
        "CFCSS" => Ok(Some(TechniqueKind::Cfcss)),
        "ECCA" => Ok(Some(TechniqueKind::Ecca)),
        "ECF" => Ok(Some(TechniqueKind::Ecf)),
        "EdgCF" => Ok(Some(TechniqueKind::EdgCf)),
        "RCF" => Ok(Some(TechniqueKind::Rcf)),
        other => Err(format!("unknown technique {other:?}")),
    }
}

/// Parses an [`UpdateStyle`] display name.
///
/// # Errors
///
/// Returns a message naming the unknown style.
pub fn style_from_str(s: &str) -> Result<UpdateStyle, String> {
    match s {
        "Jcc" => Ok(UpdateStyle::Jcc),
        "CMOVcc" => Ok(UpdateStyle::CMov),
        other => Err(format!("unknown update style {other:?}")),
    }
}

/// Parses a [`CheckPolicy`] display name.
///
/// # Errors
///
/// Returns a message naming the unknown policy.
pub fn policy_from_str(s: &str) -> Result<CheckPolicy, String> {
    match s {
        "ALLBB" => Ok(CheckPolicy::AllBb),
        "RET-BE" => Ok(CheckPolicy::RetBe),
        "RET" => Ok(CheckPolicy::Ret),
        "END" => Ok(CheckPolicy::End),
        other => Err(format!("unknown check policy {other:?}")),
    }
}

fn scale_to_json(scale: Scale) -> Json {
    match scale {
        Scale::Test => Json::Str("test".to_string()),
        Scale::Full => Json::Str("full".to_string()),
        Scale::Custom(n) => Json::UInt(n),
    }
}

fn scale_from_json(v: &Json) -> Result<Scale, String> {
    if let Some(n) = v.as_u64() {
        return Ok(Scale::Custom(n));
    }
    match v.as_str() {
        Some("test") => Ok(Scale::Test),
        Some("full") => Ok(Scale::Full),
        other => Err(format!("unknown workload scale {other:?}")),
    }
}

fn workload_to_json(w: &WorkloadSpec) -> Json {
    match w {
        WorkloadSpec::Named { name, scale } => {
            obj(vec![("name", Json::Str(name.clone())), ("scale", scale_to_json(*scale))])
        }
        WorkloadSpec::Inline { name, source } => {
            obj(vec![("name", Json::Str(name.clone())), ("source", Json::Str(source.clone()))])
        }
    }
}

fn workload_from_json(v: &Json) -> Result<WorkloadSpec, String> {
    let name = v.get("name").and_then(Json::as_str).ok_or("workload missing name")?;
    if let Some(source) = v.get("source").and_then(Json::as_str) {
        return Ok(WorkloadSpec::inline(name, source));
    }
    let scale = scale_from_json(v.get("scale").ok_or("workload missing scale")?)?;
    Ok(WorkloadSpec::named(name, scale))
}

/// Renders an attack slot for the wire (`"none"` for fault cells,
/// otherwise the archetype name also used in store keys).
pub fn attack_to_str(attack: Option<AttackKind>) -> String {
    attack.map_or_else(|| "none".to_string(), |k| k.name().to_string())
}

/// Parses [`attack_to_str`] output.
///
/// # Errors
///
/// Returns a message naming the unknown archetype.
pub fn attack_from_str(s: &str) -> Result<Option<AttackKind>, String> {
    if s == "none" {
        return Ok(None);
    }
    AttackKind::from_name(s).map(Some).ok_or_else(|| format!("unknown attack archetype {s:?}"))
}

/// Serializes a matrix for the `phase` frame. The `attacks` field is
/// emitted only when it differs from the fault-only default `[None]`, so
/// frames for classic fault matrices are byte-identical to older builds.
pub fn matrix_to_json(m: &CampaignMatrix) -> Json {
    let mut fields = vec![
        ("workloads", Json::Arr(m.workloads.iter().map(workload_to_json).collect())),
        (
            "techniques",
            Json::Arr(m.techniques.iter().map(|&t| Json::Str(technique_to_str(t))).collect()),
        ),
        ("styles", Json::Arr(m.styles.iter().map(|s| Json::Str(s.to_string())).collect())),
        ("policies", Json::Arr(m.policies.iter().map(|p| Json::Str(p.to_string())).collect())),
        ("trials", Json::UInt(m.trials)),
        ("seed", Json::UInt(m.seed)),
    ];
    if m.attacks != vec![None] {
        fields.push((
            "attacks",
            Json::Arr(m.attacks.iter().map(|&a| Json::Str(attack_to_str(a))).collect()),
        ));
    }
    obj(fields)
}

/// Parses [`matrix_to_json`] output. The worker recomputes cell keys from
/// the reconstructed matrix and refuses leases whose key disagrees, so a
/// serialization mismatch can never silently corrupt a store.
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn matrix_from_json(v: &Json) -> Result<CampaignMatrix, String> {
    let arr = |k: &str| v.get(k).and_then(Json::as_arr).ok_or(format!("matrix missing {k}"));
    let num = |k: &str| v.get(k).and_then(Json::as_u64).ok_or(format!("matrix missing {k}"));
    let str_of = |item: &Json| {
        item.as_str().map(str::to_string).ok_or_else(|| "expected a string".to_string())
    };
    Ok(CampaignMatrix {
        workloads: arr("workloads")?.iter().map(workload_from_json).collect::<Result<_, _>>()?,
        techniques: arr("techniques")?
            .iter()
            .map(|t| technique_from_str(&str_of(t)?))
            .collect::<Result<_, _>>()?,
        styles: arr("styles")?
            .iter()
            .map(|s| style_from_str(&str_of(s)?))
            .collect::<Result<_, _>>()?,
        policies: arr("policies")?
            .iter()
            .map(|p| policy_from_str(&str_of(p)?))
            .collect::<Result<_, _>>()?,
        trials: num("trials")?,
        seed: num("seed")?,
        attacks: match v.get("attacks").and_then(Json::as_arr) {
            Some(items) => {
                items.iter().map(|a| attack_from_str(&str_of(a)?)).collect::<Result<_, _>>()?
            }
            None => vec![None],
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfed_runner::matrix::CampaignMatrix;

    #[test]
    fn frames_roundtrip() {
        let mut buf = Vec::new();
        let a = obj(vec![("t", Json::Str("hello".into())), ("slots", Json::UInt(4))]);
        let b = obj(vec![("t", Json::Str("bye".into()))]);
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), a);
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b);
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &obj(vec![("t", Json::Str("x".into()))])).unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_length_is_refused() {
        let mut buf = (u32::try_from(MAX_FRAME + 1).unwrap()).to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).unwrap_err().contains("MAX_FRAME"));
    }

    #[test]
    fn matrix_roundtrips_with_identical_cell_keys() {
        let m = CampaignMatrix {
            workloads: vec![
                WorkloadSpec::named("164.gzip", Scale::Test),
                WorkloadSpec::named("181.mcf", Scale::Custom(40)),
                WorkloadSpec::inline("t", "fn main() { out(3); }"),
            ],
            techniques: vec![
                None,
                Some(TechniqueKind::Cfcss),
                Some(TechniqueKind::Ecca),
                Some(TechniqueKind::Ecf),
                Some(TechniqueKind::EdgCf),
                Some(TechniqueKind::Rcf),
            ],
            styles: vec![UpdateStyle::Jcc, UpdateStyle::CMov],
            policies: vec![
                CheckPolicy::AllBb,
                CheckPolicy::RetBe,
                CheckPolicy::Ret,
                CheckPolicy::End,
            ],
            trials: 500,
            seed: 0xCFED,
            attacks: vec![None],
        };
        let json = matrix_to_json(&m);
        assert!(json.get("attacks").is_none(), "default attacks must stay off the wire");
        let back = matrix_from_json(&json).unwrap();
        let keys: Vec<String> = m.cells().iter().map(cfed_runner::matrix::CellSpec::key).collect();
        let back_keys: Vec<String> =
            back.cells().iter().map(cfed_runner::matrix::CellSpec::key).collect();
        assert_eq!(keys, back_keys);
        assert_eq!(CampaignMatrix::digest(&m.cells()), CampaignMatrix::digest(&back.cells()));
    }

    #[test]
    fn attack_matrix_roundtrips_with_identical_cell_keys() {
        let m = CampaignMatrix::attacks(
            vec![WorkloadSpec::named("164.gzip", Scale::Test)],
            128,
            0xCFED,
        );
        let json = matrix_to_json(&m);
        assert!(json.get("attacks").is_some(), "attack matrices must ship their archetypes");
        let back = matrix_from_json(&json).unwrap();
        let keys: Vec<String> = m.cells().iter().map(cfed_runner::matrix::CellSpec::key).collect();
        let back_keys: Vec<String> =
            back.cells().iter().map(cfed_runner::matrix::CellSpec::key).collect();
        assert_eq!(keys, back_keys);
        assert_eq!(CampaignMatrix::digest(&m.cells()), CampaignMatrix::digest(&back.cells()));
    }

    #[test]
    fn unknown_names_are_rejected() {
        assert!(technique_from_str("XYZ").is_err());
        assert!(style_from_str("mov").is_err());
        assert!(policy_from_str("NONE").is_err());
        assert!(attack_from_str("stack-smash").is_err());
    }
}
