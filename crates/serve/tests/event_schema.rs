//! Event-kind schema conformance.
//!
//! `schemas/event_kinds.txt` at the repository root is the single source of
//! truth for telemetry event kinds: the CI event-stream validator and this
//! test both consume it, so a new kind that is emitted but not declared (or
//! declared but misformatted) fails in exactly one obvious place.

use std::path::PathBuf;
use std::sync::Arc;
use std::thread;

use cfed_core::TechniqueKind;
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::AttackKind;
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_runner::pool::{run_matrix, RunnerOptions};
use cfed_serve::{work, Coordinator, CoordinatorOptions, PhasePlan, WorkerOptions};
use cfed_telemetry::{MemorySink, Telemetry};

const PROGRAM: &str = r#"
    fn main() {
        let i = 0;
        let acc = 1;
        while (i < 20) { acc = acc + i * 2; i = i + 1; }
        out(acc);
    }
"#;

fn schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../schemas/event_kinds.txt")
}

/// Parses the checked-in whitelist, ignoring comments and blank lines.
fn schema_kinds() -> Vec<String> {
    let text = std::fs::read_to_string(schema_path())
        .unwrap_or_else(|e| panic!("schemas/event_kinds.txt must exist: {e}"));
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

#[test]
fn schema_file_is_sorted_unique_snake_case() {
    let kinds = schema_kinds();
    assert!(!kinds.is_empty(), "whitelist must not be empty");
    let mut sorted = kinds.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(kinds, sorted, "kinds must be sorted and unique");
    for k in &kinds {
        assert!(
            k.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
            "kind {k:?} must be lowercase snake_case"
        );
    }
}

/// Runs a small coordinator + worker campaign with a memory sink attached
/// to the coordinator (worker-side events forward through it) and checks
/// every emitted event kind against the schema.
#[test]
fn campaign_event_stream_stays_inside_the_schema() {
    let dir = std::env::temp_dir().join(format!("cfed-evschema-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let matrix = CampaignMatrix {
        workloads: vec![WorkloadSpec::inline("ev", PROGRAM)],
        techniques: vec![None, Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials: 64,
        seed: 0xC0FFEE,
        attacks: vec![None],
    };
    let sink = Arc::new(MemorySink::new());
    let coord = Coordinator::bind(CoordinatorOptions {
        quiet: true,
        telemetry: Telemetry::to(sink.clone()),
        ..Default::default()
    })
    .unwrap();
    let addr = coord.addr().to_string();
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix, store: dir.join("ev.jsonl") }];
    let coord_thread = thread::spawn(move || coord.run("ev", &plans, None));
    let options = WorkerOptions {
        connect: addr,
        name: "ev-worker".to_string(),
        threads: 2,
        quiet: true,
        ..Default::default()
    };
    let worker = thread::spawn(move || work(&options, None));
    worker.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();
    assert!(summary.complete(), "{summary:?}");

    let kinds = schema_kinds();
    let mut seen = Vec::new();
    for e in sink.events().iter() {
        assert!(
            kinds.iter().any(|k| k == e.kind()),
            "event kind {:?} is not declared in schemas/event_kinds.txt",
            e.kind()
        );
        seen.push(e.kind().to_string());
    }
    // The campaign must actually have exercised the stream: core kinds
    // from both the coordinator side (`shard_done`, `serve_stats`) and the
    // forwarded worker side (`worker_event`, `profile`) appear.
    for expect in ["shard_done", "serve_stats", "worker_event", "profile"] {
        assert!(seen.iter().any(|k| k == expect), "missing {expect:?} in {seen:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Attack cells emit their own event kinds from the in-process pool
/// (`attack_outcomes` per shard, `attack_forensics` for undetected
/// trials); both must be declared and must actually flow.
#[test]
fn attack_event_stream_stays_inside_the_schema() {
    let matrix = CampaignMatrix {
        workloads: vec![WorkloadSpec::inline("ev-atk", PROGRAM)],
        techniques: vec![None, Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials: 64,
        seed: 0xC0FFEE,
        attacks: vec![
            Some(AttackKind::RetGadget),
            Some(AttackKind::EdgeSplice),
            Some(AttackKind::JumpCorrupt),
        ],
    };
    let sink = Arc::new(MemorySink::new());
    let options = RunnerOptions {
        threads: 2,
        quiet: true,
        forensics: true,
        telemetry: Telemetry::to(sink.clone()),
        ..Default::default()
    };
    let summary = run_matrix(&matrix, "ev-atk", None, &options).unwrap();
    assert!(summary.executed_shards > 0, "attack campaign ran no shards");

    let kinds = schema_kinds();
    let mut seen = Vec::new();
    for e in sink.events().iter() {
        assert!(
            kinds.iter().any(|k| k == e.kind()),
            "event kind {:?} is not declared in schemas/event_kinds.txt",
            e.kind()
        );
        seen.push(e.kind().to_string());
    }
    for expect in ["attack_outcomes", "attack_forensics", "shard_done", "run_done"] {
        assert!(seen.iter().any(|k| k == expect), "missing {expect:?} in {seen:?}");
    }
}
