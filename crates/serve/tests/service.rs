//! End-to-end tests of the coordinator/worker campaign service.
//!
//! The contract under test is the one the whole crate exists for: a
//! campaign distributed over worker processes — including workers that
//! die mid-unit, deliver results twice, or silently sit on leases until
//! they expire — produces a store whose rendered report is **byte-
//! identical** to a single-process `run_matrix` over the same matrix.
//!
//! Workers here run in threads rather than separate processes (same
//! binary, same TCP protocol); the CI soak job covers the true
//! multi-process + `kill -9` variant.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use cfed_core::TechniqueKind;
use cfed_dbt::{CheckPolicy, UpdateStyle};
use cfed_fault::AttackKind;
use cfed_runner::matrix::{CampaignMatrix, WorkloadSpec};
use cfed_runner::pool::{run_matrix, GoldenCache, RunnerOptions, UnitExecutor};
use cfed_runner::report::{render_attack_frontier, render_report};
use cfed_runner::retry::RetryPolicy;
use cfed_runner::store::read_meta;
use cfed_serve::proto::{read_frame, tag, write_frame};
use cfed_serve::{work, Coordinator, CoordinatorOptions, PhasePlan, ServeStats, WorkerOptions};
use cfed_telemetry::json::{obj, Json};
use cfed_telemetry::{MemorySink, Telemetry};

const PROGRAM: &str = r#"
    fn main() {
        let i = 0;
        let acc = 7;
        while (i < 30) {
            if (i % 4 == 1) { acc = acc * 3 - i; } else { acc = acc + 2; }
            i = i + 1;
        }
        out(acc);
    }
"#;

/// Two cells × four shards = eight work units.
fn matrix() -> CampaignMatrix {
    CampaignMatrix {
        workloads: vec![WorkloadSpec::inline("svc", PROGRAM)],
        techniques: vec![None, Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials: 256,
        seed: 0xC0FFEE,
        attacks: vec![None],
    }
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cfed-svc-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The reference: an uninterrupted single-process run's rendered report.
fn single_process_report(dir: &std::path::Path) -> String {
    let path = dir.join("single.jsonl");
    let summary = run_matrix(
        &matrix(),
        "svc",
        Some(&path),
        &RunnerOptions { threads: 4, quiet: true, ..Default::default() },
    )
    .unwrap();
    assert!(summary.complete());
    render_report(&path).unwrap()
}

fn quiet_coordinator(options: CoordinatorOptions) -> (Coordinator, String) {
    let coord = Coordinator::bind(CoordinatorOptions { quiet: true, ..options }).unwrap();
    let addr = coord.addr().to_string();
    (coord, addr)
}

fn spawn_worker(
    addr: &str,
    name: &str,
) -> thread::JoinHandle<Result<cfed_serve::WorkerSummary, String>> {
    let options = WorkerOptions {
        connect: addr.to_string(),
        name: name.to_string(),
        threads: 2,
        quiet: true,
        ..Default::default()
    };
    thread::spawn(move || work(&options, None))
}

/// Reads frames until one with tag `want` arrives (fake-worker helper).
fn recv_tagged(stream: &mut TcpStream, want: &str) -> Json {
    loop {
        let frame = read_frame(stream).unwrap().expect("coordinator closed early");
        if tag(&frame).unwrap() == want {
            return frame;
        }
    }
}

fn send_hello(stream: &mut TcpStream, name: &str, slots: u64) {
    let hello = obj(vec![
        ("t", Json::Str("hello".to_string())),
        ("name", Json::Str(name.to_string())),
        ("slots", Json::UInt(slots)),
    ]);
    write_frame(stream, &hello).unwrap();
}

#[test]
fn two_workers_match_single_process_byte_for_byte() {
    let dir = tmp_dir("two");
    let reference = single_process_report(&dir);

    let store = dir.join("served.jsonl");
    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));
    let w1 = spawn_worker(&addr, "alpha");
    let w2 = spawn_worker(&addr, "beta");

    let s1 = w1.join().unwrap().unwrap();
    let s2 = w2.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert_eq!(s1.units_done + s2.units_done, 8, "every unit ran exactly once");
    assert_eq!(render_report(&store).unwrap(), reference);

    // The serve_stats meta record rides in the store (invisible to the
    // report above) and round-trips through the `--serve-stats` path.
    let metas = read_meta(&store, "serve_stats").unwrap();
    assert_eq!(metas.len(), 1);
    let stats = ServeStats::from_meta(&metas[0]).unwrap();
    assert_eq!(stats.completed, 8);
    assert!(stats.leased >= 8);
    assert_eq!(stats.workers.values().map(|w| w.units).sum::<u64>(), 8);
    assert_eq!(summary.stats.completed, 8);
}

#[test]
fn worker_death_mid_unit_is_re_leased_and_report_matches() {
    let dir = tmp_dir("death");
    let reference = single_process_report(&dir);

    let store = dir.join("served.jsonl");
    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));

    // A worker that takes one lease and dies without answering it.
    {
        let mut fake = TcpStream::connect(&addr).unwrap();
        send_hello(&mut fake, "doomed", 1);
        recv_tagged(&mut fake, "lease");
        let _ = fake.shutdown(std::net::Shutdown::Both);
    }

    let real = spawn_worker(&addr, "survivor");
    real.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert!(summary.stats.expired >= 1, "lost lease detected: {:?}", summary.stats);
    assert!(summary.stats.retried >= 1, "lost unit re-queued: {:?}", summary.stats);
    assert_eq!(summary.stats.failed, 0);
    assert_eq!(render_report(&store).unwrap(), reference);
}

#[test]
fn duplicate_result_delivery_is_idempotent() {
    let dir = tmp_dir("dup");
    let reference = single_process_report(&dir);

    let store = dir.join("served.jsonl");
    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));

    // A protocol-level worker that executes one unit correctly but
    // delivers its result frame twice before leaving.
    {
        let cells = matrix().cells();
        let mut fake = TcpStream::connect(&addr).unwrap();
        send_hello(&mut fake, "stutter", 1);
        let lease = recv_tagged(&mut fake, "lease");
        let cell = lease.get("cell").and_then(Json::as_u64).unwrap() as usize;
        let shard = lease.get("shard").and_then(Json::as_u64).unwrap();
        let key = lease.get("key").and_then(Json::as_str).unwrap().to_string();
        let mut executor = UnitExecutor::new(Arc::new(GoldenCache::new(true, false)), false);
        let tallies = executor.run(&cells[cell], shard).tallies.unwrap();
        let result = obj(vec![
            ("t", Json::Str("result".to_string())),
            ("phase", lease.get("phase").cloned().unwrap()),
            ("key", Json::Str(key)),
            ("ms", Json::UInt(1)),
            ("dropped", Json::UInt(0)),
            ("record", tallies.to_json(lease.get("key").and_then(Json::as_str).unwrap())),
        ]);
        write_frame(&mut fake, &result).unwrap();
        write_frame(&mut fake, &obj(vec![("t", Json::Str("bye".to_string()))])).unwrap();
        write_frame(&mut fake, &result).unwrap();
        let _ = fake.shutdown(std::net::Shutdown::Both);
    }

    let real = spawn_worker(&addr, "normal");
    real.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert!(summary.stats.duplicates >= 1, "duplicate dropped: {:?}", summary.stats);
    assert_eq!(summary.stats.failed, 0);
    assert_eq!(render_report(&store).unwrap(), reference);
}

#[test]
fn serve_resumes_a_partial_single_process_store() {
    let dir = tmp_dir("resume");
    let reference = single_process_report(&dir);

    // A single-process run killed after three of the eight units.
    let store = dir.join("served.jsonl");
    let killed = run_matrix(
        &matrix(),
        "svc",
        Some(&store),
        &RunnerOptions { threads: 2, quiet: true, max_shards: Some(3), ..Default::default() },
    )
    .unwrap();
    assert!(!killed.complete());

    // The service picks up the same store file and finishes the rest.
    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));
    let worker = spawn_worker(&addr, "finisher");
    worker.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert_eq!(summary.phases[0].resumed_units, 3);
    assert_eq!(summary.stats.completed, 5);
    assert_eq!(render_report(&store).unwrap(), reference);
}

#[test]
fn silent_worker_is_struck_out_and_units_recover() {
    let dir = tmp_dir("silent");
    let reference = single_process_report(&dir);

    let store = dir.join("served.jsonl");
    let (coord, addr) = quiet_coordinator(CoordinatorOptions {
        lease_ms: 100,
        retry: RetryPolicy { max_attempts: 5, backoff_ms: 10, max_backoff_ms: 50 },
        ..Default::default()
    });
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));

    // Takes two leases, never answers, never disconnects. Both leases
    // expire (two strikes — quarantine); the units are re-queued.
    let mut silent = TcpStream::connect(&addr).unwrap();
    send_hello(&mut silent, "silent", 2);
    recv_tagged(&mut silent, "lease");
    recv_tagged(&mut silent, "lease");

    let real = spawn_worker(&addr, "workhorse");
    real.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert!(summary.stats.expired >= 2, "both leases expired: {:?}", summary.stats);
    assert_eq!(summary.stats.failed, 0);
    assert_eq!(render_report(&store).unwrap(), reference);

    // The coordinator tears the quarantined connection down at the end.
    drop(silent);
}

/// Canonical byte rendering of every profile record in a store.
fn profile_bytes(path: &std::path::Path) -> String {
    cfed_runner::read_profiles(path)
        .unwrap()
        .iter()
        .map(|(cell, p)| format!("{cell} {}\n", p.to_json().render()))
        .collect()
}

/// Execution profiles persisted by the service — first worker to finish a
/// unit of a cell wins the send, the coordinator appends first-delivery-
/// wins — are byte-identical to a profiled single-process run's, because
/// profiles are deterministic in `(workload, configuration)`.
#[test]
fn service_profiles_match_single_process_byte_for_byte() {
    let dir = tmp_dir("profiles");
    let single = dir.join("single-prof.jsonl");
    let summary = run_matrix(
        &matrix(),
        "svc",
        Some(&single),
        &RunnerOptions { threads: 4, quiet: true, profile: true, ..Default::default() },
    )
    .unwrap();
    assert!(summary.complete());
    let reference = profile_bytes(&single);
    assert_eq!(reference.lines().count(), matrix().cells().len(), "one profile per cell");

    let store = dir.join("served.jsonl");
    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));
    let w1 = spawn_worker(&addr, "alpha");
    let w2 = spawn_worker(&addr, "beta");
    w1.join().unwrap().unwrap();
    w2.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();
    assert!(summary.complete(), "{summary:?}");

    assert_eq!(profile_bytes(&store), reference, "service profiles must match single-process");
    // Profile records are meta records: the rendered report is untouched.
    assert_eq!(render_report(&store).unwrap(), single_process_report(&dir));
}

/// A worker that dies holding leases cannot dump its own window, so the
/// coordinator dumps *its* flight recorder: the telemetry stream gains a
/// `flight_dump` event naming the lost worker, with the recent-event
/// window attached.
#[test]
fn lost_worker_triggers_a_coordinator_flight_dump() {
    let dir = tmp_dir("flight");
    let store = dir.join("served.jsonl");
    let sink = Arc::new(MemorySink::new());
    let (coord, addr) = quiet_coordinator(CoordinatorOptions {
        telemetry: Telemetry::to(sink.clone()),
        ..Default::default()
    });
    let plans =
        vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store: store.clone() }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));

    // Takes a lease and vanishes mid-unit.
    {
        let mut doomed = TcpStream::connect(&addr).unwrap();
        send_hello(&mut doomed, "doomed", 1);
        recv_tagged(&mut doomed, "lease");
        let _ = doomed.shutdown(std::net::Shutdown::Both);
    }
    let real = spawn_worker(&addr, "survivor");
    real.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();
    assert!(summary.complete(), "{summary:?}");

    let events = sink.events();
    let dump = events
        .iter()
        .find(|e| {
            e.kind() == "flight_dump"
                && e.get("reason").and_then(Json::as_str) == Some("worker_lost")
        })
        .unwrap_or_else(|| panic!("no worker_lost flight dump in {events:?}"));
    assert_eq!(dump.get("worker").and_then(Json::as_str), Some("doomed"));
    assert!(dump.get("lost_leases").and_then(Json::as_u64).unwrap_or(0) >= 1, "{dump:?}");
    assert!(
        dump.get("window").and_then(Json::as_arr).is_some(),
        "dump must carry the recent-event window: {dump:?}"
    );
    // The profiled cells also emit `profile` events through the same
    // stream (workers profile by default).
    assert!(events.iter().any(|e| e.kind() == "profile"), "{events:?}");
}

/// Three attack archetypes × (baseline + EdgCF) = six cells, twelve units.
/// Same inline workload as [`matrix`], so golden runs are shared.
fn attack_matrix() -> CampaignMatrix {
    CampaignMatrix {
        workloads: vec![WorkloadSpec::inline("svc", PROGRAM)],
        techniques: vec![None, Some(TechniqueKind::EdgCf)],
        styles: vec![UpdateStyle::CMov],
        policies: vec![CheckPolicy::AllBb],
        trials: 128,
        seed: 0xC0FFEE,
        attacks: vec![
            Some(AttackKind::RetGadget),
            Some(AttackKind::EdgeSplice),
            Some(AttackKind::DataPivot),
        ],
    }
}

/// Attack campaigns ride the identical store/merge/serve machinery as
/// fault campaigns: a two-worker service run must reproduce the
/// single-process store byte-for-byte at the rendered-report level — both
/// the classic per-cell report and the `--attacks` detection frontier.
#[test]
fn served_attack_campaign_matches_single_process_byte_for_byte() {
    let dir = tmp_dir("attacks");

    // Reference: uninterrupted single-process run, and a second run on a
    // different thread count to pin scheduling-independence first.
    let single = dir.join("single.jsonl");
    let summary = run_matrix(
        &attack_matrix(),
        "svc",
        Some(&single),
        &RunnerOptions { threads: 1, quiet: true, ..Default::default() },
    )
    .unwrap();
    assert!(summary.complete());
    let reference = render_report(&single).unwrap();
    let frontier = render_attack_frontier(&single).unwrap();

    let threaded = dir.join("threaded.jsonl");
    let summary = run_matrix(
        &attack_matrix(),
        "svc",
        Some(&threaded),
        &RunnerOptions { threads: 4, quiet: true, ..Default::default() },
    )
    .unwrap();
    assert!(summary.complete());
    assert_eq!(render_report(&threaded).unwrap(), reference, "thread count leaked into tallies");
    assert_eq!(render_attack_frontier(&threaded).unwrap(), frontier);

    let store = dir.join("served.jsonl");
    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans = vec![PhasePlan {
        label: "attacks".to_string(),
        matrix: attack_matrix(),
        store: store.clone(),
    }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));
    let w1 = spawn_worker(&addr, "alpha");
    let w2 = spawn_worker(&addr, "beta");
    w1.join().unwrap().unwrap();
    w2.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert_eq!(render_report(&store).unwrap(), reference);
    assert_eq!(render_attack_frontier(&store).unwrap(), frontier);
}

/// Kill/resume over an attack store: a single-process run killed mid-
/// campaign is picked up by the service, and the finished store renders
/// byte-identically to the uninterrupted reference.
#[test]
fn serve_resumes_a_killed_attack_campaign() {
    let dir = tmp_dir("attacks-resume");

    let single = dir.join("single.jsonl");
    let summary = run_matrix(
        &attack_matrix(),
        "svc",
        Some(&single),
        &RunnerOptions { threads: 2, quiet: true, ..Default::default() },
    )
    .unwrap();
    assert!(summary.complete());
    let reference = render_report(&single).unwrap();
    let frontier = render_attack_frontier(&single).unwrap();

    let store = dir.join("served.jsonl");
    let killed = run_matrix(
        &attack_matrix(),
        "svc",
        Some(&store),
        &RunnerOptions { threads: 2, quiet: true, max_shards: Some(5), ..Default::default() },
    )
    .unwrap();
    assert!(!killed.complete());

    let (coord, addr) = quiet_coordinator(CoordinatorOptions::default());
    let plans = vec![PhasePlan {
        label: "attacks".to_string(),
        matrix: attack_matrix(),
        store: store.clone(),
    }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));
    let worker = spawn_worker(&addr, "finisher");
    worker.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();

    assert!(summary.complete(), "{summary:?}");
    assert_eq!(summary.phases[0].resumed_units, 5);
    assert_eq!(render_report(&store).unwrap(), reference);
    assert_eq!(render_attack_frontier(&store).unwrap(), frontier);
}

fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let (head, body) = text.split_once("\r\n\r\n").unwrap();
    (head.split("\r\n").next().unwrap().to_string(), body.to_string())
}

#[test]
fn http_endpoints_serve_the_live_campaign() {
    let dir = tmp_dir("http");
    let store = dir.join("served.jsonl");
    let coord = Coordinator::bind(CoordinatorOptions {
        http: Some("127.0.0.1:0".to_string()),
        quiet: true,
        ..Default::default()
    })
    .unwrap();
    let addr = coord.addr().to_string();
    let http = coord.http_addr().unwrap().to_string();

    // Live from bind time, before any campaign runs.
    let (status, body) = http_get(&http, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");

    let plans = vec![PhasePlan { label: "coverage".to_string(), matrix: matrix(), store }];
    let coord_thread = thread::spawn(move || coord.run("svc", &plans, None));

    // With no workers attached the campaign idles; poll until the phase
    // is announced, then check the mid-run views.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, progress) = http_get(&http, "/progress");
        if progress.contains("\"total_units\":8") {
            assert!(progress.contains("\"phase\":\"coverage\""), "{progress}");
            break;
        }
        assert!(Instant::now() < deadline, "phase never announced: {progress}");
        thread::sleep(Duration::from_millis(20));
    }
    let (status, report) = http_get(&http, "/report");
    assert!(status.contains("200"), "{status}");
    assert!(report.starts_with("run svc | seed 12648430"), "{report}");

    // /metrics renders Prometheus text format: every series is preceded
    // by its HELP/TYPE header, and no family is declared twice.
    let (status, metrics) = http_get(&http, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert_prometheus_text_format(&metrics);
    assert!(metrics.contains("cfed_workers 0"), "{metrics}");
    assert!(metrics.contains("cfed_units_completed_total 0"), "{metrics}");
    assert!(metrics.contains("cfed_metrics_scrapes_total 1"), "{metrics}");

    // The scrape itself lands in the queryable event store.
    let (status, events) = http_get(&http, "/events?kind=metrics_scrape");
    assert!(status.contains("200"), "{status}");
    assert!(events.contains("\"kind\":\"metrics_scrape\""), "{events}");
    assert!(events.contains("\"worker\":\"http\""), "{events}");
    let (_, none) = http_get(&http, "/events?kind=metrics_scrape&worker=nobody");
    assert!(none.contains("\"events\":[]"), "{none}");

    let worker = spawn_worker(&addr, "probe");
    worker.join().unwrap().unwrap();
    let summary = coord_thread.join().unwrap().unwrap();
    assert!(summary.complete(), "{summary:?}");
}

/// Structural Prometheus text-format validation: `# HELP` then `# TYPE`
/// for every family, samples only under a declared family, each family
/// declared at most once.
fn assert_prometheus_text_format(body: &str) {
    let mut declared: Vec<String> = Vec::new();
    let mut pending_help: Option<String> = None;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split(' ').next().unwrap().to_string();
            assert!(!declared.contains(&name), "family {name} declared twice:\n{body}");
            pending_help = Some(name);
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().unwrap().to_string();
            let kind = parts.next().unwrap();
            assert_eq!(pending_help.take().as_deref(), Some(name.as_str()), "TYPE without HELP");
            assert!(["counter", "gauge", "summary"].contains(&kind), "unknown metric type {kind}");
            declared.push(name);
        } else {
            assert!(!line.starts_with('#'), "unexpected comment {line}");
            let series = line.split([' ', '{']).next().unwrap();
            let family = declared.iter().any(|f| {
                series == *f
                    || series
                        .strip_prefix(f.as_str())
                        .is_some_and(|s| ["_sum", "_count"].contains(&s) || s.is_empty())
            });
            assert!(family, "sample {series} has no declared family:\n{body}");
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample value in {line:?}");
        }
    }
    assert!(!declared.is_empty(), "no metric families rendered:\n{body}");
}
