//! # cfed — software-based transparent and comprehensive control-flow error detection
//!
//! Umbrella crate for the reproduction of Borin, Wang, Wu & Araujo,
//! *"Software-Based Transparent and Comprehensive Control-Flow Error
//! Detection"* (CGO 2006). Re-exports every subsystem:
//!
//! * [`isa`] — the VISA virtual instruction set (x86-flavoured: condition
//!   flags, `rel32` branches, a flag-free `lea` family);
//! * [`asm`] — two-pass assembler and object images;
//! * [`lang`] — MiniC, the small language the guest workloads are written in;
//! * [`sim`] — the guest machine (paged memory with R/W/X permissions, CPU
//!   interpreter, traps, cycle accounting);
//! * [`dbt`] — the dynamic binary translator (translate-on-demand, code
//!   cache, block chaining, SMC handling, instrumentation API);
//! * [`core`] — the paper's contribution: branch-error classification,
//!   the ECF/EdgCF/RCF techniques, checking policies, and the §4 formal
//!   framework with executable single-error enumeration;
//! * [`fault`] — the §2 single-bit error model and fault-injection
//!   campaigns;
//! * [`workloads`] — 26 SPEC2000-analog guest programs;
//! * [`runner`] — sharded parallel campaign engine with a checkpointed
//!   JSONL result store (the `cfed-campaign` binary);
//! * [`fuzz`] — coverage-guided differential conformance engine: generated
//!   programs diffed across every backend × technique combination, plus
//!   the detection-guarantee sweep (the `cfed-fuzz` binary).
//!
//! ## Quickstart
//!
//! ```
//! use cfed::core::{run_dbt, RunConfig, TechniqueKind};
//! use cfed::lang::compile;
//!
//! let image = compile("fn main() { out(2 + 2); }")?;
//! let outcome = run_dbt(&image, &RunConfig::technique(TechniqueKind::EdgCf));
//! assert_eq!(outcome.output, vec![4]);
//! # Ok::<(), cfed::lang::CompileError>(())
//! ```

pub use cfed_asm as asm;
pub use cfed_core as core;
pub use cfed_dbt as dbt;
pub use cfed_fault as fault;
pub use cfed_fuzz as fuzz;
pub use cfed_isa as isa;
pub use cfed_lang as lang;
pub use cfed_runner as runner;
pub use cfed_sim as sim;
pub use cfed_workloads as workloads;
