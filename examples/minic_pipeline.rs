//! A tour of the compilation pipeline: MiniC source → AST → VISA assembly
//! listing → CFG recovery → execution under the DBT, showing what the
//! translator actually emits for one basic block under each technique.
//!
//! Run with: `cargo run --example minic_pipeline`

use cfed::core::cfg::Cfg;
use cfed::core::TechniqueKind;
use cfed::dbt::{Dbt, UpdateStyle};
use cfed::isa::disassemble;
use cfed::lang::{check, parse};
use cfed::sim::Machine;

fn main() {
    let source = r#"
        global hist[8];
        fn bucket(x) { return x % 8; }
        fn main() {
            let i = 0;
            while (i < 32) {
                let b = bucket(i * 37 + 11);
                hist[b] = hist[b] + 1;
                i = i + 1;
            }
            let j = 0;
            while (j < 8) { out(hist[j]); j = j + 1; }
        }
    "#;

    // Front end.
    let ast = parse(source).expect("parses");
    println!("parsed: {} global(s), {} function(s)", ast.globals.len(), ast.functions.len());
    let info = check(&ast).expect("semantically valid");
    for (name, fi) in &info.functions {
        println!("  fn {name}: {} param(s), {} local slot(s)", fi.arity, fi.locals);
    }

    // Code generation + listing.
    let image = cfed::lang::codegen::generate(&ast, &info).expect("codegen");
    println!("\nassembly listing (first 24 instructions):");
    for line in image.listing().lines().take(24) {
        println!("  {line}");
    }

    // Static CFG recovery.
    let cfg = Cfg::recover(&image);
    println!(
        "\nrecovered CFG: {} blocks, mean block length {:.1} instructions",
        cfg.blocks().len(),
        cfg.mean_block_len()
    );

    // What the DBT emits for the entry block under each technique.
    for kind in TechniqueKind::ALL {
        let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
        let mut dbt =
            Dbt::new(kind.instrumenter(cfed::dbt::CheckPolicy::AllBb), UpdateStyle::Jcc, &mut m);
        dbt.attach(&mut m).expect("attach");
        let entry = dbt.lookup(image.entry()).expect("entry translated");
        let len = (entry.cache_end - entry.cache_start) as usize;
        println!("\n{kind} translation of the entry block ({} cache bytes):", len);
        let bytes = m.mem.peek(entry.cache_start, len).to_vec();
        for line in disassemble(&bytes, entry.cache_start).lines() {
            println!("  {line}");
        }
        // Run it to completion for good measure.
        let exit = dbt.run(&mut m, 10_000_000);
        println!("  -> {exit:?}, output {:?}", m.cpu.output());
    }
}
