//! The paper's §4 made executable: enumerate every bounded single
//! control-flow error on a CFG and show which technique misses what —
//! CFCSS and ECCA (which cannot run in the DBT) included.
//!
//! Run with: `cargo run --example formal_verification`

use cfed::core::formal::{
    find_false_positive, find_undetected_single_errors, CfcssScheme, EccaScheme, EcfScheme,
    EdgCfScheme, FormalCfg, SignatureScheme,
};
use cfed::core::Category;
use std::collections::BTreeMap;

fn report<S: SignatureScheme>(cfg: &FormalCfg, scheme: &S) {
    let misses = find_undetected_single_errors(cfg, scheme);
    let fp = find_false_positive(cfg, scheme);
    let mut by_cat: BTreeMap<Category, usize> = BTreeMap::new();
    for m in &misses {
        *by_cat.entry(m.category).or_default() += 1;
    }
    println!("\n== {} ==", scheme.name());
    println!(
        "  false positives: {}",
        if fp.is_none() { "none (necessary condition holds)" } else { "YES — scheme broken" }
    );
    if misses.is_empty() {
        println!("  undetected single errors: none (sufficient condition holds)");
    } else {
        println!("  undetected single errors by category:");
        for (cat, n) in &by_cat {
            println!("    {cat}: {n}");
        }
        for m in misses.iter().take(3) {
            println!(
                "    e.g. at {} exit: logical {} but physical {} ({})",
                m.at, m.logical, m.physical, m.category
            );
        }
    }
}

fn main() {
    // The paper's Figure 1 shape: a diamond with a loop back edge.
    //   B0 -> {B1, B2};  B1 -> B3;  B2 -> B3;  B3 -> {B0, B4};  B4 exits.
    let cfg = FormalCfg::new(vec![vec![1, 2], vec![3], vec![3], vec![0, 4], vec![]]);
    println!("CFG: 5 blocks (diamond + loop), split into head/tail nodes per §4.1");

    report(&cfg, &CfcssScheme::new(&cfg));
    report(&cfg, &EccaScheme::new(&cfg));
    report(&cfg, &EcfScheme);
    report(&cfg, &EdgCfScheme);

    println!("\nSummary (matches the paper's §3 claims):");
    println!("  CFCSS  misses A, C and aliased D/E (common-predecessor signature sharing)");
    println!("  ECCA   misses A and C");
    println!("  ECF    misses exactly C (assignment-style updates are idempotent)");
    println!("  EdgCF  detects every single control-flow error (Claim 1)");
}
