//! Quickstart: compile a MiniC program, run it natively, run it under the
//! DBT with the RCF technique, then inject a control-flow error and watch
//! the instrumentation catch it.
//!
//! Run with: `cargo run --example quickstart`

use cfed::core::{run_dbt, run_native, RunConfig, TechniqueKind};
use cfed::fault::{golden_run, inject, FaultSpec, Outcome};
use cfed::lang::compile;

fn main() {
    let source = r#"
        // Sum the proper divisors of each n and count perfect numbers.
        fn sum_divisors(n) {
            let s = 0;
            let d = 1;
            while (d < n) {
                if (n % d == 0) { s = s + d; }
                d = d + 1;
            }
            return s;
        }
        fn main() {
            let n = 2;
            let perfect = 0;
            while (n <= 500) {
                if (sum_divisors(n) == n) { perfect = perfect + 1; out(n); }
                n = n + 1;
            }
            out(perfect);
        }
    "#;

    let image = compile(source).expect("MiniC program compiles");
    println!("compiled: {} instructions", image.len());

    // 1. Native execution (plain interpreter).
    let native = run_native(&image, 100_000_000);
    println!("\nnative:    exit={:?}", native.exit);
    println!("           output={:?} ({} cycles)", native.output, native.cycles);

    // 2. Under the DBT with RCF instrumentation — same observable behaviour.
    let cfg = RunConfig::technique(TechniqueKind::Rcf);
    let rcf = run_dbt(&image, &cfg);
    println!("\nunder RCF: exit={:?}", rcf.exit);
    println!("           output={:?} ({} cycles)", rcf.output, rcf.cycles);
    assert_eq!(native.output, rcf.output, "instrumentation must be transparent");
    println!(
        "           blocks translated: {}, slowdown vs native: {:.2}x",
        rcf.dbt.blocks,
        rcf.cycles as f64 / native.cycles as f64
    );

    // 3. Inject a single-bit fault into a branch offset of the translated
    //    code and watch the signature check report it.
    let golden = golden_run(&image, &cfg).expect("fault-free run succeeds");
    println!("\ninjecting single-bit faults ({} dynamic branch sites)...", golden.branches);
    let mut detected = 0;
    let mut shown = 0;
    for nth in (0..golden.branches).step_by((golden.branches / 40).max(1) as usize) {
        let spec = FaultSpec::AddrBit { nth, bit: 4 }; // flip ±128 bytes
        if let Some(result) =
            inject(&image, &cfg, spec, &golden).expect("fault-free prefix succeeds")
        {
            if result.outcome == Outcome::DetectedByCheck {
                detected += 1;
                if shown < 3 {
                    println!(
                        "  fault at branch #{nth} (category {}): detected by RCF after {} insts",
                        result.category, result.latency_insts
                    );
                    shown += 1;
                }
            }
        }
    }
    println!("  ... {detected} faults detected by the signature checks");
    assert!(detected > 0, "expected at least one check-detected fault");
}
