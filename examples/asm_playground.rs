//! Hand-written assembly under the microscope: write a guest program in
//! VISA assembly text, assemble it, run it natively and under each
//! technique, and exhaustively sweep every single-bit fault in its first
//! branches to see exactly which bits each technique catches.
//!
//! Run with: `cargo run --release --example asm_playground`

use cfed::asm::parse_asm;
use cfed::core::{run_dbt_with, run_native, Category, RunConfig, TechniqueKind};
use cfed::dbt::{CheckPolicy, UpdateStyle};
use cfed::fault::ExhaustiveSweep;

const PROGRAM: &str = r#"
; Collatz length of 27, written by hand.
start:
    mov   r0, 27        ; n
    mov   r1, 0         ; steps
loop:
    cmp   r0, 1
    je    done
    mov   r2, r0
    and   r2, 1
    jrz   r2, even
    ; odd: n = 3n + 1
    mov   r3, r0
    shl   r3, 1
    add   r0, r3
    add   r0, 1
    jmp   next
even:
    shr   r0, 1
next:
    add   r1, 1
    jmp   loop
done:
    out   r1
    halt
"#;

fn main() {
    let asm = parse_asm(PROGRAM).expect("assembles");
    let image = asm.assemble("start").expect("links");
    println!("assembled {} instructions:\n{}", image.len(), image.listing());

    let native = run_native(&image, 1_000_000);
    println!("native: {:?}, output {:?} (Collatz(27) = 111 steps)", native.exit, native.output);
    assert_eq!(native.output, vec![111]);

    // Same behaviour under every technique.
    for kind in TechniqueKind::ALL_FIVE {
        let instr = kind.instrumenter_for(&image, CheckPolicy::AllBb);
        let got = run_dbt_with(&image, instr, UpdateStyle::CMov, 10_000_000);
        println!("{:>6}: output {:?}, cycles {} ", kind.to_string(), got.output, got.cycles);
        assert_eq!(got.output, native.output, "{kind} must be transparent");
    }

    // Exhaustive single-bit sweep over the first 40 dynamic branches:
    // every (branch, bit) pair, for the baseline vs RCF.
    println!("\nexhaustive fault sweep (40 branches x 38 bits = 1520 injections each):");
    for technique in [None, Some(TechniqueKind::Rcf)] {
        let cfg = RunConfig { technique, style: UpdateStyle::CMov, ..RunConfig::default() };
        let report = ExhaustiveSweep::new(cfg, 40).run(&image).expect("workload is well-behaved");
        let name = technique.map_or("baseline".to_string(), |k| k.to_string());
        let s = report.sdc_prone_total();
        println!(
            "  {name:>8}: harmful faults detected {} | benign {} | SDC {} | timeouts {}",
            s.detected_check + s.detected_hw + s.other_fault,
            s.benign,
            s.sdc,
            s.timeout
        );
        let _ = Category::ALL;
    }
}
