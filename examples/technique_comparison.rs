//! Compare the three DBT techniques (ECF, EdgCF, RCF) on one workload:
//! instrumentation expansion, runtime overhead under each checking policy,
//! and per-category detection coverage from a small fault-injection
//! campaign — a miniature of the paper's whole evaluation on a single
//! program.
//!
//! Run with: `cargo run --release --example technique_comparison`

use cfed::core::{run_dbt, Category, RunConfig, TechniqueKind};
use cfed::dbt::{CheckPolicy, UpdateStyle};
use cfed::fault::Campaign;
use cfed::workloads::{by_name, Scale};

fn main() {
    let workload = by_name("181.mcf").expect("workload exists");
    let image = workload.image(Scale::Test).expect("compiles");
    println!("workload: {} ({})\n", workload.name, workload.suite);

    let base = run_dbt(&image, &RunConfig::baseline());
    println!("baseline DBT: {} cycles, {} blocks", base.cycles, base.dbt.blocks);

    // Overhead per technique × policy (the Figure 12 / Figure 15 axes),
    // including the CFG-dependent prior work (CFCSS, ECCA).
    println!(
        "\n{:>7} | {:>7} {:>7} {:>7} {:>7} | {:>9}",
        "", "ALLBB", "RET-BE", "RET", "END", "expansion"
    );
    for kind in TechniqueKind::ALL_FIVE {
        print!("{:>7} |", kind.to_string());
        let mut expansion = 0.0;
        for policy in CheckPolicy::ALL {
            let cfg = RunConfig { technique: Some(kind), policy, ..RunConfig::default() };
            let out = run_dbt(&image, &cfg);
            print!(" {:>7.3}", out.cycles as f64 / base.cycles as f64);
            if policy == CheckPolicy::AllBb {
                expansion = out.dbt.cache_insts as f64 / out.dbt.guest_insts as f64;
            }
        }
        println!(" | {expansion:>8.2}x");
    }

    // Jcc vs CMOVcc (the Figure 14 axis).
    println!("\nconditional-update style (ALLBB):");
    for kind in TechniqueKind::ALL {
        let s = |style| {
            let cfg = RunConfig { technique: Some(kind), style, ..RunConfig::default() };
            run_dbt(&image, &cfg).cycles as f64 / base.cycles as f64
        };
        println!(
            "  {:>6}: Jcc {:.3}  CMOVcc {:.3}",
            kind.to_string(),
            s(UpdateStyle::Jcc),
            s(UpdateStyle::CMov)
        );
    }

    // Coverage: small deterministic injection campaign per technique.
    println!("\nfault-injection coverage (120 faults each, CMOVcc style):");
    println!("{:>9} | {:>9} {:>9} {:>9} {:>9}", "", "detected", "benign", "SDC", "A–E cover");
    let mut configs = vec![None];
    configs.extend(TechniqueKind::ALL_FIVE.into_iter().rev().map(Some));
    for technique in configs {
        let cfg = RunConfig { technique, style: UpdateStyle::CMov, ..RunConfig::default() };
        let report = Campaign::new(cfg, 120).run(&image).expect("workload is well-behaved");
        let s = report.sdc_prone_total();
        let detected = s.detected_check + s.detected_hw + s.other_fault;
        println!(
            "{:>9} | {:>9} {:>9} {:>9} {:>8.1}%",
            technique.map_or("baseline".into(), |k| k.to_string()),
            detected,
            s.benign,
            s.sdc,
            100.0 * s.coverage()
        );
        let _ = Category::ALL; // (full per-category tables: see coverage_matrix)
    }
    println!("\n(the full 26-workload versions of these tables: cargo run --release -p cfed-bench --bin fig12_slowdown / fig14_update_style / fig15_policies / coverage_matrix)");
}
