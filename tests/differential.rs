//! Property-based differential testing: randomly generated MiniC programs
//! must behave identically natively and under the DBT with every technique
//! — outputs, exit codes and traps all match. This is the "transparent" in
//! the paper's title, tested over a program space rather than hand-picked
//! examples.

use cfed::core::{run_dbt, run_native, RunConfig, TechniqueKind};
use cfed::dbt::UpdateStyle;
use proptest::prelude::*;

/// A tiny expression generator producing well-formed MiniC expressions over
/// the variables `a`, `b`, `c` (always declared, never zero-divisors
/// because we guard division).
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            (0i64..100).prop_map(|n| n.to_string()),
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            arb_expr(0),
            (sub.clone(), sub.clone(), 0usize..8).prop_map(|(l, r, op)| {
                let ops = ["+", "-", "*", "&", "|", "^", "<<", ">>"];
                match ops[op] {
                    "<<" => format!("(({l}) << (({r}) & 7))"),
                    ">>" => format!("((({l}) & 0xFFFF) >> (({r}) & 7))"),
                    o => format!("(({l}) {o} ({r}))"),
                }
            }),
            (sub.clone(), sub.clone()).prop_map(|(l, r)| {
                // guarded division / modulo
                format!("(({l}) / ((({r}) & 15) + 1))")
            }),
            (sub.clone(), sub).prop_map(|(l, r)| format!("(({l}) < ({r}))")),
        ]
        .boxed()
    }
}

prop_compose! {
    fn arb_program()(
        e1 in arb_expr(3),
        e2 in arb_expr(3),
        cond in arb_expr(2),
        bound in 1u64..20,
        init_a in 0i64..1000,
        init_b in 0i64..1000,
    ) -> String {
        format!(
            r#"
            global acc;
            fn step(a, b, c) {{
                if ({cond}) {{ return {e1}; }}
                return {e2};
            }}
            fn main() {{
                let a = {init_a};
                let b = {init_b};
                let c = 0;
                while (c < {bound}) {{
                    acc = (acc ^ step(a, b, c)) & 0xFFFFFFFF;
                    a = (a + 13) & 0xFFFF;
                    b = (b + 7) & 0xFFFF;
                    c = c + 1;
                    out(acc);
                }}
            }}
            "#
        )
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs behave identically under every technique/style.
    #[test]
    fn dbt_is_transparent_on_random_programs(src in arb_program()) {
        let image = cfed::lang::compile(&src).expect("generated programs are valid MiniC");
        let native = run_native(&image, 50_000_000);
        for kind in TechniqueKind::ALL {
            for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
                let cfg = RunConfig { technique: Some(kind), style, ..RunConfig::default() };
                let got = run_dbt(&image, &cfg);
                prop_assert_eq!(got.exit, native.exit, "{}/{}", kind, style);
                prop_assert_eq!(&got.output, &native.output, "{}/{}", kind, style);
            }
        }
    }

    /// The baseline DBT (no instrumentation) is transparent too, and no
    /// slower than the instrumented configurations.
    #[test]
    fn baseline_transparent_and_cheapest(src in arb_program()) {
        let image = cfed::lang::compile(&src).expect("valid");
        let native = run_native(&image, 50_000_000);
        let base = run_dbt(&image, &RunConfig::baseline());
        prop_assert_eq!(base.exit, native.exit);
        prop_assert_eq!(&base.output, &native.output);
        let rcf = run_dbt(&image, &RunConfig::technique(TechniqueKind::Rcf));
        prop_assert!(rcf.cycles >= base.cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The MiniC optimizer is semantics-preserving: optimized and
    /// unoptimized builds of a random program produce identical outputs,
    /// and the optimized build never retires more instructions.
    #[test]
    fn optimizer_preserves_semantics(src in arb_program()) {
        let plain = cfed::lang::compile(&src).expect("valid");
        let opt = cfed::lang::compile_optimized(&src).expect("valid optimized");
        let a = run_native(&plain, 50_000_000);
        let b = run_native(&opt, 50_000_000);
        prop_assert_eq!(a.exit, b.exit);
        prop_assert_eq!(&a.output, &b.output);
        prop_assert!(b.insts <= a.insts, "optimizer made things worse: {} vs {}", b.insts, a.insts);
    }
}
