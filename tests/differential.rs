//! Property-based differential testing: randomly generated MiniC programs
//! must behave identically natively and under the DBT with every technique
//! — outputs, exit codes and traps all match. This is the "transparent" in
//! the paper's title, tested over a program space rather than hand-picked
//! examples.
//!
//! Programs are drawn from `cfed-fuzz`'s tier-one generator (the same
//! space the `cfed-fuzz` campaign and the regression corpus use), so a
//! construct added to the generator is picked up by every suite at once.

use cfed::core::{run_dbt, run_native, RunConfig, TechniqueKind};
use cfed::dbt::UpdateStyle;
use cfed::fuzz::gen::strategies::minic_source;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs behave identically under every technique/style.
    #[test]
    fn dbt_is_transparent_on_random_programs(src in minic_source()) {
        let image = cfed::lang::compile(&src).expect("generated programs are valid MiniC");
        let native = run_native(&image, 50_000_000);
        for kind in TechniqueKind::ALL {
            for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
                let cfg = RunConfig { technique: Some(kind), style, ..RunConfig::default() };
                let got = run_dbt(&image, &cfg);
                prop_assert_eq!(got.exit, native.exit, "{}/{}", kind, style);
                prop_assert_eq!(&got.output, &native.output, "{}/{}", kind, style);
            }
        }
    }

    /// The baseline DBT (no instrumentation) is transparent too, and no
    /// slower than the instrumented configurations.
    #[test]
    fn baseline_transparent_and_cheapest(src in minic_source()) {
        let image = cfed::lang::compile(&src).expect("valid");
        let native = run_native(&image, 50_000_000);
        let base = run_dbt(&image, &RunConfig::baseline());
        prop_assert_eq!(base.exit, native.exit);
        prop_assert_eq!(&base.output, &native.output);
        let rcf = run_dbt(&image, &RunConfig::technique(TechniqueKind::Rcf));
        prop_assert!(rcf.cycles >= base.cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The MiniC optimizer is semantics-preserving: optimized and
    /// unoptimized builds of a random program produce identical outputs,
    /// and the optimized build never retires more instructions.
    #[test]
    fn optimizer_preserves_semantics(src in minic_source()) {
        let plain = cfed::lang::compile(&src).expect("valid");
        let opt = cfed::lang::compile_optimized(&src).expect("valid optimized");
        let a = run_native(&plain, 50_000_000);
        let b = run_native(&opt, 50_000_000);
        prop_assert_eq!(a.exit, b.exit);
        prop_assert_eq!(&a.output, &b.output);
        prop_assert!(b.insts <= a.insts, "optimizer made things worse: {} vs {}", b.insts, a.insts);
    }
}
