//! Detected-or-Benign for adversarial control-flow attacks.
//!
//! The campaign suites (`tier_detection.rs`, `native_detection.rs`) pin the
//! paper's guarantee against the §2 single-bit error model. This suite pins
//! it against the `cfed-fault` attack generator: deliberate corruptions —
//! return-address overwrites, cross-block edge splices past the signature
//! head, mid-instruction gadget entries, jump-table slides, stack pivots —
//! that a bit flip cannot express.
//!
//! Adversarial reach is exactly what splits the paper's two techniques.
//! The DESIGN.md coverage table has one row the SEU campaigns barely
//! exercise: *errors on inserted check branches* — EdgCF ✗, RCF ✓. Under
//! the SEU model a fault at an inserted `jrnz` is benign (the check branch
//! is flag-free and not-taken on a correct run, so offset flips never act);
//! an attacker, however, seizes the program counter *at* the check, where
//! EdgCF's in-body signature is the shared zero. A body landing then finds
//! a consistent signature and escapes — EdgCF's documented gap, visible in
//! the frontier as edge-splice/jump-corrupt SDC. RCF's per-block region
//! values close it. The sweep therefore asserts:
//!
//! - **RCF**: every placed attack of every archetype ends Detected (a
//!   CFE-report trap or the hardware path), Benign, or fail-stop — with
//!   only the fuzz sweeper's exemptions (sub-block landings:
//!   `instrumentation_landing` or `latency_insts <= 1`; category A under
//!   Jcc, where the inserted selector consumes corrupted flags).
//! - **EdgCF**: the same for every archetype except the body-landing pair
//!   (`edge-splice`, `jump-corrupt`); for those, any surviving SDC must be
//!   a category C/E body landing — the one documented escape shape.
//!
//! On top of the outcome guarantee, every placed attack must classify
//! inside its archetype's pinned A–F set, and the pause-style engine
//! attacks must be bit-identical between the fused interpreter and the
//! native backend, with and without the trace tier (the suite degrades to
//! interpreter-only under `CFED_NO_NATIVE=1`, like the rest of the matrix).

use cfed::core::{Category, RunConfig, TechniqueKind};
use cfed::dbt::{native_enabled, UpdateStyle};
use cfed::fault::{attack_with, pause_attack, AttackKind, AttackSpec, Outcome};
use cfed::fault::{AttackExit, SnapshotSet};
use cfed::lang::compile;

const PROGRAM: &str = r#"
    fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
    fn main() {
        let i = 0;
        let acc = 3;
        while (i < 40) {
            if (i % 3 == 1) { acc = acc * 2 - i; } else { acc = acc + leaf(i); }
            i = i + 1;
        }
        out(acc);
    }
"#;

/// The techniques whose detection guarantee the sweep enforces — the same
/// pair the fuzz sweeper guards for the SEU model.
const GUARANTEED: [TechniqueKind; 2] = [TechniqueKind::EdgCf, TechniqueKind::Rcf];

/// Strike points per (archetype, technique, style): strided across the full
/// dynamic branch range so early setup, the hot loop and the epilogue are
/// all attacked.
const SITES: u64 = 48;

/// Whether this archetype lands on block *bodies* — the target shape of
/// EdgCF's inserted-branch gap (see the module doc). Head-targeting,
/// misaligned and out-of-cache archetypes are guaranteed by both
/// techniques.
fn body_landing(archetype: AttackKind) -> bool {
    matches!(archetype, AttackKind::EdgeSplice | AttackKind::JumpCorrupt)
}

/// The fuzz sweeper's exemptions, verbatim: sub-block landings are below
/// the paper's block-granular model for both styles; under Jcc a
/// category-A corruption mis-selects the inserted update branch
/// consistently with the wrong arm, outside any signature scheme's reach.
fn exempt(
    style: UpdateStyle,
    category: Category,
    instrumentation_landing: bool,
    latency_insts: u64,
) -> bool {
    instrumentation_landing
        || latency_insts <= 1
        || (style == UpdateStyle::Jcc && category == Category::A)
}

#[test]
fn attacks_under_guaranteed_techniques_end_detected_or_benign() {
    let image = compile(PROGRAM).expect("valid program");
    for kind in GUARANTEED {
        for style in [UpdateStyle::CMov, UpdateStyle::Jcc] {
            let cfg = RunConfig { style, max_insts: 2_000_000, ..RunConfig::technique(kind) };
            let (golden, snapshots) =
                SnapshotSet::capture(&image, &cfg).expect("attack-free run halts");
            assert!(golden.branches > SITES, "program too small to sweep");

            let mut placed = [0u64; 7];
            let mut detections = [0u64; 7];
            for archetype in AttackKind::ALL {
                for i in 0..SITES {
                    let nth = i * golden.branches / SITES;
                    for param in [i, i * 31 + 7] {
                        let spec = AttackSpec { kind: archetype, nth, param };
                        let Some(r) = attack_with(&image, &cfg, spec, &golden, Some(&snapshots))
                            .expect("prefix replay is attack-free")
                        else {
                            continue; // unplaceable at this strike point
                        };
                        placed[archetype.idx()] += 1;

                        // Taxonomy: placed attacks classify inside the
                        // archetype's pinned set — never NoError.
                        assert!(
                            archetype.expected_categories().contains(&r.category),
                            "{kind}/{style:?} {archetype} nth={nth}: \
                             classified {} outside the pinned set",
                            r.category
                        );

                        match r.outcome {
                            Outcome::DetectedByCheck | Outcome::DetectedByHw => {
                                detections[archetype.idx()] += 1;
                            }
                            // Benign is only recorded after the run halted
                            // with golden-identical output and exit code.
                            Outcome::Benign => {}
                            // Fail-stop endings: the corrupted suffix
                            // crashed on an unrelated guest trap or hung
                            // into the watchdog. Loud, not silent — the
                            // guarantee (like the fuzz sweeper's) only
                            // forbids *silent* corruption.
                            Outcome::OtherFault | Outcome::Timeout => {}
                            Outcome::Sdc => {
                                if exempt(
                                    style,
                                    r.category,
                                    r.instrumentation_landing,
                                    r.latency_insts,
                                ) {
                                    continue;
                                }
                                if kind == TechniqueKind::Rcf || !body_landing(archetype) {
                                    panic!(
                                        "{kind}/{style:?} {archetype} nth={nth} param={param}: \
                                         silent corruption escaped detection \
                                         (category {}, latency {}, landing {})",
                                        r.category, r.latency_insts, r.instrumentation_landing
                                    );
                                }
                                // EdgCF's documented gap: a strike at an
                                // inserted branch (where the in-body
                                // signature is the shared zero) landing in
                                // a block body finds a consistent
                                // signature. Only that shape may survive.
                                assert!(
                                    matches!(r.category, Category::C | Category::E),
                                    "{kind}/{style:?} {archetype} nth={nth} param={param}: \
                                     SDC outside the inserted-branch escape shape \
                                     (category {}, latency {})",
                                    r.category,
                                    r.latency_insts
                                );
                            }
                        }
                    }
                }
            }

            for archetype in AttackKind::ALL {
                assert!(
                    placed[archetype.idx()] > 0,
                    "{kind}/{style:?}: {archetype} never placed across the sweep"
                );
            }
            // The guarantee is only meaningful if the checks actually fire:
            // the pure-redirect archetypes must each see real detections.
            for archetype in [
                AttackKind::ReenterBlock,
                AttackKind::GadgetEntry,
                AttackKind::RetGadget,
                AttackKind::EdgeSplice,
                AttackKind::DataPivot,
            ] {
                assert!(
                    detections[archetype.idx()] > 0,
                    "{kind}/{style:?}: {archetype} was never detected \
                     ({} placed)",
                    placed[archetype.idx()]
                );
            }
            // flip-branch is the style-splitting archetype: CMov's update
            // consumed the true flags before the corruption, so the very
            // next check fires.
            if style == UpdateStyle::CMov {
                assert!(
                    detections[AttackKind::FlipBranch.idx()] > 0,
                    "{kind}/CMov: flip-branch must trip the target check"
                );
            }
        }
    }
}

#[test]
fn pause_attacks_are_bit_identical_across_engines() {
    // The engine-level attack path: pause mid-run, seize the program
    // counter with the archetype's target, resume. Fused interpreter and
    // native backend must agree byte-for-byte on every field — exit (trap
    // payloads included), output, retired counts — with and without the
    // trace tier. The Detected-or-Benign assertion is scoped like the
    // campaign sweep's: RCF carries it for every seizure archetype except
    // `jump-corrupt` (a mid-body slide crosses no edge — an
    // instruction-skip *data* fault, outside the branch-error model);
    // EdgCF carries it for the head-targeting and hardware-trapped
    // archetypes. Under `CFED_NO_NATIVE=1` the native comparisons degrade
    // to self-comparison, keeping the sweep's verdict identical.
    let image = compile(PROGRAM).expect("valid program");
    let golden = {
        let cfg = RunConfig { max_insts: 2_000_000, ..RunConfig::baseline() };
        cfed::fault::golden_run(&image, &cfg).expect("golden run halts")
    };

    for kind in GUARANTEED {
        let cfg = RunConfig { max_insts: 2_000_000, ..RunConfig::technique(kind) };
        let mut placed = 0usize;
        let mut detected = 0usize;
        for archetype in AttackKind::ALL {
            if archetype == AttackKind::FlipBranch {
                continue; // not a program-counter seizure; no pause form
            }
            let guaranteed = match kind {
                TechniqueKind::Rcf => archetype != AttackKind::JumpCorrupt,
                _ => !body_landing(archetype),
            };
            for pause in [900u64, 2400, 5200] {
                for param in [3u64, 11] {
                    let fused = pause_attack(&image, &cfg, archetype, param, pause, false, None);
                    let tiered =
                        pause_attack(&image, &cfg, archetype, param, pause, false, Some(8));
                    if native_enabled() {
                        let native =
                            pause_attack(&image, &cfg, archetype, param, pause, true, None);
                        assert_eq!(
                            fused, native,
                            "{kind} {archetype} pause={pause} param={param}: \
                             fused and native disagree"
                        );
                        let tiered_native =
                            pause_attack(&image, &cfg, archetype, param, pause, true, Some(8));
                        assert_eq!(
                            tiered, tiered_native,
                            "{kind} {archetype} pause={pause} param={param}: \
                             tiered fused and tiered native disagree"
                        );
                    }
                    if !fused.placed {
                        continue;
                    }
                    placed += 1;
                    if fused.detected() {
                        detected += 1;
                        continue;
                    }
                    if !guaranteed {
                        continue;
                    }
                    match &fused.exit {
                        AttackExit::Halted { .. } => assert_eq!(
                            fused.output, golden.output,
                            "{kind} {archetype} pause={pause} param={param}: \
                             silent corruption escaped detection"
                        ),
                        other => panic!(
                            "{kind} {archetype} pause={pause} param={param}: \
                             unexpected exit {other:?}"
                        ),
                    }
                }
            }
        }
        assert!(placed >= 8, "{kind}: only {placed} pause attacks placed");
        assert!(detected > 0, "{kind}: no pause attack was ever detected ({placed} placed)");
    }
}

#[test]
fn uninstrumented_runs_set_the_hardware_only_floor() {
    // Baseline (no technique) catches only what the hardware model traps:
    // misaligned gadget entries and non-executable pivots. The archetypes
    // that stay inside translated code — ret-gadget, edge-splice — must
    // sail through undetected on at least one strike, which is precisely
    // the coverage gap the frontier report quantifies.
    let image = compile(PROGRAM).expect("valid program");
    let cfg = RunConfig { max_insts: 2_000_000, ..RunConfig::baseline() };

    for archetype in [AttackKind::GadgetEntry, AttackKind::DataPivot] {
        let run = pause_attack(&image, &cfg, archetype, 2, 900, false, None);
        assert!(run.placed, "{archetype} must place at the pause point");
        assert!(run.detected(), "{archetype} must trip the hardware path");
    }

    let mut undetected = 0;
    for archetype in [AttackKind::RetGadget, AttackKind::EdgeSplice] {
        for pause in [900u64, 2400] {
            for param in [3u64, 11] {
                let run = pause_attack(&image, &cfg, archetype, param, pause, false, None);
                if run.placed && !run.detected() {
                    undetected += 1;
                }
            }
        }
    }
    assert!(undetected > 0, "software attacks must evade the uninstrumented baseline");
}
