//! Tier-2 (trace) behaviour across the engine matrix, and the paper's
//! Detected-or-Benign guarantee with the trace tier enabled.
//!
//! The optimizing tier moves signature code: interior update pairs cancel
//! and per-block checks hoist to the trace head (legal per §6's policy
//! spectrum, and mechanically re-verified by `cfed-core`'s
//! `PlacementVerifier` before every install). These tests pin what the
//! optimization must preserve:
//!
//! 1. guest-observable behaviour (exit + output) is identical across
//!    {fused, native} × {tier off, tier on};
//! 2. a live single-bit corruption of the shadow signature register while
//!    hot traces are installed still ends Detected (a CFE-report trap from
//!    a check the *trace* emitted) or Benign — never silent corruption;
//! 3. the engine's in-guest hot counters agree with the independent
//!    `ExecProfiler` tally of the same execution.

use cfed::core::{run_dbt_tiered_enabled, trace_tier_config, RunConfig, TechniqueKind};
use cfed::dbt::{native_enabled, regs, DbtExit, NativeDbt, UpdateStyle};
use cfed::lang::compile;
use cfed::sim::Machine;

const PROGRAM: &str = r#"
    fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
    fn main() {
        let i = 0;
        let acc = 3;
        while (i < 400) {
            if (i % 3 == 1) { acc = acc * 2 - i; } else { acc = acc + leaf(i); }
            i = i + 1;
        }
        out(acc);
    }
"#;

const THRESHOLD: u32 = 8;

#[test]
fn tier_matrix_is_guest_equivalent() {
    let image = compile(PROGRAM).expect("valid program");
    for kind in [None, Some(TechniqueKind::EdgCf)] {
        for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
            let cfg =
                RunConfig { technique: kind, style, max_insts: 10_000_000, ..RunConfig::default() };
            let reference = run_dbt_tiered_enabled(&image, &cfg, THRESHOLD, false, false);
            assert!(matches!(reference.exit, DbtExit::Halted { .. }));
            let mut tiered_traces = 0;
            for native in [false, native_enabled()] {
                for tier in [false, true] {
                    let run = run_dbt_tiered_enabled(&image, &cfg, THRESHOLD, native, tier);
                    assert_eq!(run.exit, reference.exit, "{kind:?}/{style:?} n={native} t={tier}");
                    assert_eq!(
                        run.output, reference.output,
                        "{kind:?}/{style:?} n={native} t={tier}"
                    );
                    if tier {
                        tiered_traces = tiered_traces.max(run.dbt.traces);
                    } else {
                        assert_eq!(run.dbt.traces, 0);
                    }
                }
            }
            assert!(tiered_traces >= 1, "{kind:?}/{style:?}: the hot loop must promote to a trace");
        }
    }
}

#[test]
fn tiered_runs_beat_tier_1_on_retired_instructions_for_edgcf() {
    // EdgCF is where the IR passes earn their keep: interior +S/−S pairs
    // cancel and per-block checks hoist to the trace head.
    let image = compile(PROGRAM).expect("valid program");
    let cfg = RunConfig { max_insts: 10_000_000, ..RunConfig::technique(TechniqueKind::EdgCf) };
    let plain = run_dbt_tiered_enabled(&image, &cfg, THRESHOLD, false, false);
    let tiered = run_dbt_tiered_enabled(&image, &cfg, THRESHOLD, false, true);
    assert_eq!(plain.output, tiered.output);
    assert!(tiered.dbt.traces >= 1);
    assert!(
        tiered.insts < plain.insts,
        "optimized traces must retire fewer instructions ({} vs {})",
        tiered.insts,
        plain.insts
    );
}

/// Outcome of one pause/corrupt/resume run under the tiered engine.
#[derive(Debug, PartialEq, Eq)]
struct CorruptOutcome {
    exit: DbtExit,
    output: Vec<u64>,
    insts: u64,
    cycles: u64,
    stats: cfed::dbt::DbtStats,
}

fn run_corrupted_tiered(
    image: &cfed::asm::Image,
    style: UpdateStyle,
    native: bool,
    pause: u64,
    bit: u32,
) -> CorruptOutcome {
    let cfg = RunConfig { style, ..RunConfig::technique(TechniqueKind::EdgCf) };
    let tier = trace_tier_config(&cfg, THRESHOLD).expect("EdgCF supports the trace tier");
    let instr = TechniqueKind::EdgCf.instrumenter_for(image, cfg.policy);
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = NativeDbt::with_options(instr, style, &mut m, native, Some(tier));
    let exit = match dbt.run(&mut m, pause) {
        DbtExit::StepLimit => {
            let sig = m.cpu.reg(regs::PC_PRIME);
            m.cpu.set_reg(regs::PC_PRIME, sig ^ (1u64 << bit));
            dbt.run(&mut m, 2_000_000)
        }
        other => other,
    };
    CorruptOutcome {
        exit,
        output: m.cpu.take_output(),
        insts: m.cpu.stats().insts,
        cycles: m.cpu.stats().cycles,
        stats: dbt.stats(),
    }
}

#[test]
fn live_signature_faults_detected_or_benign_with_tier_enabled() {
    let image = compile(PROGRAM).expect("valid program");
    let golden_cfg = RunConfig { max_insts: 10_000_000, ..RunConfig::baseline() };
    let golden = run_dbt_tiered_enabled(&image, &golden_cfg, THRESHOLD, false, false);
    let DbtExit::Halted { .. } = golden.exit else {
        panic!("golden run must halt, got {:?}", golden.exit)
    };

    for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
        let mut detections = 0usize;
        // Pause points chosen past the promotion threshold so corruption
        // lands while hot traces are installed; the resumed check that
        // fires is then the hoisted trace-head check.
        for pause in [6000u64, 9001, 14000] {
            for bit in 0..64 {
                let fused = run_corrupted_tiered(&image, style, false, pause, bit);
                assert!(
                    fused.stats.traces >= 1,
                    "{style:?} pause={pause}: corruption must land on a tiered run"
                );
                if native_enabled() {
                    let native = run_corrupted_tiered(&image, style, true, pause, bit);
                    assert_eq!(
                        fused, native,
                        "{style:?} pause={pause} bit={bit}: tiered fused and native \
                         disagree after signature corruption"
                    );
                }
                match &fused.exit {
                    DbtExit::Trapped(t) if t.is_cfe_report() => detections += 1,
                    DbtExit::Halted { .. } => assert_eq!(
                        fused.output, golden.output,
                        "{style:?} pause={pause} bit={bit}: silent data corruption \
                         escaped detection with the trace tier enabled"
                    ),
                    other => panic!("{style:?} pause={pause} bit={bit}: unexpected exit {other:?}"),
                }
            }
        }
        assert!(
            detections >= 64,
            "{style:?}: only {detections} CFE detections across the tiered sweep"
        );
    }
}

#[test]
fn engine_hot_counters_agree_with_exec_profiler() {
    // Independent cross-check of the tier-up profile: the hottest guest
    // block's execution count measured by the engine's in-guest countdown
    // counters must equal the hottest line of the interpreter's
    // `ExecProfiler` for the same program.
    let image = compile(PROGRAM).expect("valid program");

    // Interpreter run with the sampling profiler: per-guest-address hits.
    let mut mi = Machine::load(image.code(), image.data(), image.entry_offset());
    mi.enable_profiler();
    assert!(matches!(mi.run(10_000_000), cfed::sim::ExitReason::Halted { .. }));
    let profiler = mi.take_profiler().expect("profiler was enabled");
    let max_hits = profiler.samples().map(|(_, hits, _)| hits).max().expect("samples");

    // Tiered run with a threshold no block can reach: every counter's
    // residual encodes that block's entry count exactly.
    let huge = 1 << 20;
    let cfg = RunConfig { max_insts: 10_000_000, ..RunConfig::default() };
    let tier = trace_tier_config(&cfg, huge).expect("baseline supports the trace tier");
    let mut mt = Machine::load(image.code(), image.data(), image.entry_offset());
    let mut dbt = cfed::dbt::Dbt::new_tiered(
        Box::new(cfed::dbt::NullInstrumenter),
        UpdateStyle::Jcc,
        &mut mt,
        tier,
    );
    assert!(matches!(dbt.run(&mut mt, 10_000_000), DbtExit::Halted { .. }));
    assert_eq!(dbt.stats().traces, 0, "threshold must be unreachable");
    let counters = mt.layout().cache_region.start;
    let max_entries = (0..dbt.stats().blocks)
        .map(|slot| {
            let bytes: [u8; 8] =
                mt.mem.peek(counters + slot * 8, 8).try_into().expect("counter slot");
            u64::from(huge) - u64::from_le_bytes(bytes)
        })
        .max()
        .expect("at least one block");
    assert_eq!(
        max_entries, max_hits,
        "engine hot counters and ExecProfiler disagree on the hottest block"
    );
}
