//! Detection-guarantee behaviour on natively-emitted code.
//!
//! The `cfed-fuzz` detection sweeper enforces the paper's Detected-or-
//! Benign guarantee for EdgCF/RCF on the stepping engine (it must single-
//! step to reach the nth dynamic branch and to measure detection latency),
//! so it cannot run on the JIT directly. This suite transfers the guarantee
//! to the native x86-64 backend two ways:
//!
//! 1. **Static sweep, identity.** For every single-bit corruption of a
//!    static branch offset, the natively-compiled instrumented program must
//!    behave bit-identically to the fused-interpreter run of the same
//!    corrupted image — same exit (trap payloads included), same output,
//!    same retired counts, same translator counters. Since the sweeper pins
//!    the interpreter side, identity pins the JIT. (Static image faults are
//!    re-instrumented as the legitimate program, so they exercise the trap
//!    and re-landing paths, not the signature checks.)
//!
//! 2. **Dynamic sweep, detection.** Pausing a native run mid-program on a
//!    step budget, flipping one bit of the live signature register
//!    (`regs::PC_PRIME`, the shadow program counter both techniques
//!    maintain), and resuming models the paper's transient control-flow
//!    error directly: every such flip must end Detected (a CFE-report trap
//!    raised by a check sequence the JIT emitted) or Benign (golden output),
//!    never silent corruption — and the whole run must stay bit-identical
//!    to the fallback engine under the same pause/corrupt/resume schedule.

use cfed::asm::Image;
use cfed::core::{run_dbt_native_enabled, RunConfig, TechniqueKind};
use cfed::dbt::{native_enabled, regs, CheckPolicy, DbtExit, NativeDbt, UpdateStyle};
use cfed::fuzz::shrink::rebuild_image;
use cfed::lang::compile;
use cfed::sim::Machine;

const PROGRAM: &str = r#"
    fn leaf(x) { if (x % 2 == 0) { return x * 3; } return x + 7; }
    fn main() {
        let i = 0;
        let acc = 3;
        while (i < 400) {
            if (i % 3 == 1) { acc = acc * 2 - i; } else { acc = acc + leaf(i); }
            i = i + 1;
        }
        out(acc);
    }
"#;

/// Every single-bit flip of each of the first `site_cap` static branch
/// offsets, as rebuilt images. Bits are capped below 24 so that faulted
/// branch targets stay within the signature domain (signatures derive from
/// guest addresses and must fit in an x86 imm32).
fn faulted_images(image: &Image, site_cap: usize) -> Vec<Image> {
    let entry_index = (image.entry_offset() / cfed::isa::INST_SIZE_U64) as usize;
    let mut out = Vec::new();
    let mut sites = 0;
    for (idx, inst) in image.insts().iter().enumerate() {
        let Some(offset) = inst.branch_offset() else { continue };
        sites += 1;
        if sites > site_cap {
            break;
        }
        for bit in 0..24 {
            let mut insts = image.insts().to_vec();
            insts[idx] = inst.with_branch_offset(offset ^ (1 << bit));
            if let Some(img) = rebuild_image(&insts, image.data(), entry_index) {
                out.push(img);
            }
        }
    }
    out
}

#[test]
fn static_branch_faults_behave_identically_under_native() {
    if !native_enabled() {
        return; // fallback engine IS the reference; nothing to compare
    }
    let image = compile(PROGRAM).expect("valid program");
    let faulted = faulted_images(&image, 4);
    assert!(faulted.len() >= 64, "expected several branch sites to sweep");

    for kind in [TechniqueKind::EdgCf, TechniqueKind::Rcf] {
        for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
            let cfg = RunConfig { style, max_insts: 2_000_000, ..RunConfig::technique(kind) };
            for img in &faulted {
                let native = run_dbt_native_enabled(img, &cfg, true);
                let interp = run_dbt_native_enabled(img, &cfg, false);
                assert_eq!(
                    native, interp,
                    "{kind}/{style:?}: native and interpreter disagree on a faulted image"
                );
            }
        }
    }
}

/// Outcome of one pause/corrupt/resume run, in full: exit, output, retired
/// counts, and translator counters — everything the equivalence suite pins.
#[derive(Debug, PartialEq, Eq)]
struct CorruptOutcome {
    exit: DbtExit,
    output: Vec<u64>,
    insts: u64,
    cycles: u64,
    stats: cfed::dbt::DbtStats,
}

/// Run `image` under `kind`/`style`, pause after roughly `pause` retired
/// instructions, XOR `bit` into the live signature register, and resume to
/// completion.
fn run_corrupted(
    image: &Image,
    kind: TechniqueKind,
    style: UpdateStyle,
    native: bool,
    pause: u64,
    bit: u32,
) -> CorruptOutcome {
    let mut m = Machine::load(image.code(), image.data(), image.entry_offset());
    let instr = kind.instrumenter_for(image, CheckPolicy::AllBb);
    let mut dbt = NativeDbt::with_native(instr, style, &mut m, native);
    let exit = match dbt.run(&mut m, pause) {
        DbtExit::StepLimit => {
            let sig = m.cpu.reg(regs::PC_PRIME);
            m.cpu.set_reg(regs::PC_PRIME, sig ^ (1u64 << bit));
            dbt.run(&mut m, 2_000_000)
        }
        // Program finished before the pause point; the flip never happened.
        other => other,
    };
    CorruptOutcome {
        exit,
        output: m.cpu.take_output(),
        insts: m.cpu.stats().insts,
        cycles: m.cpu.stats().cycles,
        stats: dbt.stats(),
    }
}

#[test]
fn live_signature_faults_are_detected_or_benign_under_native() {
    if !native_enabled() {
        return;
    }
    let image = compile(PROGRAM).expect("valid program");
    let golden = run_dbt_native_enabled(&image, &RunConfig::baseline(), true);
    let DbtExit::Halted { .. } = golden.exit else {
        panic!("golden run must halt, got {:?}", golden.exit)
    };

    for kind in [TechniqueKind::EdgCf, TechniqueKind::Rcf] {
        for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
            let mut detections = 0usize;
            // Pause points past the 4096-instruction native session floor,
            // so corruption lands between natively-executed sessions and
            // the resumed check sequences run from JIT-emitted code. A
            // pause can land right before an unconditional signature
            // regeneration, where every flip is benign — hence several.
            for pause in [4500u64, 6500, 9001] {
                for bit in 0..64 {
                    let native = run_corrupted(&image, kind, style, true, pause, bit);
                    let interp = run_corrupted(&image, kind, style, false, pause, bit);
                    assert_eq!(
                        native, interp,
                        "{kind}/{style:?} pause={pause} bit={bit}: \
                         native and fallback disagree after signature corruption"
                    );
                    match &native.exit {
                        DbtExit::Trapped(t) if t.is_cfe_report() => detections += 1,
                        DbtExit::Halted { .. } => assert_eq!(
                            native.output, golden.output,
                            "{kind}/{style:?} pause={pause} bit={bit}: \
                             silent data corruption escaped detection"
                        ),
                        other => panic!(
                            "{kind}/{style:?} pause={pause} bit={bit}: \
                             unexpected exit {other:?} after signature corruption"
                        ),
                    }
                }
            }
            // The guarantee is only meaningful if the check sequences
            // actually fired inside natively-emitted code: at least one
            // pause point must have every bit flip detected.
            assert!(
                detections >= 64,
                "{kind}/{style:?}: only {detections} CFE detections across the sweep"
            );
        }
    }
}
