//! Cross-crate integration tests: constants that must agree across crate
//! boundaries, whole-pipeline behaviour on real workloads, and the paper's
//! coverage claims validated by actual fault injection.

use cfed::core::{run_dbt, run_native, Category, RunConfig, TechniqueKind};
use cfed::dbt::{CheckPolicy, DbtExit, UpdateStyle};
use cfed::fault::{Campaign, Outcome};
use cfed::sim::Layout;
use cfed::workloads::{by_name, Scale};

#[test]
fn cross_crate_constants_agree() {
    // The assembler links for the simulator's default layout.
    let layout = Layout::default();
    assert_eq!(cfed::asm::DEFAULT_CODE_BASE, layout.code_base);
    assert_eq!(cfed::asm::DEFAULT_DATA_BASE, layout.data_base);
    // MiniC's assert trap code is the simulator's GUEST_ASSERT.
    assert_eq!(cfed::lang::codegen::GUEST_ASSERT_CODE, cfed::sim::trap_codes::GUEST_ASSERT);
}

#[test]
fn workloads_transparent_under_every_technique() {
    for name in ["164.gzip", "171.swim", "254.gap"] {
        let image = by_name(name).unwrap().image(Scale::Test).unwrap();
        let native = run_native(&image, u64::MAX);
        for kind in TechniqueKind::ALL {
            for style in [UpdateStyle::Jcc, UpdateStyle::CMov] {
                let cfg = RunConfig { technique: Some(kind), style, ..RunConfig::default() };
                let got = run_dbt(&image, &cfg);
                assert_eq!(got.exit, native.exit, "{name} under {kind}/{style}");
                assert_eq!(got.output, native.output, "{name} under {kind}/{style}");
            }
        }
    }
}

#[test]
fn policies_trade_checking_for_speed_on_a_real_workload() {
    let image = by_name("176.gcc").unwrap().image(Scale::Test).unwrap();
    let mut last = u64::MAX;
    for policy in CheckPolicy::ALL {
        let cfg = RunConfig { technique: Some(TechniqueKind::Rcf), policy, ..RunConfig::default() };
        let out = run_dbt(&image, &cfg);
        assert!(matches!(out.exit, DbtExit::Halted { .. }));
        assert!(out.cycles <= last, "{policy} should not cost more than its stricter neighbour");
        last = out.cycles;
    }
}

#[test]
fn injected_coverage_matches_paper_claims_cmov() {
    // Under the safe (CMOVcc) configuration:
    //  * RCF and EdgCF produce no SDC at all,
    //  * any ECF SDC is category C (its only theoretical gap),
    //  * the uninstrumented baseline does produce SDC.
    let image = by_name("181.mcf").unwrap().image(Scale::Test).unwrap();
    let campaign = |technique| {
        let cfg = RunConfig { technique, style: UpdateStyle::CMov, ..RunConfig::default() };
        Campaign::new(cfg, 120).run(&image).expect("workload is well-behaved")
    };

    let base = campaign(None);
    assert!(base.sdc_prone_total().sdc > 0, "baseline should let SDC through");

    for kind in [TechniqueKind::EdgCf, TechniqueKind::Rcf] {
        let rep = campaign(Some(kind));
        assert_eq!(rep.sdc_prone_total().sdc, 0, "{kind} must prevent all SDC");
        assert_eq!(rep.sdc_prone_total().timeout, 0, "{kind} must not hang");
    }

    let ecf = campaign(Some(TechniqueKind::Ecf));
    for c in Category::SDC_PRONE {
        if c != Category::C {
            assert_eq!(ecf.category(c).sdc, 0, "ECF may only miss category C, leaked {c}");
        }
    }
}

#[test]
fn rcf_jcc_beats_edgcf_jcc_on_inserted_branch_errors() {
    // The Figure 14 safety claim: with branch-style updates, EdgCF's
    // inserted branches are unprotected; RCF's regions protect them. Over a
    // seeded campaign, EdgCF-Jcc leaks at least as much SDC as RCF-Jcc, and
    // RCF-Jcc leaks none outside category A (pre-selector flag faults are
    // data-equivalent faults, outside any signature technique's reach).
    let image = by_name("176.gcc").unwrap().image(Scale::Test).unwrap();
    let run = |kind| {
        let cfg =
            RunConfig { technique: Some(kind), style: UpdateStyle::Jcc, ..RunConfig::default() };
        Campaign::new(cfg, 250).run(&image).expect("workload is well-behaved")
    };
    let edg = run(TechniqueKind::EdgCf);
    let rcf = run(TechniqueKind::Rcf);
    for c in [Category::B, Category::C, Category::D, Category::E] {
        assert_eq!(rcf.category(c).sdc, 0, "RCF-Jcc leaked category {c}");
    }
    let edg_sdc: u64 = Category::SDC_PRONE.iter().map(|&c| edg.category(c).sdc).sum();
    let rcf_sdc: u64 = Category::SDC_PRONE.iter().map(|&c| rcf.category(c).sdc).sum();
    assert!(
        rcf_sdc <= edg_sdc,
        "RCF-Jcc ({rcf_sdc}) must not leak more than EdgCF-Jcc ({edg_sdc})"
    );
}

#[test]
fn detection_latency_grows_with_relaxed_policies() {
    // Less frequent checking = longer delay to report (paper §6).
    let image = by_name("164.gzip").unwrap().image(Scale::Test).unwrap();
    let latency = |policy| {
        let cfg =
            RunConfig { technique: Some(TechniqueKind::EdgCf), policy, ..RunConfig::default() };
        Campaign::new(cfg, 200)
            .run(&image)
            .expect("workload is well-behaved")
            .mean_detection_latency()
    };
    let allbb = latency(CheckPolicy::AllBb).expect("ALLBB detects something");
    let end = latency(CheckPolicy::End).expect("END still detects at program end");
    assert!(end > allbb * 3.0, "END latency ({end:.0}) should far exceed ALLBB ({allbb:.0})");
}

#[test]
fn error_model_aggregates_are_probabilities() {
    let image = by_name("183.equake").unwrap().image(Scale::Test).unwrap();
    let report = cfed::fault::analyze_image(&image, 100_000_000);
    let sum: f64 = Category::ALL.iter().map(|&c| report.table.prob_total(c)).sum();
    assert!((sum - 1.0).abs() < 1e-9);
    // Category E dominates the SDC-prone mass (Figure 3's headline).
    let sdc = report.table.sdc_restricted();
    let e = sdc.iter().find(|(c, _)| *c == Category::E).unwrap().1;
    assert!(e > 0.5, "E carries most SDC-prone probability, got {e:.3}");
}

#[test]
fn campaign_outcomes_partition_cleanly() {
    let image = by_name("191.fma3d").unwrap().image(Scale::Test).unwrap();
    let rep = Campaign::new(RunConfig::technique(TechniqueKind::EdgCf), 80)
        .run(&image)
        .expect("workload is well-behaved");
    let mut total = rep.skipped;
    for c in Category::ALL {
        total += rep.category(c).total();
    }
    assert_eq!(total, 80);
    // NoError faults can never be "detected": they change nothing.
    let ne = rep.category(Category::NoError);
    assert_eq!(ne.detected_check + ne.detected_hw, 0);
    let _ = Outcome::Benign; // outcome enum is part of the public API
}
