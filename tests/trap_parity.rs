//! Table-driven trap parity: every trap kind the machine can raise must
//! surface identically across all four execution paths — raw interpreter,
//! block-fused interpreter, per-step DBT and block-fused DBT — under the
//! uninstrumented baseline and under every technique. Each row is a small
//! VISA program provoking one trap kind; the `cfed-fuzz` oracle runs the
//! full backend matrix and applies its normalization rules (memory and
//! fetch faults exact, in-cache traps by variant and code).
//!
//! Two rows pin behaviour the fuzzer originally caught as real DBT bugs:
//! running off the end of the code image must trap `InvalidInst` inside
//! the last mapped code page (execute permission is page-granular, so the
//! zero padding is fetchable), and a store into the program's own
//! translated code page must stay invisible (the DBT services its internal
//! `PermWrite` and resumes from the patched bytes).

use cfed::asm::parse_asm;
use cfed::fuzz::{run_oracle, Engine, GeneratedProgram, Tier};
use cfed::sim::Trap;
use cfed_dbt::DbtExit;

/// One row: a named program and the trap (or halt) it must produce.
struct Row {
    name: &'static str,
    asm: &'static str,
    expect: fn(&DbtExit) -> bool,
}

const ROWS: &[Row] = &[
    Row {
        name: "halt-clean",
        asm: "entry:\n mov r0, 7\n halt\n",
        expect: |e| matches!(e, DbtExit::Halted { code: 7 }),
    },
    Row {
        name: "div-by-zero",
        asm: "entry:\n mov r0, 5\n mov r1, 0\n div r0, r1\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::DivByZero { .. })),
    },
    Row {
        name: "software-guest-assert",
        asm: "entry:\n trap 0xC0DE0002\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::Software { code: 0xC0DE_0002, .. })),
    },
    Row {
        name: "software-custom-code",
        asm: "entry:\n trap 0x42\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::Software { code: 0x42, .. })),
    },
    Row {
        // Page 0 is inside the address space but mapped with no
        // permissions.
        name: "perm-read-unmapped-low",
        asm: "entry:\n mov r1, 0\n ld r0, [r1+0]\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::PermRead { addr: 0 })),
    },
    Row {
        name: "out-of-range-load",
        asm: "entry:\n mov r1, 0x40000000\n ld r0, [r1+0]\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::OutOfRange { addr: 0x4000_0000 })),
    },
    Row {
        // The data region is mapped RW without execute; an indirect jump
        // into it must hit the execute-disable bit (category-F backstop).
        name: "perm-exec-jump-to-data",
        asm: "entry:\n mov r1, 0x200000\n jmp r1\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::PermExec { addr: 0x20_0000 })),
    },
    Row {
        name: "unaligned-indirect-target",
        asm: "entry:\n mov r1, &lab\n lea r1, [r1+4]\n jmp r1\nlab:\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::UnalignedFetch { .. })),
    },
    Row {
        name: "unaligned-direct-offset",
        asm: "entry:\n jmp +4\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::UnalignedFetch { .. })),
    },
    Row {
        // Jumps past the last instruction but inside the last mapped code
        // page: the zero padding is fetchable (execute permission is
        // page-granular) and must decode-fault, on every path.
        name: "invalid-inst-off-the-end",
        asm: "entry:\n jmp +256\n halt\n",
        expect: |e| matches!(e, DbtExit::Trapped(Trap::InvalidInst { .. })),
    },
    Row {
        // Store into the program's own code page (rewriting an
        // instruction with its own bytes). Natively the page is writable;
        // under the DBT the internal PermWrite/SMC machinery must service
        // the fault invisibly and still halt cleanly.
        name: "smc-store-to-own-code",
        asm: "entry:\n mov r1, &patch\n ld r2, [r1+0]\n st [r1+0], r2\npatch:\n nop\n mov r0, 3\n halt\n",
        expect: |e| matches!(e, DbtExit::Halted { code: 3 }),
    },
];

#[test]
fn trap_kinds_surface_identically_across_all_paths() {
    for row in ROWS {
        let image = parse_asm(row.asm)
            .unwrap_or_else(|e| panic!("{}: {e}", row.name))
            .assemble("entry")
            .unwrap_or_else(|e| panic!("{}: {e}", row.name));
        let prog = GeneratedProgram { tier: Tier::Visa, seed: 0, source: None, image };
        let report = run_oracle(&prog, 100_000);
        let raw = report
            .runs
            .iter()
            .find(|r| r.id.engine == Engine::InterpRaw)
            .expect("oracle always runs the raw interpreter");
        assert!(
            (row.expect)(&raw.exit),
            "{}: raw interpreter produced {:?}, not the expected trap kind",
            row.name,
            raw.exit
        );
        assert!(
            report.divergence.is_none(),
            "{}: backends disagree: {:?}",
            row.name,
            report.divergence
        );
    }
}
