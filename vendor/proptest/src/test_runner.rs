//! Case runner and configuration.

use crate::strategy::Strategy;
use rand::{SeedableRng as _, StdRng};

/// Property-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// RNG handed to strategies. Wraps the workspace [`StdRng`] so strategies
/// can use the full `rand` sampling API.
pub struct TestRng {
    /// Underlying generator.
    pub rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Runs `f` over `config.cases` generated inputs. Seeding is deterministic
/// per (test name, case index), so failures reproduce on every run. A
/// panicking case fails the test; the case index is reported so the input
/// can be regenerated.
pub fn run_cases<S, F>(name: &str, config: &Config, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let base = fnv1a(name);
    for case in 0..config.cases {
        let mut rng = TestRng::new(base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1)));
        let value = strategy.generate(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value)));
        if let Err(payload) = result {
            eprintln!("proptest stand-in: {name} failed at case {case}/{}", config.cases);
            std::panic::resume_unwind(payload);
        }
    }
}
