//! Case runner, configuration, and failure persistence.

use crate::strategy::Strategy;
use rand::{SeedableRng as _, StdRng};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Property-test configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 256 }
    }
}

/// RNG handed to strategies. Wraps the workspace [`StdRng`] so strategies
/// can use the full `rand` sampling API.
pub struct TestRng {
    /// Underlying generator.
    pub rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG for one test case.
    pub fn new(seed: u64) -> TestRng {
        TestRng { rng: StdRng::seed_from_u64(seed) }
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

/// Seed for case `case` of the test named `name` — deterministic, so a
/// failure seen once recurs on every run and a persisted seed replays the
/// exact generated input.
fn case_seed(base: u64, case: u32) -> u64 {
    base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(case as u64 + 1))
}

/// Resolves a `file!()` path (workspace-root relative) against the current
/// working directory's ancestors. Cargo runs test binaries from the package
/// root while `file!()` is recorded relative to the workspace root, so the
/// source usually exists at some ancestor of the cwd.
fn resolve_source(file: &str) -> Option<PathBuf> {
    if file.is_empty() {
        return None;
    }
    let cwd = std::env::current_dir().ok()?;
    cwd.ancestors().map(|a| a.join(file)).find(|p| p.is_file())
}

/// The regression file for a source file: a sibling named
/// `<stem>.proptest-regressions`, mirroring upstream's convention.
fn regression_path(source: &Path) -> PathBuf {
    source.with_extension("proptest-regressions")
}

/// Parses persisted seed lines: `xs <hex64>`, comments (`#`) and blank
/// lines ignored. The test name after `#` on a seed line is informational.
fn parse_regressions(text: &str, name: &str) -> Vec<u64> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("xs ")?;
            let (seed_tok, tail) = match rest.split_once('#') {
                Some((s, t)) => (s.trim(), t.trim()),
                None => (rest.trim(), ""),
            };
            // Seeds recorded for another test in the same file are skipped:
            // they would replay a different strategy's byte stream.
            if !tail.is_empty() && !tail.starts_with(name) {
                return None;
            }
            u64::from_str_radix(seed_tok.trim_start_matches("0x"), 16).ok()
        })
        .collect()
}

/// Appends a failing seed to the regression file (creating it with an
/// explanatory header if missing). Best-effort: IO errors are swallowed —
/// the failure itself still propagates via the panic.
fn persist_failure(source: &Path, name: &str, seed: u64) {
    let path = regression_path(source);
    let header_needed = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(&path) else {
        return;
    };
    if header_needed {
        let _ = writeln!(
            f,
            "# Seeds for failure cases the proptest stand-in generated in the past.\n\
             # The runner replays every seed listed here before generating novel\n\
             # cases. Each line is `xs <seed-hex> # <test name>`. See DESIGN.md\n\
             # \"Conformance & fuzzing\" for the convention."
        );
    }
    let _ = writeln!(f, "xs {seed:016x} # {name}");
    eprintln!("proptest stand-in: persisted failing seed {seed:#x} to {}", path.display());
}

/// Runs `f` over `config.cases` generated inputs. Seeding is deterministic
/// per (test name, case index), so failures reproduce on every run. A
/// panicking case fails the test; the case index is reported so the input
/// can be regenerated.
///
/// Prefer [`run_cases_persisted`] (what the [`crate::proptest!`] macro
/// expands to): this entry point neither replays nor records
/// `.proptest-regressions` seeds.
pub fn run_cases<S, F>(name: &str, config: &Config, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    run_cases_persisted(name, "", config, strategy, f)
}

/// As [`run_cases`], with failure persistence: seeds recorded in the
/// source file's sibling `<stem>.proptest-regressions` are replayed before
/// any novel case, and a novel failing case appends its seed there before
/// the panic propagates. `source_file` is the caller's `file!()`; an empty
/// string (or an unresolvable path) disables persistence.
pub fn run_cases_persisted<S, F>(name: &str, source_file: &str, config: &Config, strategy: &S, f: F)
where
    S: Strategy,
    F: Fn(S::Value),
{
    let source = resolve_source(source_file);
    // Replay persisted regressions first: a recorded failure must stay
    // fixed forever, and replaying before novel cases surfaces it fast.
    if let Some(src) = &source {
        if let Ok(text) = std::fs::read_to_string(regression_path(src)) {
            for seed in parse_regressions(&text, name) {
                let mut rng = TestRng::new(seed);
                let value = strategy.generate(&mut rng);
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value)));
                if let Err(payload) = result {
                    eprintln!(
                        "proptest stand-in: {name} failed replaying persisted seed {seed:#x}"
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
    let base = fnv1a(name);
    for case in 0..config.cases {
        let seed = case_seed(base, case);
        let mut rng = TestRng::new(seed);
        let value = strategy.generate(&mut rng);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(value)));
        if let Err(payload) = result {
            eprintln!("proptest stand-in: {name} failed at case {case}/{}", config.cases);
            if let Some(src) = &source {
                persist_failure(src, name, seed);
            }
            std::panic::resume_unwind(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_other_tests() {
        let text = "# header\n\nxs 00000000000000ff # mine case\nxs 0000000000000001 # other\n\
                    xs 10 \nnot a seed line\n";
        assert_eq!(parse_regressions(text, "mine"), vec![0xFF, 0x10]);
        assert_eq!(parse_regressions(text, "other"), vec![0x1, 0x10]);
    }

    #[test]
    fn case_seeds_are_distinct_and_stable() {
        let base = fnv1a("some_test");
        assert_ne!(case_seed(base, 0), case_seed(base, 1));
        assert_eq!(case_seed(base, 7), case_seed(base, 7));
    }

    #[test]
    fn unresolvable_source_disables_persistence() {
        assert!(resolve_source("").is_none());
        assert!(resolve_source("no/such/dir/ever/file.rs").is_none());
    }
}
