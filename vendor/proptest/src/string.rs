//! String-pattern strategies: a `&str` acts as a strategy generating
//! strings, as in upstream proptest.
//!
//! Stand-in scope: upstream interprets the string as a full regex. This
//! implementation recognizes the shape the workspace uses — a character
//! atom followed by a `{m,n}` repetition (e.g. `"\\PC{0,200}"`, "up to 200
//! printable characters") — and otherwise falls back to the literal with
//! no repetition. Generated characters are mostly printable ASCII with a
//! sprinkling of non-ASCII scalars, which is what grammar-robustness
//! fuzzing wants.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

fn rep_range(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern.rfind('}')?;
    if close != pattern.len() - 1 || close <= open {
        return None;
    }
    let body = &pattern[open + 1..close];
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

fn random_char(rng: &mut TestRng) -> char {
    if rng.rng.gen_bool(0.95) {
        rng.rng.gen_range(0x20u32..0x7F) as u8 as char
    } else {
        // Occasional non-ASCII printable scalars to stress the lexer.
        const EXOTIC: [char; 8] = ['é', 'Ω', '中', '🦀', '÷', '«', '\u{2028}', 'ß'];
        EXOTIC[rng.rng.gen_range(0..EXOTIC.len())]
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match rep_range(self) {
            Some((lo, hi)) => {
                let len = rng.rng.gen_range(lo..hi + 1);
                (0..len).map(|_| random_char(rng)).collect()
            }
            // No recognized repetition: treat the pattern as a literal.
            None => (*self).to_string(),
        }
    }
}
