//! Fixed-size array strategies (`prop::array::uniform8`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy for `[T; N]` with every element from the same strategy.
pub struct UniformArray<S, const N: usize>(S);

impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; N] {
        std::array::from_fn(|_| self.0.generate(rng))
    }
}

/// An 8-element array of values from `element`.
pub fn uniform8<S: Strategy>(element: S) -> UniformArray<S, 8> {
    UniformArray(element)
}

/// A 4-element array of values from `element`.
pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
    UniformArray(element)
}

/// A 16-element array of values from `element`.
pub fn uniform16<S: Strategy>(element: S) -> UniformArray<S, 16> {
    UniformArray(element)
}
