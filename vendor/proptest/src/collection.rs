//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;

/// A half-open range of collection sizes. Converts from a bare `usize`
/// (exact size) or a `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

/// Strategy for `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
