//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal property-testing engine implementing the API subset
//! its test suites use: the [`proptest!`], [`prop_compose!`] and
//! [`prop_oneof!`] macros, the [`strategy::Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, [`arbitrary::any`], integer
//! ranges and string patterns as strategies, and the `prop::collection` /
//! `prop::array` helpers.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its inputs (via the panic
//!   message of the assertion that failed) but is not minimized.
//! * **Seed-based persistence.** A failing case appends its RNG seed to a
//!   sibling `<file>.proptest-regressions` (format: `xs <seed-hex> # <test>`)
//!   and every recorded seed is replayed before novel cases on later runs.
//!   Upstream persists byte buffers; the stand-in persists seeds, which is
//!   equivalent here because generation is a pure function of the seed.
//! * **Deterministic seeding.** Cases derive from a fixed per-test seed,
//!   so runs are reproducible — a failure seen once recurs every run.

pub mod arbitrary;
pub mod array;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the test suites import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property test (stand-in: panics like
/// `assert!`, failing the whole test immediately — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Builds a [`strategy::Union`] choosing uniformly among the given
/// strategies (all must produce the same value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines a function returning a composed strategy:
/// `fn name()(binding in strategy, ...) -> Output { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident()
        ($($arg:ident in $strategy:expr),+ $(,)?) -> $out:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $out> {
            $crate::strategy::Strategy::prop_map(
                ($($strategy,)+),
                |($($arg,)+)| $body,
            )
        }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_cases_persisted(
                    stringify!($name),
                    file!(),
                    &config,
                    &strategy,
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
}
