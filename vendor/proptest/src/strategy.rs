//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::Range;
use std::rc::Rc;

/// A recipe for generating values of a type. Stand-in semantics: pure
/// generation from an RNG, no shrinking tree.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns
    /// for it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Chooses uniformly among several strategies (the [`crate::prop_oneof!`]
/// backing type).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
