//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::{Rng as _, RngCore as _};
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniformly arbitrary values.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly ASCII, occasionally any valid scalar value.
        if rng.rng.gen_bool(0.9) {
            rng.rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            char::from_u32(rng.rng.gen_range(0u32..0x11_0000)).unwrap_or('\u{FFFD}')
        }
    }
}
