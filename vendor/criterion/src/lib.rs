//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal benchmarking harness with criterion's API shape
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `iter` and
//! `iter_batched`). Measurement is a plain wall-clock mean over a fixed
//! iteration budget — good enough for relative comparisons in a dev loop,
//! with none of upstream's statistics.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark (reported alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched` (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (accepted, not acted on).
    pub fn warm_up_time(self, _d: Duration) -> Criterion {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        let budget = self.measurement_time;
        run_benchmark(&id.into(), None, sample_size, budget, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(
            &full,
            self.throughput,
            self.criterion.sample_size,
            self.criterion.measurement_time,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh un-timed `setup` product per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    budget: Duration,
    mut f: F,
) {
    // Calibrate: one iteration to size the budget.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (budget.as_nanos() / per_iter.as_nanos().max(1))
        .clamp(1, sample_size as u128 * 1000) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let mean = b.elapsed.as_nanos() as f64 / iters as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:.1} Melem/s", n as f64 * 1e3 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:.1} MB/s", n as f64 * 1e3 / mean),
        None => String::new(),
    };
    println!("{id:<40} {mean:>12.1} ns/iter ({iters} iters){rate}");
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
