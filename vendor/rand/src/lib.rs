//! Offline stand-in for the `rand` crate, implementing the 0.8-era API
//! subset this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`/`gen`/`gen_bool`).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal deterministic implementation instead. The generator
//! is xoshiro256++ seeded through splitmix64 — statistically solid for
//! fault-sampling campaigns and fully reproducible from a `u64` seed.
//! Streams differ from upstream `StdRng` (which is ChaCha12); nothing in
//! the workspace depends on upstream's exact streams, only on determinism.

use std::ops::Range;

/// Low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling interface (subset of `rand::Rng`), blanket-implemented
/// for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics on an empty range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, &range)
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range: {p}");
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// Types that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `range` (half-open).
    fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: &Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = rng.next_u64() as u128 % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical "any value" distribution (subset of
/// `rand::distributions::Standard`).
pub trait Standard {
    /// A uniformly random value.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// splitmix64 step: advances `state` and returns a mixed output. Public so
/// seed-derivation code elsewhere in the workspace can share the exact
/// mixing function.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Namespaced generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// splitmix64. Deterministic given the seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn ranges_cover_their_span() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
